//! Online troubleshooting: a production instance is pinned at high CPU and
//! the tuning budget is *minutes, not days* (§1: tuning time should match
//! typical recovery time, a few minutes to an hour).
//!
//! With ~3-minute replays, a 60-minute budget buys roughly 20 iterations.
//! This example shows what each method delivers inside that budget, and why
//! the meta-boosted tuner is the one you can actually use for recovery.
//!
//! ```text
//! cargo run --release --example troubleshooting
//! ```

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::repository::TaskRecord;
use restune::core::shap::shap_path;
use restune::prelude::*;

fn main() {
    // The incident: Twitter-like traffic with 512 connections has the box at
    // >90 % CPU. The SLA must hold while we bring utilization down.
    let incident = WorkloadSpec::twitter();
    let budget_minutes = 60.0;
    let replay_minutes = 3.2;
    let iterations = (budget_minutes / replay_minutes) as usize;
    println!("incident budget: {budget_minutes} min ≈ {iterations} tuning iterations\n");

    // The provider's repository has tuning history for similar workloads.
    let characterizer = workload::WorkloadCharacterizer::train_default(3);
    let mut repository = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(3).enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, 50 + i as u64);
        repository.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::cpu(),
            ResourceKind::Cpu,
            &characterizer,
            60,
            70 + i as u64,
        ));
    }
    let gp_config = gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() };
    let learners = repository.base_learners(&gp_config, |_| true);
    let meta_feature = characterizer.embed_workload(&incident, 9).probs;

    let env = || {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(incident.clone())
            .resource(ResourceKind::Cpu)
            .seed(23)
            .build()
    };

    let mut boosted = TuningSession::with_base_learners(
        env(),
        RestuneConfig::default(),
        learners,
        meta_feature,
    );
    let outcome = boosted.run(iterations);
    let scratch = TuningSession::new(env(), RestuneConfig::default()).run(iterations);

    println!("within the {iterations}-iteration budget:");
    println!(
        "  ResTune (boosted):   {:.1}% CPU (default {:.1}%)",
        outcome.best_objective.unwrap_or(f64::NAN),
        outcome.default_objective()
    );
    println!(
        "  from scratch:        {:.1}% CPU",
        scratch.best_objective.unwrap_or(f64::NAN)
    );

    // Explain the recommendation to the on-call engineer: which knobs did
    // the work, and what did they trade? (the paper's Figure 7 SHAP path)
    println!("\nwhy it works (Shapley attribution of the changed knobs):");
    let dbms = SimulatedDbms::new(InstanceType::A, incident, 0).with_noise(0.0);
    let changed: Vec<String> = dbsim::KnobRegistry::mysql()
        .iter()
        .filter(|k| {
            (outcome.best_config.get(k.name) - dbsim::Configuration::dba_default().get(k.name))
                .abs()
                > 1e-9
        })
        .map(|k| k.name.to_string())
        .take(10)
        .collect();
    let path = shap_path(&dbms, &outcome.best_config, &changed, 1);
    for a in path.attributions.iter().take(6) {
        println!(
            "  {:<34} {:>8.0} -> {:>8.0}   CPU {:>+7.2}pp  p99 {:>+6.2}ms",
            a.knob, a.default_value, a.current_value, a.cpu, a.p99_ms
        );
    }
}
