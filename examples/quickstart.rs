//! Quickstart: tune CPU usage of a SYSBENCH-style workload in a few lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use restune::prelude::*;

fn main() {
    // A copy instance of the target DBMS: SYSBENCH on a 48-core cloud box.
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::sysbench())
        .resource(ResourceKind::Cpu)
        .seed(7)
        .build();

    // ResTune without history: constrained Bayesian optimization with the
    // CEI acquisition. The SLA (throughput floor, latency ceiling) is fixed
    // automatically from the default configuration's performance.
    let mut session = TuningSession::new(env, RestuneConfig::default());
    let outcome = session.run(40);

    println!("SLA: tps >= {:.0} txn/s, p99 <= {:.1} ms", outcome.sla.min_tps, outcome.sla.max_p99_ms);
    println!("default CPU: {:.1}%", outcome.default_objective());
    println!(
        "best feasible CPU: {:.1}% (found at iteration {:?})",
        outcome.best_objective.unwrap_or(f64::NAN),
        outcome.best_iteration
    );
    println!("improvement: {:.1}%", outcome.improvement() * 100.0);

    // What changed? The knobs whose values moved away from the defaults.
    println!("\nrecommended configuration (changed knobs):");
    let default = dbsim::Configuration::dba_default();
    for knob in dbsim::KnobRegistry::mysql().iter() {
        let (d, b) = (default.get(knob.name), outcome.best_config.get(knob.name));
        if (d - b).abs() > 1e-9 {
            println!("  {:<34} {:>10} -> {:>10}", knob.name, d, b);
        }
    }
}
