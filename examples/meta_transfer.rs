//! Meta-learning transfer: build a data repository from historical tuning
//! tasks, then tune a new workload on *different hardware* and watch the
//! meta-learner accelerate convergence (the paper's §6 / Figure 4 story).
//!
//! ```text
//! cargo run --release --example meta_transfer
//! ```

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::repository::TaskRecord;
use restune::prelude::*;

fn main() {
    // 1. Train the workload characterizer (TF-IDF + random forest) — the
    //    cloud provider does this once, offline.
    println!("training workload characterizer ...");
    let characterizer = workload::WorkloadCharacterizer::train_default(42);

    // 2. Build a repository of historical tuning tasks collected on the
    //    small instance B (8 cores). Each task stores (θ, res, tps, lat)
    //    observations plus the workload's meta-feature.
    println!("collecting historical tasks on instance B ...");
    let mut repository = DataRepository::new();
    let knob_set = KnobSet::cpu();
    for (i, spec) in [
        WorkloadSpec::twitter(),
        WorkloadSpec::twitter_variations()[0].clone(),
        WorkloadSpec::sysbench(),
        WorkloadSpec::hotel(),
    ]
    .into_iter()
    .enumerate()
    {
        // Scale the rate to what the 8-core instance B sustains — a
        // production deployment on a small box runs at its own rate.
        let spec = match spec.request_rate {
            Some(rate) => {
                let name = spec.name.clone();
                spec.with_request_rate(rate / 6.0).named(&name)
            }
            None => spec,
        };
        let mut dbms = SimulatedDbms::new(InstanceType::B, spec, 100 + i as u64);
        repository.add(TaskRecord::collect(
            &mut dbms,
            &knob_set,
            ResourceKind::Cpu,
            &characterizer,
            60,
            200 + i as u64,
        ));
    }
    println!(
        "repository: {} tasks, {} observations",
        repository.len(),
        repository.n_observations()
    );

    // 3. Fit frozen base-learners (one multi-output GP per task).
    let gp_config = gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() };
    let learners = repository.base_learners(&gp_config, |_| true);

    // 4. Tune Twitter on the *large* instance A. Ranking-loss weights
    //    transfer shape knowledge even though every absolute metric differs.
    let target = WorkloadSpec::twitter();
    let meta_feature = characterizer.embed_workload(&target, 7).probs;
    let env = || {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(target.clone())
            .resource(ResourceKind::Cpu)
            .seed(7)
            .build()
    };

    println!("\ntuning Twitter on instance A (B -> A transfer) ...");
    let mut boosted =
        TuningSession::with_base_learners(env(), RestuneConfig::default(), learners, meta_feature);
    let boosted_outcome = boosted.run(30);

    println!("tuning the same task from scratch ...");
    let mut scratch = TuningSession::new(env(), RestuneConfig::default());
    let scratch_outcome = scratch.run(30);

    println!("\n{:<12} {:>14} {:>14}", "iteration", "ResTune", "ResTune-w/o-ML");
    let b = boosted_outcome.best_curve();
    let s = scratch_outcome.best_curve();
    for i in (0..b.len()).step_by(5) {
        println!("{:<12} {:>13.1}% {:>13.1}%", i, b[i], s[i]);
    }
    println!(
        "\nbest CPU: boosted {:.1}% vs scratch {:.1}% (default {:.1}%)",
        boosted_outcome.best_objective.unwrap_or(f64::NAN),
        scratch_outcome.best_objective.unwrap_or(f64::NAN),
        boosted_outcome.default_objective()
    );
}
