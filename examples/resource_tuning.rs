//! Resource-oriented tuning across all three resource kinds: CPU, I/O, and
//! memory — the paper's §7.1 + §7.5 scenarios in one program, with an SLA
//! compliance report per run.
//!
//! ```text
//! cargo run --release --example resource_tuning
//! ```

use restune::prelude::*;

fn tune(resource: ResourceKind, workload: WorkloadSpec, iterations: usize) {
    let env = TuningEnvironment::builder()
        .instance(InstanceType::E)
        .workload(workload.clone())
        .resource(resource)
        .seed(11)
        .build();
    let knobs = env.knob_set.dim();
    let mut session = TuningSession::new(env, RestuneConfig::default());
    let outcome = session.run(iterations);

    println!(
        "\n## {} tuning on {} ({} knobs)",
        resource.name(),
        workload.name,
        knobs
    );
    println!(
        "   default: {:.1} {}   SLA: tps >= {:.0}, p99 <= {:.1} ms",
        outcome.default_objective(),
        resource.unit(),
        outcome.sla.tps_floor(),
        outcome.sla.lat_ceiling()
    );
    match outcome.best_objective {
        Some(best) => {
            println!(
                "   tuned:   {:.1} {}  (-{:.0}%)  found at iteration {:?}",
                best,
                resource.unit(),
                outcome.improvement() * 100.0,
                outcome.best_iteration
            );
        }
        None => println!("   no feasible improvement found"),
    }
    // SLA audit: the incumbent must never be infeasible.
    let violations = outcome.history.iter().filter(|r| !r.feasible).count();
    println!(
        "   explored {} configs, {} violated the SLA (never adopted), converged at {:?}",
        outcome.history.len(),
        violations,
        outcome.converged_at
    );
}

fn main() {
    // CPU on the 14-knob set.
    tune(ResourceKind::Cpu, WorkloadSpec::twitter(), 35);
    // I/O bandwidth on the 20-knob set (I/O-heavy: data >> buffer pool).
    tune(ResourceKind::IoBps, WorkloadSpec::sysbench().with_data_gb(30.0), 35);
    // IOPS on the same setup.
    tune(ResourceKind::Iops, WorkloadSpec::tpcc().with_data_gb(100.0), 35);
    // Memory on the 6-knob set (buffer pool size becomes a knob).
    tune(ResourceKind::Memory, WorkloadSpec::sysbench().with_data_gb(30.0), 35);
}
