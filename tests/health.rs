//! End-to-end model-quality telemetry (DESIGN.md §15): a diagnostics-enabled
//! session emits one well-formed `tuner.health` event per iteration, the
//! records survive the JSONL round trip losslessly, and a fleet run's
//! task-tagged streams aggregate into per-tenant and fleet-level health.

use std::sync::Mutex;

use dbsim::{FaultPlan, InstanceType, KnobSet, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::diag::{TunerHealth, HEALTH_EVENT};
use restune::core::fleet::health::{FleetHealth, StragglerPolicy};
use restune::core::fleet::{mix_seed, FleetConfig, FleetService, Tenant};
use restune::prelude::*;

/// Serializes the tests in this binary: they all toggle the global trace
/// collector.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 120, n_local: 30, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 10, ..Default::default() },
        dynamic_samples: 8,
        init_iters: 3,
        seed,
        trace: true,
        diag: true,
        ..Default::default()
    }
}

fn traced_run(seed: u64, iters: usize) -> trace::TraceSnapshot {
    trace::enable();
    trace::reset();
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        .build();
    TuningSession::new(env, quick_config(seed)).run(iters);
    let snap = trace::snapshot();
    trace::disable();
    trace::reset();
    snap
}

fn records(snap: &trace::TraceSnapshot) -> Vec<TunerHealth> {
    snap.events_named(HEALTH_EVENT).into_iter().filter_map(TunerHealth::from_event).collect()
}

#[test]
fn diagnostic_sessions_emit_one_coherent_health_event_per_iteration() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let iters = 10;
    let snap = traced_run(7, iters);
    let health = records(&snap);
    assert_eq!(health.len(), iters, "one tuner.health event per iteration");
    let mut incumbent = f64::INFINITY;
    for (i, r) in health.iter().enumerate() {
        assert_eq!(r.iteration, i);
        assert!(r.objective.is_finite());
        // The incumbent is monotone non-increasing for a minimized objective.
        assert!(r.incumbent <= incumbent + 1e-12, "incumbent rose at iteration {i}");
        incumbent = r.incumbent;
        // Regret is measured against the running incumbent, so never negative
        // on feasible, unpenalized iterations.
        if r.feasible && !r.penalized {
            assert!(r.regret >= -1e-9, "negative regret at iteration {i}: {}", r.regret);
        }
        assert!(r.since_improvement <= i, "stagnation clock ahead of time at {i}");
    }
    // After the model warms up the calibration block must be present and
    // structurally sane (probabilities in range, counts matching history).
    let calibrated: Vec<_> = health.iter().filter_map(|r| r.calibration).collect();
    assert!(!calibrated.is_empty(), "no iteration carried GP calibration");
    for c in &calibrated {
        assert!(c.n >= 1 && c.n <= iters + 1);
        assert!((0.0..=1.0).contains(&c.coverage_1s));
        assert!((0.0..=1.0).contains(&c.coverage_2s));
        assert!(c.coverage_2s >= c.coverage_1s, "2-sigma coverage below 1-sigma");
        assert!(c.mean_abs_z >= 0.0 && c.mean_abs_z <= c.max_abs_z);
    }
}

#[test]
fn health_records_survive_the_jsonl_round_trip() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let snap = traced_run(11, 8);
    let original = records(&snap);
    assert!(!original.is_empty());
    let text = snap.to_jsonl().expect("serialize snapshot");
    let reparsed = trace::TraceSnapshot::from_jsonl(&text).expect("reparse snapshot");
    assert_eq!(records(&reparsed), original, "health records changed across JSONL");
}

#[test]
fn fleet_health_aggregates_task_tagged_streams_per_tenant() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tenants = 6u64;
    let iters = 4;
    trace::enable();
    trace::reset();
    let service = FleetService::new(FleetConfig { workers: 2, slice: 2, shards: 4 });
    let out = service.run(
        (0..tenants)
            .map(|id| {
                let seed = mix_seed(0x4EA17, id);
                let env = TuningEnvironment::builder()
                    .instance(InstanceType::A)
                    .workload(WorkloadSpec::fleet_tenant(id))
                    .resource(ResourceKind::Cpu)
                    .knob_set(KnobSet::case_study())
                    .seed(seed)
                    .fault_plan(
                        FaultPlan::none().with_transient_rate(0.2).with_seed(seed ^ 0xFA),
                    )
                    .build();
                Tenant::restune(id, format!("tenant-{id}"), env, quick_config(seed), iters)
            })
            .collect(),
    );
    let snap = trace::snapshot();
    trace::disable();
    trace::reset();
    assert_eq!(out.tenants.len(), tenants as usize);

    let fleet = FleetHealth::from_snapshot(&snap, &StragglerPolicy::default());
    assert_eq!(fleet.tenants.len(), tenants as usize, "one health stream per tenant");
    for (i, t) in fleet.tenants.iter().enumerate() {
        assert_eq!(t.task, i as u64, "tenant summaries sorted by task id");
        assert_eq!(t.iterations, iters, "tenant {} stream incomplete", t.task);
    }
    // The digests cover every tenant, and the fleet's final incumbents match
    // the tenants' own outcomes exactly (same data, two paths).
    let regret = fleet.regret.expect("regret digest");
    assert_eq!(regret.n, tenants as usize);
    for (tenant, result) in fleet.tenants.iter().zip(&out.tenants) {
        if let Some(best) = result.outcome.best_objective {
            assert_eq!(tenant.final_incumbent, best, "tenant {} incumbent", tenant.task);
        }
    }
}
