//! Golden same-seed snapshot across every `run_method` strategy: a baked-in
//! digest per method pins the exact iteration trace (points, observations,
//! incumbents, weights, failure tallies and the simulated replay clock), so
//! any refactor of the evaluation loop that moves a single bit fails loudly.
//!
//! The digests were captured from the pre-driver-refactor code and re-pinned
//! once when the Adam hyperparameter search was fixed to keep the best-NLL
//! iterate instead of the last one (an outcome-improving bugfix: at this seed
//! ResTune's best objective moved 22.39 → 21.70 and ResTune-w/o-ML / iTuned
//! 21.283 → 21.265; OtterTune and CDBTune digests were unaffected). The
//! shared `TuningDriver`/`EvalEngine` path must reproduce them exactly.
//!
//! Re-pinned a second time when the knob registry grew from 38 to 200 knobs:
//! the digest hashes `Configuration`'s Debug repr (inside each observation and
//! the best config), which now spans 200 values. The *numeric* traces were
//! verified bit-identical against the pre-growth tree — a config-free digest
//! over (points, observation metric bits, objectives, weights, failures,
//! replay clock) matched exactly for all six methods, because the extended
//! knobs' misconfiguration penalty is exactly `0.0` at their defaults.

use baselines::method::Setting;
use baselines::{method_driver, run_method, Method, MethodContext};
use dbsim::{FaultPlan, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::repository::{DataRepository, TaskRecord};
use restune::prelude::*;

const ITERS: usize = 12;

fn golden_repo() -> DataRepository {
    let characterizer = workload::WorkloadCharacterizer::train_default(0);
    let mut repo = DataRepository::new();
    for (i, w) in [WorkloadSpec::twitter(), WorkloadSpec::sysbench()].into_iter().enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, w, 100 + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            12,
            200 + i as u64,
        ));
    }
    repo
}

fn golden_env() -> TuningEnvironment {
    TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(17)
        // A moderate transient rate so the digests also pin the failure
        // bookkeeping (retries, penalized observations).
        .fault_plan(FaultPlan::none().with_transient_rate(0.2).with_seed(0xFA))
        .build()
}

fn golden_ctx(repo: &DataRepository) -> MethodContext<'_> {
    MethodContext {
        config: RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 250, n_local: 50, local_sigma: 0.1 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
            dynamic_samples: 8,
            init_iters: 4,
            seed: 17,
            ..Default::default()
        },
        repository: Some(repo),
        prepared_learners: None,
        setting: Setting::Original,
        target_meta_feature: vec![0.2; 5],
    }
}

/// FNV-1a over the canonical trace text: stable, dependency-free, and
/// sensitive to every bit of every float (shortest-round-trip `{:?}`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn outcome_digest(o: &TuningOutcome) -> u64 {
    let mut text = String::new();
    for r in &o.history {
        text.push_str(&format!(
            "{}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{:?}\n",
            r.iteration,
            r.point,
            r.observation,
            r.objective,
            r.feasible,
            r.best_feasible_objective,
            r.weights,
            r.failure,
            r.retries,
            r.timing.replay_s,
        ));
    }
    text.push_str(&format!(
        "best={:?}@{:?} default={:?} failures={:?} config={:?}",
        o.best_objective,
        o.best_iteration,
        o.default_obj_value,
        o.failures,
        format!("{:?}", o.best_config),
    ));
    fnv1a(text.as_bytes())
}

#[test]
fn all_six_method_outcomes_match_the_pre_refactor_golden_digests() {
    let repo = golden_repo();
    // Note RestuneWithoutML and ITuned legitimately share a digest at this
    // seed: the case-study space is feasible almost everywhere, so CEI's
    // feasibility weighting never changes EI's argmax over these 12 iters.
    let expected: [(Method, u64); 6] = [
        (Method::Restune, 0xd44a54bba41e6639),
        (Method::RestuneWithoutML, 0x369b7d132d8f9428),
        (Method::RestuneWithoutWorkload, 0x215093b01c0280ce),
        (Method::ITuned, 0x369b7d132d8f9428),
        (Method::OtterTuneWithConstraints, 0xc16bc93abf78b13c),
        (Method::CdbTuneWithConstraints, 0x242e8876597d3073),
    ];
    let mut failures = Vec::new();
    for (method, want) in expected {
        let outcome = run_method(method, golden_env(), ITERS, &golden_ctx(&repo));
        assert_eq!(outcome.history.len(), ITERS, "{}", method.name());
        let got = outcome_digest(&outcome);
        if got != want {
            failures.push(format!("(Method::{method:?}, 0x{got:016x}),"));
        }
        // Timings-shape: the replay clock is simulated and always charged;
        // wall-clock phases are measured and must be finite and non-negative.
        for r in &outcome.history {
            assert!(r.timing.replay_s > 0.0, "{}: replay not charged", method.name());
            for v in [
                r.timing.meta_data_processing_s,
                r.timing.model_update_s,
                r.timing.gp_fit_s,
                r.timing.weight_update_s,
                r.timing.recommendation_s,
            ] {
                assert!(v.is_finite() && v >= 0.0, "{}: bad timing {v}", method.name());
            }
            assert!(r.timing.gp_fit_s + r.timing.weight_update_s <= r.timing.model_update_s + 1e-9);
        }
    }
    assert!(
        failures.is_empty(),
        "golden digests diverged; current values:\n{}",
        failures.join("\n")
    );
}

#[test]
fn a_heterogeneous_fleet_reproduces_the_golden_digests() {
    use restune::core::fleet::{FleetConfig, FleetService, Tenant};

    // All six methods as concurrent tenants of one fleet: scheduling onto a
    // shared worker pool, slicing, and the shared store must not move a
    // single bit of any method's trace — each tenant's outcome digest equals
    // the single-driver golden value.
    let repo = golden_repo();
    let expected: [(Method, u64); 6] = [
        (Method::Restune, 0xd44a54bba41e6639),
        (Method::RestuneWithoutML, 0x369b7d132d8f9428),
        (Method::RestuneWithoutWorkload, 0x215093b01c0280ce),
        (Method::ITuned, 0x369b7d132d8f9428),
        (Method::OtterTuneWithConstraints, 0xc16bc93abf78b13c),
        (Method::CdbTuneWithConstraints, 0x242e8876597d3073),
    ];
    let tenants: Vec<Tenant> = expected
        .iter()
        .enumerate()
        .map(|(id, (method, _))| {
            let driver = method_driver(*method, golden_env(), &golden_ctx(&repo));
            Tenant::new(id as u64, method.name(), ITERS, Vec::new(), driver)
        })
        .collect();
    let service = FleetService::new(FleetConfig { workers: 3, slice: 2, shards: 4 });
    let out = service.run(tenants);
    assert_eq!(out.tenants.len(), expected.len());
    for (t, (method, want)) in out.tenants.iter().zip(&expected) {
        assert!(!t.panicked, "{} panicked in the fleet", method.name());
        assert_eq!(t.outcome.history.len(), ITERS, "{}", method.name());
        assert_eq!(
            outcome_digest(&t.outcome),
            *want,
            "{} diverged from its golden digest when run as a fleet tenant",
            method.name()
        );
    }
    // Completed tenants committed their records to the shared store.
    assert_eq!(service.store().snapshot().n_records(), expected.len());
}
