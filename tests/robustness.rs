//! Failure injection and robustness: degenerate data, heavy observation
//! noise, corrupted persistence, and pathological workloads must degrade
//! gracefully, never panic or violate the SLA invariant.

use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use gp::{GaussianProcess, GpConfig};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::repository::DataRepository;
use restune::prelude::*;

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 200, n_local: 40, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 10, ..Default::default() },
        dynamic_samples: 8,
        seed,
        ..Default::default()
    }
}

#[test]
fn gp_survives_duplicate_points() {
    // A kernel matrix with repeated rows is singular without jitter.
    let xs = vec![vec![0.5, 0.5]; 8];
    let ys = vec![1.0; 8];
    let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
    let p = gp.predict(&[0.5, 0.5]).unwrap();
    assert!((p.mean - 1.0).abs() < 0.2);
    assert!(p.variance.is_finite());
}

#[test]
fn gp_survives_constant_targets() {
    let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
    let ys = vec![42.0; 10];
    let gp = GaussianProcess::fit(xs, ys, &GpConfig::default()).unwrap();
    let p = gp.predict(&[0.3]).unwrap();
    assert!((p.mean - 42.0).abs() < 1.0);
}

#[test]
fn tuning_under_heavy_noise_still_never_adopts_infeasible_incumbents() {
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(3)
        .noise(0.10) // ~7x the default observation noise
        .build();
    let outcome = TuningSession::new(env, quick_config(3)).run(15);
    for r in &outcome.history {
        if Some(r.iteration) == outcome.best_iteration {
            assert!(r.feasible, "noisy run adopted an infeasible incumbent");
        }
    }
}

#[test]
fn corrupted_repository_files_error_cleanly() {
    let dir = std::env::temp_dir();
    let path = dir.join("restune_corrupt.json");
    std::fs::write(&path, "{ not valid json !!!").unwrap();
    assert!(DataRepository::load(&path).is_err());
    std::fs::write(&path, r#"{"tasks": [{"bogus": true}]}"#).unwrap();
    assert!(DataRepository::load(&path).is_err());
    let _ = std::fs::remove_file(path);
    // Missing file too.
    assert!(DataRepository::load(std::path::Path::new("/nonexistent/repo.json")).is_err());
}

#[test]
#[should_panic(expected = "unknown knob")]
fn unknown_knob_names_panic_loudly() {
    let _ = KnobSet::new(&["innodb_not_a_real_knob"]);
}

#[test]
fn pathological_workloads_evaluate_finitely() {
    // Tiny data, read-only, single connection.
    let tiny = WorkloadSpec {
        name: "tiny".into(),
        threads: 1,
        data_gb: 0.01,
        read_parts: 1.0,
        write_parts: 0.0,
        request_rate: Some(1.0),
        ..WorkloadSpec::sysbench()
    };
    // Monster write-only load far beyond any device.
    let monster = WorkloadSpec {
        name: "monster".into(),
        threads: 4096,
        data_gb: 10_000.0,
        read_parts: 0.0,
        write_parts: 1.0,
        request_rate: Some(10_000_000.0),
        ..WorkloadSpec::tpcc()
    };
    for w in [tiny, monster] {
        for inst in [InstanceType::C, InstanceType::F] {
            let dbms = SimulatedDbms::new(inst, w.clone(), 0).with_noise(0.0);
            let obs = dbms.evaluate_noiseless(&Configuration::dba_default());
            assert!(obs.tps.is_finite() && obs.tps > 0.0, "{} on {:?}", w.name, inst);
            assert!(obs.p99_ms.is_finite() && obs.p99_ms > 0.0);
            assert!(obs.resources.cpu_pct.is_finite());
        }
    }
}

#[test]
fn zero_iteration_run_reports_the_default() {
    let env = TuningEnvironment::builder()
        .instance(InstanceType::B)
        .workload(WorkloadSpec::sales())
        .resource(ResourceKind::Memory)
        .seed(9)
        .build();
    let outcome = TuningSession::new(env, quick_config(9)).run(0);
    assert!(outcome.history.is_empty());
    assert_eq!(outcome.best_iteration, None);
    assert_eq!(outcome.best_objective, Some(outcome.default_obj_value));
    assert_eq!(outcome.improvement(), 0.0);
}

fn mismatched_learners() -> Vec<restune::core::meta::BaseLearner> {
    // Base learners fitted on the 3-dim case-study space.
    let characterizer = workload::WorkloadCharacterizer::train_default(1);
    let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 1);
    let rec = restune::core::repository::TaskRecord::collect(
        &mut dbms,
        &KnobSet::case_study(), // 3-dim space
        ResourceKind::Cpu,
        &characterizer,
        8,
        1,
    );
    let mut repo = DataRepository::new();
    repo.add(rec);
    repo.base_learners(&gp::GpConfig::fixed(), |_| true)
}

#[test]
fn repository_filter_guards_against_mismatched_knob_spaces() {
    // The repository-side guard used by the CLI: filtering by knob names
    // keeps foreign-space tasks out of the learner set entirely.
    let characterizer = workload::WorkloadCharacterizer::train_default(1);
    let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 1);
    let rec = restune::core::repository::TaskRecord::collect(
        &mut dbms,
        &KnobSet::case_study(), // 3-dim space
        ResourceKind::Cpu,
        &characterizer,
        8,
        1,
    );
    let mut repo = DataRepository::new();
    repo.add(rec);
    // The 14-knob CPU space must filter this task out.
    let wanted = KnobSet::cpu();
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |t| {
        t.knob_names == wanted.names()
    });
    assert!(learners.is_empty());
}

#[test]
#[should_panic(expected = "3-dim search space; the target space is 14-dim")]
fn session_with_mismatched_learner_dimensions_is_rejected_by_construction() {
    // If a caller bypasses the repository filter, the session itself rejects
    // dimensionally-mismatched base learners at construction — with the
    // offending task named — rather than panicking at prediction time deep
    // inside the GP (and only in debug builds).
    let learners = mismatched_learners();
    assert!(!learners.is_empty(), "need at least one mismatched learner");
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::cpu()) // 14-dim target space
        .seed(1)
        .build();
    let _ = TuningSession::with_base_learners(env, quick_config(1), learners, vec![0.2; 5]);
}
