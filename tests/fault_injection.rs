//! Seed-matrix fault-injection end-to-end: a six-learner meta-boosted run
//! under a 20% transient fault rate must complete every iteration without
//! panicking, never certify an incumbent from a failed or infeasible replay,
//! retain most of the fault-free improvement, and keep the fault schedule —
//! and the whole algorithmic trace — a pure function of the seeds, with the
//! `parallel` flag moving nothing.

use dbsim::{FaultPlan, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::meta::BaseLearner;
use restune::core::repository::{DataRepository, TaskRecord};
use restune::prelude::*;

const ITERS: usize = 12;
const TRANSIENT_RATE: f64 = 0.2;

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 200, n_local: 40, local_sigma: 0.08 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 10, ..Default::default() },
        dynamic_samples: 8,
        init_iters: 3,
        seed,
        ..Default::default()
    }
}

/// Six base learners on the 3-dim case-study space: the five Twitter R/W
/// variations of Table 5 plus a Sysbench task.
fn six_learners() -> (Vec<BaseLearner>, Vec<f64>) {
    let characterizer = workload::WorkloadCharacterizer::train_default(5);
    let mut repo = DataRepository::new();
    let mut specs = WorkloadSpec::twitter_variations();
    specs.push(WorkloadSpec::sysbench());
    for (i, spec) in specs.into_iter().enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, 50 + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            10,
            70 + i as u64,
        ));
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    assert_eq!(learners.len(), 6, "expected a six-learner ensemble");
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;
    (learners, mf)
}

fn run_meta(
    seed: u64,
    plan: FaultPlan,
    parallel: bool,
    learners: &[BaseLearner],
    mf: &[f64],
) -> TuningOutcome {
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        .fault_plan(plan)
        .build();
    let mut config = quick_config(seed);
    config.parallel = parallel;
    TuningSession::with_base_learners(env, config, learners.to_vec(), mf.to_vec()).run(ITERS)
}

/// Full algorithmic fingerprint of one iteration, failure channel included.
fn fingerprint(r: &restune::core::tuner::IterationRecord) -> String {
    format!(
        "{} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?}",
        r.iteration,
        r.point,
        r.observation,
        r.objective,
        r.feasible,
        r.best_feasible_objective,
        r.weights,
        r.failure,
        r.retries,
        r.timing.replay_s,
    )
}

#[test]
fn faulted_runs_complete_stay_feasible_and_keep_most_improvement() {
    let (learners, mf) = six_learners();
    let plan = FaultPlan::none().with_transient_rate(TRANSIENT_RATE).with_seed(0xFA);
    let mut any_failures = false;
    for seed in [3u64, 11, 42] {
        let clean = run_meta(seed, FaultPlan::none(), false, &learners, &mf);
        let faulted = run_meta(seed, plan, false, &learners, &mf);

        // Every iteration completes — failures degrade, never abort.
        assert_eq!(faulted.history.len(), ITERS, "seed {} aborted early", seed);
        for r in &faulted.history {
            assert!(r.objective.is_finite(), "seed {} iter {} non-finite", seed, r.iteration);
            if Some(r.iteration) == faulted.best_iteration {
                assert!(r.feasible, "seed {} certified an infeasible incumbent", seed);
                assert!(
                    r.failure.is_none(),
                    "seed {} certified an incumbent from a failed replay",
                    seed
                );
            }
        }
        // With the default 2-retry policy most 20%-rate transients are
        // absorbed (an iteration only *fails* if three consecutive attempts
        // fault), so count retried attempts as evidence the schedule fired.
        any_failures |=
            faulted.failures.retries > 0 || faulted.failures.failed_iterations() > 0;

        // ≥80% of the fault-free improvement survives the fault storm.
        assert!(
            clean.improvement() > 0.0,
            "seed {} fault-free run found no improvement; check would be vacuous",
            seed
        );
        assert!(
            faulted.improvement() >= 0.8 * clean.improvement(),
            "seed {}: faulted improvement {:.4} < 80% of fault-free {:.4}",
            seed,
            faulted.improvement(),
            clean.improvement()
        );
    }
    assert!(any_failures, "20% transient rate never fired across the seed matrix");
}

#[test]
fn fault_schedule_is_a_pure_function_of_the_seeds() {
    let (learners, mf) = six_learners();
    let plan = FaultPlan::none().with_transient_rate(TRANSIENT_RATE).with_seed(0xFA);
    let a = run_meta(11, plan, false, &learners, &mf);
    let b = run_meta(11, plan, false, &learners, &mf);
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(fingerprint(ra), fingerprint(rb), "iteration {} diverged", ra.iteration);
    }
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.best_objective, b.best_objective);
}

#[test]
fn parallel_flag_does_not_move_the_fault_schedule() {
    let (learners, mf) = six_learners();
    let plan = FaultPlan::none().with_transient_rate(TRANSIENT_RATE).with_seed(0xFA);
    let ser = run_meta(42, plan, false, &learners, &mf);
    let par = run_meta(42, plan, true, &learners, &mf);
    assert_eq!(ser.history.len(), par.history.len());
    for (ra, rb) in ser.history.iter().zip(&par.history) {
        assert_eq!(fingerprint(ra), fingerprint(rb), "iteration {} diverged", ra.iteration);
    }
    assert_eq!(ser.failures, par.failures);
    assert_eq!(format!("{:?}", ser.best_config), format!("{:?}", par.best_config));
}
