//! End-to-end contract of the search-space transformation layer
//! (`core::space`, DESIGN.md §14): a ResTune session tuning 200 knobs
//! through a seeded HeSBO projection must be deterministic (golden-digest
//! pinned), must emit `space.project` trace counters at the engine's lift
//! seam, and must only ever materialize in-range configurations no matter
//! what the proposer emits in the low space.

use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::space::{projected_space, Projection};
use restune::prelude::*;

const ITERS: usize = 8;
const D_LOW: usize = 8;

fn projected_env(seed: u64) -> TuningEnvironment {
    let set = KnobSet::extended();
    let transform = projected_space(&set, Projection::Hesbo, D_LOW, seed, Some(64), Some(0.2));
    TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(set)
        .seed(seed)
        .space(transform)
        .build()
}

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 200, n_local: 40, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
        dynamic_samples: 8,
        init_iters: 3,
        seed,
        ..Default::default()
    }
}

/// FNV-1a over the full iteration trace — same digest construction as
/// `golden_methods.rs`, pinning every bit of the projected session.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn outcome_digest(o: &TuningOutcome) -> u64 {
    let mut text = String::new();
    for r in &o.history {
        text.push_str(&format!(
            "{}|{:?}|{:?}|{:?}|{}|{:?}\n",
            r.iteration, r.point, r.observation, r.objective, r.feasible, r.timing.replay_s,
        ));
    }
    text.push_str(&format!("best={:?}@{:?}", o.best_objective, o.best_iteration));
    fnv1a(text.as_bytes())
}

#[test]
fn projected_restune_session_matches_its_golden_digest() {
    // Captured from the first green run of this test; pins the projection
    // matrix seeding, the lift/clip/hybrid/quantize order, and the engine's
    // low-space bookkeeping all at once.
    const GOLDEN: u64 = 0x73a51788b5644a70;
    let outcome = TuningSession::new(projected_env(21), quick_config(21)).run(ITERS);
    assert_eq!(outcome.history.len(), ITERS);
    // Every searched point lives in the low space.
    for r in &outcome.history {
        assert_eq!(r.point.len(), D_LOW, "iteration {} point not low-dimensional", r.iteration);
    }
    let got = outcome_digest(&outcome);
    assert_eq!(
        got, GOLDEN,
        "projected session diverged from its golden digest (got 0x{got:016x})"
    );
}

#[test]
fn projected_sessions_are_reproducible_and_seed_sensitive() {
    let a = TuningSession::new(projected_env(21), quick_config(21)).run(5);
    let b = TuningSession::new(projected_env(21), quick_config(21)).run(5);
    assert_eq!(outcome_digest(&a), outcome_digest(&b), "same seed diverged");
    let c = TuningSession::new(projected_env(22), quick_config(22)).run(5);
    assert_ne!(outcome_digest(&a), outcome_digest(&c), "different seeds coincided");
}

#[test]
fn projected_sessions_count_every_lift_in_the_trace() {
    trace::reset();
    trace::enable();
    let mut config = quick_config(21);
    config.trace = true;
    let outcome = TuningSession::new(projected_env(21), config).run(5);
    let snapshot = trace::snapshot();
    trace::disable();
    trace::reset();
    assert_eq!(outcome.history.len(), 5);
    // One lift per evaluation (including the default-seeding observation is
    // *not* lifted — it is restricted), plus one for rendering the winning
    // configuration at the end of the run.
    let lifts = snapshot.counter("space.project");
    assert!(
        lifts >= 5,
        "expected at least one space.project count per iteration, got {lifts}"
    );
}

#[test]
fn out_of_cube_proposals_materialize_in_range_configurations() {
    // The clamp regression, end-to-end through the transform: whatever the
    // proposer hands the engine — even coordinates outside [0,1] — the
    // configuration that reaches the DBMS stays inside every knob's range.
    let set = KnobSet::extended();
    let transform = projected_space(&set, Projection::Gaussian, D_LOW, 7, None, Some(0.2));
    let hostile = vec![1.7, -0.4, 0.0, 1.0, 0.5, -2.0, 3.0, 0.999];
    let native = transform.lift(&hostile);
    assert_eq!(native.len(), set.dim());
    let config = set.to_configuration(&native, &Configuration::dba_default());
    let reg = dbsim::KnobRegistry::mysql();
    for i in 0..reg.len() {
        let k = reg.knob(i);
        let v = config.values()[i];
        assert!(
            v >= k.min && v <= k.max || matches!(k.kind, dbsim::KnobKind::Enum(_)),
            "{}: {v} escaped [{}, {}]",
            k.name,
            k.min,
            k.max
        );
    }
    // And the simulator accepts it without panicking or producing non-finite
    // metrics.
    let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 3);
    let obs = dbms.evaluate(&config);
    assert!(obs.tps.is_finite() && obs.p99_ms.is_finite());
}
