//! Golden end-to-end determinism: with the in-tree PRNG and JSON stack, two
//! identically-seeded runs must agree exactly — same iteration traces, and
//! byte-identical serialized repositories. This is the property that makes
//! every figure/table in the bench harness reproducible offline.

use std::sync::Mutex;

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::repository::{DataRepository, TaskRecord};
use restune::prelude::*;

/// Serializes the tests that toggle the global trace collector (the harness
/// runs tests on parallel threads); everything else stays parallel.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 60, local_sigma: 0.08 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 15, ..Default::default() },
        dynamic_samples: 12,
        seed,
        ..Default::default()
    }
}

fn run_once(seed: u64, iters: usize) -> TuningOutcome {
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        .build();
    TuningSession::new(env, quick_config(seed)).run(iters)
}

/// Exact Debug fingerprint of one iteration's algorithmic state. Wall-clock
/// timing fields (model update, recommendation) measure real elapsed time and
/// legitimately differ between runs; everything else must be bit-identical,
/// including the *simulated* replay time.
fn fingerprint(r: &restune::core::tuner::IterationRecord) -> String {
    format!(
        "{} {:?} {:?} {:?} {:?} {:?} {:?} {:?}",
        r.iteration,
        r.point,
        r.observation,
        r.objective,
        r.feasible,
        r.best_feasible_objective,
        r.weights,
        r.timing.replay_s,
    )
}

#[test]
fn same_seed_advisor_runs_are_bit_identical() {
    let a = run_once(7, 12);
    let b = run_once(7, 12);
    assert_eq!(a.history.len(), b.history.len());
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(fingerprint(ra), fingerprint(rb), "iteration {} diverged", ra.iteration);
    }
    assert_eq!(a.best_objective, b.best_objective);
    assert_eq!(format!("{:?}", a.best_config), format!("{:?}", b.best_config));
}

#[test]
fn tracing_on_and_off_runs_are_bit_identical() {
    // The trace collector (DESIGN.md §10) reads clocks only — never RNG
    // streams or observation values — so flipping it must not move a single
    // bit of the tuning trace. Other tests in this binary are unaffected by
    // the global toggle for the same reason.
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let off = run_once(7, 10);
    let mut config = quick_config(7);
    config.trace = true;
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(7)
        .build();
    let on = TuningSession::new(env, config).run(10);
    let snapshot = trace::snapshot();
    trace::disable();
    trace::reset();
    assert!(
        snapshot.counter("loop.iterations") >= 10,
        "the traced run must actually have recorded events"
    );
    assert_eq!(off.history.len(), on.history.len());
    for (ra, rb) in off.history.iter().zip(&on.history) {
        assert_eq!(fingerprint(ra), fingerprint(rb), "iteration {} diverged", ra.iteration);
    }
    assert_eq!(off.best_objective, on.best_objective);
    assert_eq!(format!("{:?}", off.best_config), format!("{:?}", on.best_config));
}

#[test]
fn diagnostics_on_and_off_runs_are_bit_identical() {
    // The health-telemetry layer (DESIGN.md §15) reads closed-form
    // quantities only — LOO calibration from the already-fitted Cholesky
    // factor, weight entropy, incumbent deltas — never RNG streams, so
    // flipping `RestuneConfig::diag` must not move a single bit of the
    // tuning trace either.
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let off = run_once(7, 10);
    let mut config = quick_config(7);
    config.trace = true;
    config.diag = true;
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(7)
        .build();
    let on = TuningSession::new(env, config).run(10);
    let snapshot = trace::snapshot();
    trace::disable();
    trace::reset();
    let health = snapshot.events_named(restune::core::diag::HEALTH_EVENT);
    assert_eq!(health.len(), 10, "diag must emit one tuner.health event per iteration");
    assert_eq!(off.history.len(), on.history.len());
    for (ra, rb) in off.history.iter().zip(&on.history) {
        assert_eq!(fingerprint(ra), fingerprint(rb), "iteration {} diverged", ra.iteration);
    }
    assert_eq!(off.best_objective, on.best_objective);
    assert_eq!(format!("{:?}", off.best_config), format!("{:?}", on.best_config));
}

#[test]
fn same_seed_diagnostic_event_streams_are_byte_identical() {
    // Health events are timestamp-free by design, so the serialized event
    // stream itself — not just the tuning trace — must reproduce exactly.
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = || {
        let mut config = quick_config(7);
        config.trace = true;
        config.diag = true;
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(7)
            .build();
        TuningSession::new(env, config).run(8);
        let snap = trace::snapshot();
        trace::disable();
        trace::reset();
        snap
    };
    let a = run();
    let b = run();
    let lines = |snap: &trace::TraceSnapshot| -> Vec<String> {
        snap.to_jsonl()
            .unwrap()
            .lines()
            .filter(|l| l.contains("\"type\":\"event\""))
            .map(String::from)
            .collect()
    };
    let (la, lb) = (lines(&a), lines(&b));
    assert!(!la.is_empty(), "the diagnostic runs must have emitted events");
    assert_eq!(la, lb, "same-seed diagnostic event streams diverged");
}

#[test]
fn identity_transform_runs_are_bit_identical_to_untransformed_runs() {
    use restune::core::space::IdentityTransform;
    use std::sync::Arc;

    // Installing the identity `SpaceTransform` must be a no-op to the last
    // bit: the engine takes the `lift()` code path on every evaluation (and
    // restricts the default point once), but the numbers it produces are the
    // same `f64`s the untransformed path sees. This pins the transform seam
    // itself — any accidental re-normalization, clone-induced reordering, or
    // clamp drift in the lift path breaks this test before it breaks a bench.
    let plain = run_once(7, 10);
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(7)
        .space(Arc::new(IdentityTransform::new(KnobSet::case_study().dim())))
        .build();
    let through_identity = TuningSession::new(env, quick_config(7)).run(10);
    assert_eq!(plain.history.len(), through_identity.history.len());
    for (ra, rb) in plain.history.iter().zip(&through_identity.history) {
        assert_eq!(fingerprint(ra), fingerprint(rb), "iteration {} diverged", ra.iteration);
    }
    assert_eq!(plain.best_objective, through_identity.best_objective);
    assert_eq!(
        format!("{:?}", plain.best_config),
        format!("{:?}", through_identity.best_config)
    );
}

#[test]
fn attaching_an_empty_schedule_is_bit_identical_to_no_schedule() {
    use dbsim::WorkloadSchedule;

    // The schedule seam (DESIGN.md §16) must be invisible when the schedule
    // has no transitions: the dbsim recomputes the effective workload before
    // every evaluation, but a static schedule is the identity, so the trace
    // cannot move a bit relative to a schedule-free session.
    let plain = run_once(7, 10);
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(7)
        .schedule(WorkloadSchedule::new(7))
        .build();
    let scheduled = TuningSession::new(env, quick_config(7)).run(10);
    assert_eq!(plain.history.len(), scheduled.history.len());
    for (ra, rb) in plain.history.iter().zip(&scheduled.history) {
        assert_eq!(fingerprint(ra), fingerprint(rb), "iteration {} diverged", ra.iteration);
    }
    assert_eq!(plain.best_objective, scheduled.best_objective);
}

#[test]
fn same_seed_drifting_sessions_are_bit_identical() {
    use restune::core::drift::{DriftConfig, DriftController, LocalSealSink, RestartPolicy};
    use std::sync::Arc;

    // A drifting session adds three new deterministic actors — the workload
    // schedule, the drift detector's epoch clock, and the warm-restart
    // re-initialization — and the whole composition must still replay
    // bit-for-bit from the seed, restart included.
    let characterizer = Arc::new(workload::WorkloadCharacterizer::train_default(7));
    let run = || {
        let base = WorkloadSpec::twitter();
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(base.clone())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::cpu())
            .seed(7)
            .schedule(dbsim::WorkloadSchedule::oltp_to_olap(7, 5, 3))
            .build();
        let mut config = quick_config(7);
        config.init_iters = 3;
        config.static_bandwidth = 2.0;
        let sink = Box::new(LocalSealSink::new(DataRepository::new(), gp::GpConfig::fixed()));
        let controller = DriftController::for_workload(
            DriftConfig {
                check_every: 2,
                threshold: 0.25,
                min_epoch_iters: 4,
                settle_tol: 0.05,
                embed_seed: 0,
                policy: RestartPolicy::Warm,
            },
            Arc::clone(&characterizer),
            &base,
            "twitter@A",
            sink,
        );
        let mut driver = TuningSession::new(env, config).with_drift(controller).into_driver();
        for _ in 0..12 {
            driver.step();
        }
        let restarts = driver.drift().map(|d| d.restarts()).unwrap_or(0);
        let epoch_start = driver.engine().epoch_start();
        (restarts, epoch_start, driver.into_outcome())
    };
    let (restarts_a, epoch_a, a) = run();
    let (restarts_b, epoch_b, b) = run();
    assert!(restarts_a >= 1, "the drift must actually fire for this test to mean anything");
    assert_eq!(restarts_a, restarts_b);
    assert_eq!(epoch_a, epoch_b, "same-seed sessions restarted at different iterations");
    assert_eq!(a.history.len(), b.history.len());
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(fingerprint(ra), fingerprint(rb), "iteration {} diverged", ra.iteration);
    }
    assert_eq!(a.best_objective, b.best_objective);
}

#[test]
fn drifting_fleet_runs_are_bit_identical_across_worker_counts() {
    use restune::core::drift::DriftConfig;
    use restune::core::fleet::{mix_seed, FleetConfig, FleetService, ShardedStore, Tenant};
    use std::sync::Arc;

    // The fleet extension of the drift determinism contract: per-tenant
    // drift detection, epoch sealing into the shared store, and
    // warm-restarted traces depend only on each tenant's own state and its
    // **pinned** pre-start snapshot — never on sibling commits or worker
    // scheduling (DESIGN.md §12/§16).
    let characterizer = Arc::new(workload::WorkloadCharacterizer::train_default(5));
    let iters = 12;
    let run_fleet = |workers: usize| {
        let store = Arc::new(ShardedStore::new(4));
        let tenants: Vec<Tenant> = (0..3u64)
            .map(|id| {
                let seed = mix_seed(42, id);
                let base = WorkloadSpec::fleet_tenant(id);
                let env = TuningEnvironment::builder()
                    .instance(InstanceType::A)
                    .workload(base)
                    .resource(ResourceKind::Cpu)
                    .knob_set(KnobSet::cpu())
                    .seed(seed)
                    .schedule(dbsim::WorkloadSchedule::oltp_to_olap(seed, 4, 2))
                    .build();
                let mut config = quick_config(seed);
                config.optimizer =
                    AcquisitionOptimizer { n_candidates: 100, n_local: 25, local_sigma: 0.1 };
                config.init_iters = 2;
                config.static_bandwidth = 2.0;
                Tenant::restune_drift(
                    id,
                    format!("tenant-{id}"),
                    env,
                    config,
                    iters,
                    DriftConfig {
                        check_every: 2,
                        threshold: 0.25,
                        min_epoch_iters: 4,
                        settle_tol: 0.05,
                        embed_seed: 0,
                        policy: restune::core::drift::RestartPolicy::Warm,
                    },
                    Arc::clone(&characterizer),
                    Arc::clone(&store),
                )
            })
            .collect();
        FleetService::new(FleetConfig { workers, slice: 2, shards: 4 }).run(tenants)
    };

    let baseline = run_fleet(1);
    for t in &baseline.tenants {
        // The committed record covers the *current epoch* only: strictly
        // fewer observations than the full run (+1 default anchor) proves
        // every tenant actually sealed a pre-drift epoch mid-flight.
        assert!(
            t.record.observations.len() < iters + 1,
            "tenant {} never warm-restarted ({} observations)",
            t.id,
            t.record.observations.len()
        );
    }
    let out = run_fleet(3);
    assert_eq!(out.tenants.len(), baseline.tenants.len());
    for (a, b) in baseline.tenants.iter().zip(&out.tenants) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.record_json().unwrap(),
            b.record_json().unwrap(),
            "tenant {} sealed-epoch repository JSON diverged between workers=1 and workers=3",
            a.id
        );
        for (ra, rb) in a.outcome.history.iter().zip(&b.outcome.history) {
            assert_eq!(
                fingerprint(ra),
                fingerprint(rb),
                "tenant {} iteration {} diverged at workers=3",
                a.id,
                ra.iteration
            );
        }
    }
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards against the determinism test passing vacuously (e.g. a seed
    // that is ignored would also make same-seed runs identical).
    let a = run_once(7, 6);
    let b = run_once(8, 6);
    let traces_differ =
        a.history.iter().zip(&b.history).any(|(ra, rb)| fingerprint(ra) != fingerprint(rb));
    assert!(traces_differ, "seeds 7 and 8 produced identical traces");
}

fn build_repository(seed: u64) -> DataRepository {
    let characterizer = workload::WorkloadCharacterizer::train_default(seed);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(2).enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, seed + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::cpu(),
            ResourceKind::Cpu,
            &characterizer,
            20,
            seed + 100 + i as u64,
        ));
    }
    repo
}

#[test]
fn parallel_and_serial_step_paths_agree_for_arbitrary_seeds() {
    use propcheck::{check, Config};
    // The `RestuneConfig::parallel` contract, property-tested: thread
    // fan-out and batched candidate scoring must not move a single bit of
    // the algorithmic trace, for any session seed. Base learners are built
    // once; the property varies the seed and compares a full meta-boosted
    // run on both paths.
    let characterizer = workload::WorkloadCharacterizer::train_default(5);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(2).enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, 50 + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::cpu(),
            ResourceKind::Cpu,
            &characterizer,
            20,
            60 + i as u64,
        ));
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;
    check(
        "parallel_and_serial_step_paths_agree_for_arbitrary_seeds",
        Config::default().cases(3).seed(0xD0_0001),
        |g| {
            let seed = g.usize_in(0, 1_000_000) as u64;
            let run = |parallel: bool| {
                let mut config = quick_config(seed);
                config.init_iters = 3;
                config.optimizer =
                    AcquisitionOptimizer { n_candidates: 150, n_local: 40, local_sigma: 0.08 };
                config.parallel = parallel;
                let env = TuningEnvironment::builder()
                    .instance(InstanceType::A)
                    .workload(WorkloadSpec::twitter())
                    .resource(ResourceKind::Cpu)
                    .knob_set(KnobSet::cpu())
                    .seed(seed)
                    .build();
                TuningSession::with_base_learners(env, config, learners.clone(), mf.clone())
                    .run(6)
            };
            let par = run(true);
            let ser = run(false);
            propcheck::prop_assert_eq!(par.history.len(), ser.history.len());
            for (ra, rb) in par.history.iter().zip(&ser.history) {
                propcheck::prop_assert_eq!(fingerprint(ra), fingerprint(rb));
            }
            propcheck::prop_assert_eq!(par.best_objective, ser.best_objective);
            Ok(())
        },
    );
}

#[test]
fn fleet_runs_are_bit_identical_across_worker_counts_and_to_single_driver() {
    use restune::core::fleet::{mix_seed, FleetConfig, FleetService, Tenant};

    // The fleet determinism contract (DESIGN.md §12): per-tenant outcomes
    // and repository JSON depend only on each tenant's own spec — never on
    // worker count, scheduling, or fleet composition — and equal a plain
    // single-driver run of the same configuration.
    let tenant_config = |seed: u64| {
        let mut config = quick_config(seed);
        config.optimizer =
            AcquisitionOptimizer { n_candidates: 100, n_local: 25, local_sigma: 0.1 };
        config.init_iters = 2;
        config.parallel = false;
        config
    };
    let tenant_env = |id: u64, seed: u64| {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::fleet_tenant(id))
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::cpu())
            .seed(seed)
            .build()
    };
    let iters = 5;
    let build_tenants = || -> Vec<Tenant> {
        (0..6u64)
            .map(|id| {
                let seed = mix_seed(42, id);
                Tenant::restune(
                    id,
                    format!("tenant-{id}"),
                    tenant_env(id, seed),
                    tenant_config(seed),
                    iters,
                )
            })
            .collect()
    };
    let run_fleet = |workers: usize| {
        FleetService::new(FleetConfig { workers, slice: 2, shards: 4 }).run(build_tenants())
    };

    let ncpu = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let baseline = run_fleet(1);
    for workers in [4, ncpu] {
        let out = run_fleet(workers);
        assert_eq!(out.tenants.len(), baseline.tenants.len());
        for (a, b) in baseline.tenants.iter().zip(&out.tenants) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.record_json().unwrap(),
                b.record_json().unwrap(),
                "tenant {} repository JSON diverged between workers=1 and workers={workers}",
                a.id
            );
            for (ra, rb) in a.outcome.history.iter().zip(&b.outcome.history) {
                assert_eq!(
                    fingerprint(ra),
                    fingerprint(rb),
                    "tenant {} iteration {} diverged at workers={workers}",
                    a.id,
                    ra.iteration
                );
            }
        }
    }

    // Single-driver baseline: each tenant alone, no fleet machinery at all.
    for t in &baseline.tenants {
        let seed = mix_seed(42, t.id);
        let solo = TuningSession::new(tenant_env(t.id, seed), tenant_config(seed)).run(iters);
        assert_eq!(solo.history.len(), t.outcome.history.len());
        for (ra, rb) in solo.history.iter().zip(&t.outcome.history) {
            assert_eq!(
                fingerprint(ra),
                fingerprint(rb),
                "tenant {} diverged from its single-driver baseline",
                t.id
            );
        }
        assert_eq!(solo.best_objective, t.outcome.best_objective);
    }
}

#[test]
fn repository_serialization_is_byte_identical_across_runs() {
    let json_a = build_repository(11).to_json().expect("serializes");
    let json_b = build_repository(11).to_json().expect("serializes");
    assert_eq!(json_a, json_b, "same-seed repositories serialized differently");
    assert!(!json_a.is_empty());

    // Stability also holds through a decode/encode cycle: parse then
    // re-serialize and the bytes must not move (insertion-order objects,
    // shortest-round-trip floats).
    let decoded = DataRepository::from_json(&json_a).expect("parses");
    let json_c = decoded.to_json().expect("re-serializes");
    assert_eq!(json_a, json_c, "serialization is not a fixed point");
}
