//! End-to-end checks of the tracing layer (DESIGN.md §10) against real
//! tuning runs: JSONL round-trips, span nesting under the scoped-thread
//! parallel path, counter accuracy against known eval/retry counts from a
//! seeded faulty run, and the span-totals-vs-`IterationTiming` contract.

use dbsim::{FaultPlan, InstanceType, KnobSet, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::prelude::*;
use std::sync::{Mutex, MutexGuard};
use trace::{SpanEvent, TraceSnapshot};

/// The collector is process-global and the test harness runs on parallel
/// threads: every test here records into it, so they serialize on one lock.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 60, local_sigma: 0.08 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 15, ..Default::default() },
        dynamic_samples: 12,
        seed,
        ..Default::default()
    }
}

fn env_with(seed: u64, plan: Option<FaultPlan>) -> TuningEnvironment {
    let mut b = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    b.build()
}

#[test]
fn thirty_iteration_span_totals_match_iteration_timing_sums() {
    let _g = trace_lock();
    trace::enable();
    trace::reset();
    let mut config = quick_config(11);
    config.parallel = true;
    let mut session = TuningSession::new(env_with(11, None), config);
    let mut sums = [0.0_f64; 5];
    let mut replay_sim = 0.0;
    for _ in 0..30 {
        let t = session.step().timing;
        sums[0] += t.meta_data_processing_s;
        sums[1] += t.model_update_s;
        sums[2] += t.gp_fit_s;
        sums[3] += t.weight_update_s;
        sums[4] += t.recommendation_s;
        replay_sim += t.replay_s;
    }
    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    // IterationTiming is *derived from* the spans (the same finish_s()
    // values), so the acceptance bound of 1% is loose — these are exact.
    let phases =
        ["meta_data_processing", "model_update", "gp_fit", "weight_update", "recommendation"];
    for (phase, sum) in phases.iter().zip(sums) {
        let total = snap.total_for(phase);
        assert!(
            (total - sum).abs() <= 0.01 * sum.max(1e-12),
            "{phase}: span total {total} vs timing sum {sum}"
        );
    }
    // replay_s is simulated seconds; the histogram carries the same values.
    let h = snap.hist("replay.sim_s").expect("replay histogram");
    assert_eq!(h.count, 30);
    assert!((h.sum - replay_sim).abs() < 1e-9);
    // One root span per iteration, phases nested beneath it.
    let agg = snap.span_agg();
    assert_eq!(agg["iteration"].count, 30);
    assert_eq!(agg["iteration/model_update/gp_fit"].count, 30);
    assert_eq!(snap.counter("loop.iterations"), 30);
}

#[test]
fn parallel_path_nests_scoped_thread_spans_under_their_phases() {
    let _g = trace_lock();
    trace::enable();
    trace::reset();
    let mut config = quick_config(5);
    config.parallel = true;
    config.init_iters = 2;
    // Meta-boosted session so per-learner dynamic-weight draws fan out on
    // scoped threads (serial draws would produce the same paths).
    let characterizer = workload::WorkloadCharacterizer::train_default(3);
    let mut repo = restune::core::repository::DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(2).enumerate() {
        let mut dbms = dbsim::SimulatedDbms::new(InstanceType::A, spec, 60 + i as u64);
        repo.add(restune::core::repository::TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            12,
            80 + i as u64,
        ));
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;
    trace::reset(); // drop events from repository collection
    let mut session =
        TuningSession::with_base_learners(env_with(5, None), config, learners, mf);
    for _ in 0..6 {
        session.step();
    }
    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    let agg = snap.span_agg();
    // The three metric GPs fit on scoped threads but aggregate under the
    // ambient gp_fit path via context propagation.
    for metric in ["fit_res", "fit_tps", "fit_lat"] {
        let path = format!("iteration/model_update/gp_fit/{metric}");
        assert_eq!(agg[&path].count, 6, "missing per-metric fit spans at {path}");
    }
    // Per-learner posterior draws (4 dynamic iterations x 3 learners: 2 base
    // + target) under the weight_update path.
    let draws = &agg["iteration/model_update/weight_update/learner_draws"];
    assert_eq!(draws.count, 4 * 3);
    // Candidate scoring chunks under the recommendation path.
    let scored = agg
        .iter()
        .filter(|(p, _)| p.as_str().starts_with("iteration/recommendation/score_candidates"))
        .map(|(_, a)| a.count)
        .sum::<u64>();
    assert!(scored >= 6, "expected chunk-scoring spans, got {scored}");
    assert_eq!(snap.counter("acq.candidates_scored"), 6 * 360);
}

#[test]
fn counters_match_known_eval_and_retry_counts_from_a_seeded_faulty_run() {
    let _g = trace_lock();
    trace::enable();
    trace::reset();
    let iters = 25;
    let plan = FaultPlan::none().with_transient_rate(0.25).with_seed(0xFA);
    let outcome = TuningSession::new(env_with(3, Some(plan)), quick_config(3)).run(iters);
    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    // Resolution-level counters mirror FailureCounts exactly.
    assert_eq!(snap.counter("replay.crash") as usize, outcome.failures.crashes);
    assert_eq!(snap.counter("replay.timeout") as usize, outcome.failures.timeouts);
    assert_eq!(snap.counter("replay.partial") as usize, outcome.failures.partials);
    assert_eq!(snap.counter("replay.retries") as usize, outcome.failures.retries);
    assert!(outcome.failures.retries > 0, "a 25% fault rate over 25 iters should retry");
    // Attempt-level eval count: the default-config evaluation at session
    // build, plus one attempt per iteration, plus one per retry.
    assert_eq!(
        snap.counter("dbsim.evals") as usize,
        1 + iters + outcome.failures.retries
    );
    assert_eq!(snap.counter("loop.iterations") as usize, iters);
    // Fault-kind attempt counters cover at least every resolved failure.
    assert!(
        snap.counter("dbsim.outcome.crash") as usize >= outcome.failures.crashes,
        "attempt-level crashes must include resolution-level ones"
    );
}

#[test]
fn pooled_worker_reuse_does_not_leak_span_paths_across_task_boundaries() {
    let _g = trace_lock();
    trace::enable();
    trace::reset();
    // A coordinator opens the fleet root span and hands its context to one
    // persistent worker thread, which runs two tasks back to back — the
    // pool-reuse shape. Task 1 misbehaves: an inner span is leaked (as after
    // a panic unwound past it), so the worker's path stack still holds
    // `fleet/tenant/iteration` when the task ends.
    let root = trace::span!("fleet");
    let ctx = trace::current_context();
    std::thread::spawn(move || {
        {
            let _t1 = trace::task_scope(&ctx, 1);
            let tenant_span = trace::span!("tenant");
            let leaked = trace::span!("iteration");
            std::mem::forget(leaked);
            drop(tenant_span);
        }
        // Task 2 reuses the worker. The task boundary must have cleared the
        // residue: its spans are rooted at the handed-off context, not under
        // task 1's abandoned path.
        {
            let _t2 = trace::task_scope(&ctx, 2);
            let tenant_span = trace::span!("tenant");
            let iter_span = trace::span!("iteration");
            drop(iter_span);
            drop(tenant_span);
        }
    })
    .join()
    .expect("worker");
    drop(root);
    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    assert_eq!(snap.tasks(), vec![1, 2]);
    // Task 1's closed span recorded at its true path; the leaked span never
    // produced an event (it never closed) and never prefixed anyone else.
    let t1: Vec<&str> = snap.spans_for_task(1).iter().map(|e| e.path.as_str()).collect();
    assert_eq!(t1, vec!["fleet/tenant"]);
    let t2: Vec<&str> = snap.spans_for_task(2).iter().map(|e| e.path.as_str()).collect();
    assert_eq!(t2, vec!["fleet/tenant/iteration", "fleet/tenant"]);
    // The coordinator's root span is untouched by the workers' stack churn.
    let roots: Vec<&SpanEvent> = snap.spans.iter().filter(|e| e.path == "fleet").collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(TraceSnapshot::task_of(roots[0]), None);
}

#[test]
fn fleet_run_emits_a_complete_span_tree_per_tenant() {
    use restune::core::fleet::{mix_seed, FleetConfig, FleetService, Tenant};

    let _g = trace_lock();
    trace::enable();
    trace::reset();
    const ITERS: usize = 4;
    const SLICE: usize = 2;
    let n_tenants = 4u64;
    let tenants: Vec<Tenant> = (0..n_tenants)
        .map(|id| {
            let seed = mix_seed(0x7E57, id);
            let env = TuningEnvironment::builder()
                .instance(InstanceType::A)
                .workload(WorkloadSpec::fleet_tenant(id))
                .resource(ResourceKind::Cpu)
                .knob_set(KnobSet::cpu())
                .seed(seed)
                .build();
            let mut config = quick_config(seed);
            config.optimizer =
                AcquisitionOptimizer { n_candidates: 80, n_local: 20, local_sigma: 0.1 };
            config.init_iters = 2;
            Tenant::restune(id, format!("tenant-{id}"), env, config, ITERS)
        })
        .collect();
    let out = FleetService::new(FleetConfig { workers: 2, slice: SLICE, shards: 4 })
        .run(tenants);
    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    assert_eq!(out.tenants.len(), n_tenants as usize);
    // The shared collector slices back into one complete tree per tenant,
    // even though two workers interleaved four tenants' slices.
    assert_eq!(snap.tasks(), (0..n_tenants).collect::<Vec<_>>());
    for id in 0..n_tenants {
        let spans = snap.spans_for_task(id);
        for ev in &spans {
            assert!(
                ev.path == "fleet/tenant" || ev.path.starts_with("fleet/tenant/"),
                "tenant {id} span escaped its tree: {}",
                ev.path
            );
        }
        let at = |path: &str| spans.iter().filter(|e| e.path == path).count();
        assert_eq!(at("fleet/tenant/iteration"), ITERS, "tenant {id} iteration spans");
        assert_eq!(at("fleet/tenant/iteration/model_update/gp_fit"), ITERS, "tenant {id}");
        assert_eq!(at("fleet/tenant/iteration/recommendation"), ITERS, "tenant {id}");
        // One `tenant` span per scheduled slice of the iteration budget.
        assert_eq!(at("fleet/tenant"), ITERS.div_ceil(SLICE), "tenant {id} slice spans");
    }
    // Exactly one untagged root span from the coordinating thread.
    let agg = snap.span_agg();
    assert_eq!(agg["fleet"].count, 1);
}

#[test]
fn real_run_snapshot_survives_a_jsonl_round_trip() {
    let _g = trace_lock();
    trace::enable();
    trace::reset();
    let plan = FaultPlan::none().with_transient_rate(0.2).with_seed(1);
    TuningSession::new(env_with(9, Some(plan)), quick_config(9)).run(8);
    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    let text = snap.to_jsonl().expect("render jsonl");
    let back = TraceSnapshot::from_jsonl(&text).expect("parse jsonl");
    assert_eq!(back, snap, "round-trip must preserve events exactly");
    assert_eq!(back.span_agg(), snap.span_agg());
    assert_eq!(back.counters, snap.counters);
    assert_eq!(back.hists, snap.hists);
}
