//! End-to-end drift detection and warm-restart re-tuning (DESIGN.md §16):
//! a session whose workload a [`dbsim::WorkloadSchedule`] drifts into the
//! OLAP mix must detect the drift, seal its pre-drift epoch into the
//! repository as a meta-learning base task, and restart with that task as a
//! live transfer source — all while remaining observable through the
//! `drift.*` counters and the health-telemetry stream.

use std::sync::{Arc, Mutex};

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSchedule, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::diag::{TunerHealth, HEALTH_EVENT};
use restune::core::drift::{DriftConfig, DriftController, LocalSealSink, RestartPolicy};
use restune::core::repository::{DataRepository, TaskRecord};
use restune::prelude::*;

/// Serializes the tests that toggle the global trace collector.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

const SEED: u64 = 42;

fn drift_bo_config() -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 150, n_local: 40, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
        dynamic_samples: 8,
        init_iters: 4,
        // The sealed OLTP profile sits far from the drifted OLAP profile in
        // meta-feature space; the wide bandwidth keeps its static
        // Epanechnikov weight nonzero so the transfer visibly engages.
        static_bandwidth: 2.0,
        trace: true,
        diag: true,
        seed: SEED,
        ..Default::default()
    }
}

fn drift_config() -> DriftConfig {
    DriftConfig {
        check_every: 2,
        threshold: 0.25,
        min_epoch_iters: 6,
        settle_tol: 0.05,
        embed_seed: 0,
        policy: RestartPolicy::Warm,
    }
}

/// Two finished OLTP tasks in the session's exact knob space — the
/// historical repository the sealed epoch joins.
fn historical_repository(characterizer: &workload::WorkloadCharacterizer) -> DataRepository {
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(2).enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, SEED + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::cpu(),
            ResourceKind::Cpu,
            characterizer,
            16,
            SEED + 100 + i as u64,
        ));
    }
    repo
}

#[test]
fn drifting_session_seals_its_past_and_warm_restarts_with_it_as_transfer_source() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::reset();
    trace::enable();

    let characterizer = Arc::new(workload::WorkloadCharacterizer::train_default(SEED));
    let repo = historical_repository(&characterizer);
    let historical_tasks = repo.tasks().len();
    assert_eq!(historical_tasks, 2);

    let base = WorkloadSpec::twitter();
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(base.clone())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::cpu())
        .seed(SEED)
        .schedule(WorkloadSchedule::oltp_to_olap(SEED, 6, 4))
        .build();
    let sink = Box::new(LocalSealSink::new(
        repo,
        gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
    ));
    let controller = DriftController::for_workload(
        drift_config(),
        Arc::clone(&characterizer),
        &base,
        "twitter@A",
        sink,
    );
    let mut driver =
        TuningSession::new(env, drift_bo_config()).with_drift(controller).into_driver();
    let iters = 16;
    for _ in 0..iters {
        driver.step();
    }

    // The controller fired: one drift, one sealed epoch, one restart.
    let drift = driver.drift().expect("controller installed");
    assert_eq!(drift.restarts(), 1, "expected exactly one warm restart");
    assert_eq!(drift.sealed_tasks(), 1);
    assert_eq!(drift.epoch(), 1);
    let epoch_start = driver.engine().epoch_start();
    assert!(epoch_start > 0 && epoch_start < iters, "restart mid-run, got {epoch_start}");

    let snap = trace::snapshot();
    trace::disable();
    trace::reset();

    // Observability: the counters fired, including the settle debounce (the
    // first threshold crossing lands mid-ramp and must defer the restart).
    assert!(snap.counter("drift.checks") >= 2);
    assert!(snap.counter("drift.detected") >= 2);
    assert!(snap.counter("drift.pending") >= 1, "ramp crossing must debounce before restarting");
    assert_eq!(snap.counter("drift.restarts"), 1);
    assert_eq!(snap.counter("drift.epochs.sealed"), 1);

    // The restart event names the sealed task and the refitted learner set:
    // both historical tasks plus the sealed epoch.
    let restarts = snap.events_named("drift.restart");
    assert_eq!(restarts.len(), 1);
    let ev = restarts[0];
    assert_eq!(ev.str("sealed"), Some("twitter@A#epoch0"));
    assert_eq!(ev.int("learners"), Some(historical_tasks as i64 + 1));
    assert!(ev.int("sealed_obs").unwrap_or(0) > 0, "sealed epoch must carry observations");

    // Health telemetry carries the drift block after the restart — and the
    // last record reflects the final controller state.
    let health: Vec<TunerHealth> =
        snap.events_named(HEALTH_EVENT).into_iter().filter_map(TunerHealth::from_event).collect();
    assert_eq!(health.len(), iters);
    assert!(health[0].drift.is_none(), "no drift block before the first restart");
    let last = health.last().unwrap().drift.as_ref().expect("drift block after restart");
    assert_eq!(last.epoch, 1);
    assert_eq!(last.restarts, 1);
    assert_eq!(last.sealed_tasks, 1);
    assert!(last.last_score >= 0.0);

    let outcome = driver.into_outcome();
    assert_eq!(outcome.history.len(), iters);

    // Before the restart the session has no base-learners (weights None);
    // after it, the weight vector spans the matching repository tasks plus
    // the target (last). The sealed epoch joined the repository *last*, so
    // its weight sits just before the target's — and the wide static
    // bandwidth keeps it strictly positive: the session's own sealed past is
    // a live transfer source (nonzero RGPE weight).
    for r in &outcome.history[..epoch_start] {
        assert!(r.weights.is_none(), "pre-drift iteration {} had ensemble weights", r.iteration);
    }
    let post_weights: Vec<&Vec<f64>> =
        outcome.history[epoch_start..].iter().filter_map(|r| r.weights.as_ref()).collect();
    assert!(!post_weights.is_empty(), "no post-restart iteration recorded ensemble weights");
    for w in post_weights {
        assert_eq!(w.len(), historical_tasks + 2, "base learners (incl. sealed) + target");
        let sealed_weight = w[w.len() - 2];
        assert!(
            sealed_weight > 0.0,
            "sealed pre-drift task must carry a nonzero transfer weight, got {sealed_weight}"
        );
    }
}

#[test]
fn cold_restart_seals_the_epoch_but_transfers_nothing() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::reset();

    let characterizer = Arc::new(workload::WorkloadCharacterizer::train_default(SEED));
    let base = WorkloadSpec::twitter();
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(base.clone())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::cpu())
        .seed(SEED)
        .schedule(WorkloadSchedule::oltp_to_olap(SEED, 6, 4))
        .build();
    let sink = Box::new(LocalSealSink::new(
        historical_repository(&characterizer),
        gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
    ));
    let mut config = drift_bo_config();
    config.trace = false;
    config.diag = false;
    let controller = DriftController::for_workload(
        DriftConfig { policy: RestartPolicy::Cold, ..drift_config() },
        Arc::clone(&characterizer),
        &base,
        "twitter@A",
        sink,
    );
    let mut driver = TuningSession::new(env, config).with_drift(controller).into_driver();
    for _ in 0..16 {
        driver.step();
    }
    let drift = driver.drift().expect("controller installed");
    assert_eq!(drift.restarts(), 1);
    assert_eq!(drift.sealed_tasks(), 1, "cold restarts still seal the epoch");
    let epoch_start = driver.engine().epoch_start();
    assert!(epoch_start > 0);
    // No transfer: the restarted epoch runs meta-free, so no iteration ever
    // records ensemble weights.
    let outcome = driver.into_outcome();
    assert!(
        outcome.history.iter().all(|r| r.weights.is_none()),
        "cold restart must not hand the proposer any base-learners"
    );
}
