//! Fleet fault-isolation regression tests (DESIGN.md §12): one tenant's
//! replay-failure storm — or an outright panicking strategy — must be
//! contained to that tenant. Siblings' outcomes are bit-identical to a fleet
//! that never contained the poisoned tenant at all.

use dbsim::{FaultPlan, InstanceType, KnobSet, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::fleet::{mix_seed, FleetConfig, FleetOutcome, FleetService, Tenant};
use restune::prelude::*;

const ITERS: usize = 5;

fn tenant_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 100, n_local: 25, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 6, ..Default::default() },
        dynamic_samples: 4,
        init_iters: 2,
        seed,
        ..Default::default()
    }
}

/// A fleet tenant whose replay fails transiently at `fault_rate`; seeds and
/// workloads derive from the id alone, so the same id always yields the same
/// tenant regardless of fleet composition.
fn tenant(id: u64, fault_rate: f64) -> Tenant {
    let seed = mix_seed(0xBEEF, id);
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::fleet_tenant(id))
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::cpu())
        .seed(seed)
        .fault_plan(FaultPlan::none().with_transient_rate(fault_rate).with_seed(seed ^ 0xFA))
        .build();
    Tenant::restune(id, format!("tenant-{id}"), env, tenant_config(seed), ITERS)
}

/// Asserts the tenant with `id` is bit-identical between the two fleets.
fn assert_tenant_identical(a: &FleetOutcome, b: &FleetOutcome, id: u64) {
    let ta = a.tenants.iter().find(|t| t.id == id).expect("tenant in first fleet");
    let tb = b.tenants.iter().find(|t| t.id == id).expect("tenant in second fleet");
    assert_eq!(
        ta.record_json().unwrap(),
        tb.record_json().unwrap(),
        "tenant {id} repository JSON diverged"
    );
    assert_eq!(ta.outcome.history.len(), tb.outcome.history.len());
    for (ra, rb) in ta.outcome.history.iter().zip(&tb.outcome.history) {
        assert_eq!(
            format!("{:?} {:?} {:?} {:?}", ra.point, ra.observation, ra.objective, ra.retries),
            format!("{:?} {:?} {:?} {:?}", rb.point, rb.observation, rb.objective, rb.retries),
            "tenant {id} iteration {} diverged",
            ra.iteration
        );
    }
    assert_eq!(ta.outcome.best_objective, tb.outcome.best_objective);
}

#[test]
fn a_total_fault_storm_is_contained_to_its_tenant() {
    const POISONED: u64 = 7;
    // 16 tenants; tenant 7's every replay attempt fails (OOM/timeout storm
    // at 100% transient rate). Run on 4 workers.
    let with_storm: Vec<Tenant> = (0..16u64)
        .map(|id| tenant(id, if id == POISONED { 1.0 } else { 0.0 }))
        .collect();
    let storm_fleet =
        FleetService::new(FleetConfig { workers: 4, slice: 2, shards: 8 }).run(with_storm);
    assert_eq!(storm_fleet.tenants.len(), 16);
    assert_eq!(storm_fleet.poisoned().count(), 0, "a fault storm must not poison the tenant");

    // The storm tenant itself survives on the engine's resilience semantics:
    // every iteration exhausts its retries and is penalized, yet the tenant
    // completes its budget and commits a record.
    let storm = storm_fleet.tenants.iter().find(|t| t.id == POISONED).unwrap();
    assert_eq!(storm.iterations_run, ITERS);
    let f = &storm.outcome.failures;
    assert!(f.retries > 0, "storm tenant must have burned retries");
    assert_eq!(
        f.crashes + f.timeouts + f.partials,
        ITERS,
        "every storm iteration must end in a failure outcome, got {f:?}"
    );
    for r in &storm.outcome.history {
        assert!(r.failure.is_some(), "storm iteration {} reported no failure", r.iteration);
    }

    // Siblings are bit-identical to a 15-tenant fleet that never contained
    // the storm tenant — run at a different worker count for good measure.
    let without_storm: Vec<Tenant> =
        (0..16u64).filter(|&id| id != POISONED).map(|id| tenant(id, 0.0)).collect();
    let clean_fleet =
        FleetService::new(FleetConfig { workers: 2, slice: 3, shards: 8 }).run(without_storm);
    assert_eq!(clean_fleet.tenants.len(), 15);
    for id in (0..16u64).filter(|&id| id != POISONED) {
        assert_tenant_identical(&storm_fleet, &clean_fleet, id);
    }
}

/// A strategy that panics mid-run — modelling a tenant whose proposer hits
/// an unrecoverable bug, which must not take the fleet (or its worker) down.
struct Exploding {
    after: usize,
    calls: usize,
}

impl restune::core::Proposer for Exploding {
    fn propose(
        &mut self,
        view: &restune::core::HistoryView<'_>,
        _iter: usize,
        _seed: u64,
    ) -> restune::core::Proposal {
        self.calls += 1;
        if self.calls > self.after {
            panic!("strategy bug");
        }
        restune::core::Proposal::point(vec![0.5; view.problem.dim()])
    }
}

#[test]
fn a_panicking_strategy_is_contained_to_its_tenant() {
    use restune::core::engine::{EngineSettings, EvalEngine};
    use restune::core::resilience::ReplayPolicy;
    use restune::core::TuningDriver;

    let exploding_env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::cpu())
        .seed(3)
        .build();
    let engine = EvalEngine::new(
        exploding_env,
        EngineSettings {
            policy: ReplayPolicy::default(),
            convergence_window: 10,
            convergence_epsilon: 0.005,
            seed_default_observation: false,
        },
    );
    let exploding = Tenant::new(
        99,
        "exploding",
        ITERS,
        Vec::new(),
        TuningDriver::new(engine, Exploding { after: 2, calls: 0 }, 0),
    );

    let mut tenants: Vec<Tenant> = (0..4u64).map(|id| tenant(id, 0.0)).collect();
    tenants.push(exploding);
    let fleet =
        FleetService::new(FleetConfig { workers: 2, slice: 2, shards: 4 }).run(tenants);
    assert_eq!(fleet.tenants.len(), 5, "the fleet must complete despite the panic");
    let poisoned: Vec<u64> = fleet.poisoned().map(|t| t.id).collect();
    assert_eq!(poisoned, vec![99]);
    let exploded = fleet.tenants.iter().find(|t| t.id == 99).unwrap();
    assert_eq!(exploded.iterations_run, 2, "iterations before the panic are kept");

    // Siblings match a fleet that never contained the panicking tenant.
    let clean = FleetService::new(FleetConfig { workers: 1, slice: 4, shards: 4 })
        .run((0..4u64).map(|id| tenant(id, 0.0)).collect());
    for id in 0..4u64 {
        assert_tenant_identical(&fleet, &clean, id);
    }
}
