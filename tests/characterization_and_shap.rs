//! Integration tests for the workload-characterization pipeline feeding the
//! meta-learner, and for the SHAP explainer over tuned configurations.

use dbsim::{Configuration, InstanceType, SimulatedDbms, WorkloadSpec};
use restune::core::meta::{epanechnikov, static_weights, BaseLearner};
use restune::core::shap::shap_path;
use restune::core::surrogate::GpTaskModel;
use restune::prelude::*;

#[test]
fn characterization_orders_similar_workloads_first() {
    let c = WorkloadCharacterizer::train_default(77);
    let target = c.embed_workload(&WorkloadSpec::twitter(), 1);
    let close = c.embed_workload(&WorkloadSpec::twitter_variations()[0], 1);
    let far = c.embed_workload(&WorkloadSpec::sales(), 1);
    assert!(target.distance(&close) < target.distance(&far));
    // Same-family variants sit within the static-weight bandwidth; foreign
    // families fall outside (weight 0 with the default 0.2 bandwidth).
    assert!(epanechnikov(target.distance(&close) / 0.2) > 0.0);
    assert!(epanechnikov(target.distance(&far) / 0.2) == 0.0);
}

#[test]
fn static_weights_pipeline_end_to_end() {
    let c = WorkloadCharacterizer::train_default(78);
    // Two base learners on trivially fitted models.
    let points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
    let vals: Vec<f64> = points.iter().map(|p| p[0]).collect();
    let model = GpTaskModel::fit(&points, &vals, &vals, &vals, &gp::GpConfig::fixed()).unwrap();
    let mk = |name: &str, spec: &WorkloadSpec| BaseLearner {
        task_id: name.into(),
        workload: name.into(),
        instance: InstanceType::A,
        meta_feature: c.embed_workload(spec, 2).probs,
        promising_point: None,
        model: model.clone(),
    };
    let base = vec![
        mk("twitter-like", &WorkloadSpec::twitter_variations()[0]),
        mk("sales-like", &WorkloadSpec::sales()),
    ];
    let target_mf = c.embed_workload(&WorkloadSpec::twitter(), 2).probs;
    let w = static_weights(&base, &target_mf, 0.2);
    assert!(w[0] > w[1], "similar workload should out-weigh dissimilar: {w:?}");
    assert_eq!(w[2], 0.75);
}

#[test]
fn shap_explains_a_real_tuning_outcome() {
    // Tune briefly, then explain the recommendation; Shapley efficiency must
    // tie the attributions to the actual metric deltas.
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(dbsim::KnobSet::case_study())
        .seed(5)
        .build();
    let mut config = RestuneConfig::default();
    config.optimizer.n_candidates = 300;
    config.gp.adam_iters = 15;
    let outcome = TuningSession::new(env, config).run(15);

    let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 5).with_noise(0.0);
    let knobs: Vec<String> = dbsim::KnobSet::case_study()
        .names()
        .iter()
        .map(|n| n.to_string())
        .collect();
    let path = shap_path(&dbms, &outcome.best_config, &knobs, 0);
    let cpu_sum: f64 = path.attributions.iter().map(|a| a.cpu).sum();
    let cpu_delta = path.current_metrics.0 - path.default_metrics.0;
    assert!((cpu_sum - cpu_delta).abs() < 1e-6);
    // Tuning reduced CPU, so attributions must sum negative.
    assert!(cpu_delta < 0.0);
}

#[test]
fn internal_metrics_differ_enough_for_ottertune_mapping() {
    // Sanity for the OtterTune baseline: different workloads produce
    // distinguishable internal-metric signatures on the same instance.
    let sig = |spec: WorkloadSpec| {
        let dbms = SimulatedDbms::new(InstanceType::A, spec, 0).with_noise(0.0);
        dbms.evaluate_noiseless(&Configuration::dba_default()).internal.to_vec()
    };
    let a = sig(WorkloadSpec::twitter());
    let b = sig(WorkloadSpec::sales());
    let dist = linalg::vector::euclidean_distance(&a, &b);
    assert!(dist > 1.0, "signatures indistinguishable: {dist}");
}
