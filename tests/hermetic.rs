//! Guards the hermetic-workspace invariant: every dependency of every crate
//! in this repository must resolve inside the repository. No crates.io
//! versions, no git dependencies, no registry access — `cargo build --offline`
//! on a machine with an empty cargo cache must work.

use std::fs;
use std::path::{Path, PathBuf};

/// Recursively collects every Cargo.toml under `root`, skipping build output
/// and VCS metadata.
fn find_manifests(root: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(root).expect("readable dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            find_manifests(&path, out);
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// Expands the `members` globs of the root manifest's `[workspace]` section
/// into concrete crate directories, so new workspace crates are covered by
/// these guards automatically instead of via a hardcoded list.
fn workspace_members(root: &Path) -> Vec<PathBuf> {
    let text = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let members_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("members"))
        .expect("root manifest declares workspace members");
    let mut members = Vec::new();
    for pattern in members_line.split('"').skip(1).step_by(2) {
        if let Some(prefix) = pattern.strip_suffix("/*") {
            let dir = root.join(prefix);
            for entry in fs::read_dir(&dir).expect("readable members dir") {
                let path = entry.expect("dir entry").path();
                if path.join("Cargo.toml").is_file() {
                    members.push(path);
                }
            }
        } else {
            members.push(root.join(pattern));
        }
    }
    members.sort();
    members
}

/// True for section headers whose entries are dependency specs.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(|c| c == '[' || c == ']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.starts_with("target.") && h.ends_with("dependencies")
}

#[test]
fn every_dependency_is_a_path_dependency() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = Vec::new();
    find_manifests(root, &mut manifests);
    // The manifest walk must cover every declared workspace member — a crate
    // added under crates/ is guarded without touching this test.
    let members = workspace_members(root);
    assert!(!members.is_empty(), "no workspace members declared");
    for member in &members {
        let manifest = member.join("Cargo.toml");
        assert!(
            manifests.contains(&manifest),
            "workspace member {} not covered by the manifest walk",
            member.display()
        );
    }
    assert!(manifests.len() > members.len(), "root manifest missing from the walk");

    let mut violations = Vec::new();
    for manifest in &manifests {
        let text = fs::read_to_string(manifest).expect("readable manifest");
        let mut in_deps = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_deps = is_dependency_section(line);
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let ok = line.contains("path =")
                || line.contains("path=")
                || line.contains("workspace = true")
                || line.contains("workspace=true");
            let suspicious = !ok
                || line.contains("git =")
                || line.contains("registry =")
                || line.contains("version =");
            if suspicious {
                violations.push(format!("{}:{}: {}", manifest.display(), lineno + 1, line));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-path dependencies found (the workspace must build with --offline):\n{}",
        violations.join("\n")
    );
}

#[test]
fn no_source_file_references_removed_registry_crates() {
    // The replaced crates must not creep back into source imports. Patterns
    // are assembled at runtime so this file does not match itself.
    let banned: Vec<String> =
        ["rand", "rand_distr", "serde", "serde_json", "proptest", "criterion", "crossbeam"]
            .iter()
            .map(|name| format!("use {name}::"))
            .collect();
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenders = Vec::new();
    visit_rs(root, &mut |path, text| {
        for pat in &banned {
            if text.contains(pat.as_str()) {
                offenders.push(format!("{}: {}", path.display(), pat));
            }
        }
    });
    assert!(offenders.is_empty(), "registry-crate imports found:\n{}", offenders.join("\n"));
}

fn visit_rs(dir: &Path, f: &mut impl FnMut(&Path, &str)) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap_or_default().to_string_lossy().to_string();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            visit_rs(&path, f);
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path).expect("readable source");
            f(&path, &text);
        }
    }
}
