//! End-to-end integration tests across crates: a full ResTune tuning run on
//! the simulated DBMS must reduce resource usage while honoring the SLA, and
//! meta-learning must accelerate convergence.

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::repository::{DataRepository, TaskRecord};
use restune::prelude::*;

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 400, n_local: 80, local_sigma: 0.08 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 20, ..Default::default() },
        dynamic_samples: 12,
        seed,
        ..Default::default()
    }
}

fn case_env(seed: u64) -> TuningEnvironment {
    TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        .build()
}

#[test]
fn tuning_reduces_cpu_substantially_within_sla() {
    let mut session = TuningSession::new(case_env(1), quick_config(1));
    let outcome = session.run(30);
    let default = outcome.default_objective();
    let best = outcome.best_objective.expect("a feasible best exists");
    assert!(best < 0.5 * default, "default {default:.1}% -> best {best:.1}%");
    // The iteration that produced the incumbent was feasible.
    let best_iter = outcome.best_iteration.expect("improved over the default");
    assert!(outcome.history[best_iter].feasible);
    // Verify against the ground-truth simulator: the recommended config
    // really does meet the SLA noiselessly.
    let dbms =
        SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 1).with_noise(0.0);
    let obs = dbms.evaluate_noiseless(&outcome.best_config);
    assert!(obs.tps >= outcome.sla.tps_floor() * 0.98, "tps {} floor {}", obs.tps, outcome.sla.tps_floor());
}

#[test]
fn incumbent_never_violates_sla() {
    let mut session = TuningSession::new(case_env(2), quick_config(2));
    let outcome = session.run(20);
    // best_feasible_objective must only ever decrease, and only via feasible
    // observations.
    let mut last = f64::INFINITY;
    for r in &outcome.history {
        assert!(r.best_feasible_objective <= last + 1e-9);
        if r.best_feasible_objective < last - 1e-9 {
            assert!(
                r.feasible || r.best_feasible_objective == outcome.default_objective(),
                "incumbent improved via an infeasible observation at iter {}",
                r.iteration
            );
        }
        last = r.best_feasible_objective;
    }
}

#[test]
fn meta_learning_accelerates_early_iterations() {
    // History: Twitter variations on the same instance, over the full
    // 14-knob CPU space — too large for 10 LHS samples to solve, so the
    // static-weight bootstrap has real work to do.
    let characterizer = workload::WorkloadCharacterizer::train_default(5);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(3).enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, 900 + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::cpu(),
            ResourceKind::Cpu,
            &characterizer,
            60,
            910 + i as u64,
        ));
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;

    let env = |seed| {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .seed(seed)
            .build()
    };
    let boosted =
        TuningSession::with_base_learners(env(3), quick_config(3), learners, mf).run(10);

    // The absolute transfer claim: with base-learners from Twitter-variation
    // tasks, the static-weight bootstrap finds a configuration far below the
    // default (~92 % CPU) within the first few iterations — the behaviour
    // Figure 3(b) shows. (Comparisons against a scratch run are seed-luck on
    // this workload: random 14-dim points have a fair chance of being decent
    // for Twitter; the harness-level Figures 3-5 do the statistical
    // comparison.)
    let early_best = boosted.best_curve()[4];
    assert!(
        early_best < 0.45 * boosted.default_objective(),
        "boosted best after 5 iterations is {early_best:.1}% (default {:.1}%)",
        boosted.default_objective()
    );
}

#[test]
fn convergence_criterion_fires_on_long_stable_runs() {
    let mut config = quick_config(4);
    config.convergence_window = 6;
    let mut session = TuningSession::new(case_env(4), config);
    let outcome = session.run(35);
    // With a flat optimum this run stabilizes; the detector should notice.
    if let Some(at) = outcome.converged_at {
        assert!(at >= 6);
        assert!(at < outcome.history.len());
    }
}

#[test]
fn timing_breakdown_reflects_replay_dominance() {
    let mut session = TuningSession::new(case_env(6), quick_config(6));
    let outcome = session.run(3);
    for r in &outcome.history {
        assert!(r.timing.replay_s > 60.0);
        assert!(r.timing.replay_s / r.timing.total_s() > 0.5);
    }
}
