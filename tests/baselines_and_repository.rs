//! Cross-crate integration: the baseline dispatcher, the grid-search ground
//! truth, and data-repository persistence.

use baselines::method::Setting;
use baselines::{grid_search, run_method, Method, MethodContext};
use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::repository::{DataRepository, TaskRecord};
use restune::prelude::*;

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 60, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 15, ..Default::default() },
        dynamic_samples: 10,
        init_iters: 6,
        seed,
        ..Default::default()
    }
}

fn case_env(seed: u64) -> TuningEnvironment {
    TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        .build()
}

fn small_repo(seed: u64) -> DataRepository {
    let characterizer = workload::WorkloadCharacterizer::train_default(seed);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(2).enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, seed + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            25,
            seed + 10 + i as u64,
        ));
    }
    repo
}

#[test]
fn restune_approaches_the_grid_search_ground_truth() {
    let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
    let grid = grid_search(&dbms, &KnobSet::case_study(), ResourceKind::Cpu, 8);

    let mut session = TuningSession::new(case_env(9), quick_config(9));
    let outcome = session.run(30);
    let best = outcome.best_objective.unwrap();
    assert!(
        best <= grid.best_objective * 1.35,
        "ResTune best {best:.2}% vs grid ground truth {:.2}%",
        grid.best_objective
    );
}

#[test]
fn all_methods_run_through_the_dispatcher_with_history() {
    let repo = small_repo(33);
    let ctx = MethodContext {
        config: quick_config(33),
        repository: Some(&repo),
        prepared_learners: None,
        setting: Setting::Original,
        target_meta_feature: vec![0.2; 5],
    };
    for method in [
        Method::Restune,
        Method::RestuneWithoutML,
        Method::RestuneWithoutWorkload,
        Method::ITuned,
        Method::OtterTuneWithConstraints,
        Method::CdbTuneWithConstraints,
    ] {
        let outcome = run_method(method, case_env(11), 8, &ctx);
        assert_eq!(outcome.history.len(), 8, "{}", method.name());
        assert!(outcome.best_objective.unwrap() <= outcome.default_obj_value + 1e-9);
    }
}

#[test]
fn varying_workloads_setting_hides_target_history() {
    let mut repo = small_repo(44);
    // Add a record for the exact target workload name.
    let characterizer = workload::WorkloadCharacterizer::train_default(44);
    let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 44);
    repo.add(TaskRecord::collect(
        &mut dbms,
        &KnobSet::case_study(),
        ResourceKind::Cpu,
        &characterizer,
        20,
        45,
    ));
    let learners_all = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    assert_eq!(learners_all.len(), 3);
    // Under VaryingWorkloads the Twitter task must be filtered out.
    let kept = repo.base_learners(&gp::GpConfig::fixed(), |t| t.workload != "Twitter");
    assert_eq!(kept.len(), 2);
}

#[test]
fn repository_persists_to_disk_and_back() {
    let repo = small_repo(55);
    let path = std::env::temp_dir().join("restune_it_repo.json");
    repo.save(&path).unwrap();
    let loaded = DataRepository::load(&path).unwrap();
    assert_eq!(loaded.len(), repo.len());
    assert_eq!(loaded.n_observations(), repo.n_observations());
    // Base learners built from the loaded repo predict identically.
    let a = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let b = loaded.base_learners(&gp::GpConfig::fixed(), |_| true);
    let p = vec![0.3, 0.5, 0.7];
    let pa = a[0].model.res.predict(&p).unwrap();
    let pb = b[0].model.res.predict(&p).unwrap();
    assert!((pa.mean - pb.mean).abs() < 1e-9);
    let _ = std::fs::remove_file(path);
}

#[test]
fn grid_search_best_is_reproducible_and_feasible() {
    let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
    let a = grid_search(&dbms, &KnobSet::case_study(), ResourceKind::Cpu, 6);
    let b = grid_search(&dbms, &KnobSet::case_study(), ResourceKind::Cpu, 6);
    assert_eq!(a.best_point, b.best_point);
    // The winning config beats the default and satisfies the SLA.
    let default_obs = dbms.evaluate_noiseless(&Configuration::dba_default());
    let sla = SlaConstraints::from_default_observation(&default_obs);
    let obs = dbms.evaluate_noiseless(&a.best_config);
    assert!(sla.is_feasible(&obs));
    assert!(a.best_objective < default_obs.resources.cpu_pct);
}
