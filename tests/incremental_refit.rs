//! End-to-end checks of the incremental surrogate layer (DESIGN.md §13):
//! the proposer's rank-1 target-GP extension past 40 observations, its
//! determinism, and the repository's sparse-fit policy for large histories.

use dbsim::{InstanceType, KnobSet, WorkloadSpec};
use restune::core::acquisition::AcquisitionOptimizer;
use restune::core::repository::{
    DataRepository, SurrogatePolicy, TaskObservation, TaskRecord,
};
use restune::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// The trace collector is process-global; serialize the tests that use it.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_config(seed: u64, incremental: bool) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 120, n_local: 30, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 10, ..Default::default() },
        dynamic_samples: 8,
        incremental_refit: incremental,
        seed,
        ..Default::default()
    }
}

fn env(seed: u64) -> TuningEnvironment {
    TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        .build()
}

fn history_digest(o: &TuningOutcome) -> String {
    o.history
        .iter()
        .map(|r| format!("{:?}|{:?}|{:?}\n", r.point, r.observation, r.best_feasible_objective))
        .collect()
}

#[test]
fn incremental_refit_kicks_in_past_forty_observations() {
    let _g = trace_lock();
    trace::enable();
    trace::reset();
    // 46 iterations: hyperopt runs on every iteration up to n = 40, then only
    // every `refit_hypers_every` (5) iterations. The off-schedule iterations
    // past 40 must extend the cached model instead of refitting.
    let outcome = TuningSession::new(env(21), quick_config(21, true)).run(46);
    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    assert_eq!(outcome.history.len(), 46);
    let incremental = snap.counter("gp.fit.incremental");
    let full = snap.counter("gp.fit.full");
    assert!(incremental > 0, "no incremental refits in 46 iterations");
    assert!(full > 0, "hyperopt iterations must still pay the full fit");
    // Every incremental model update grows three metric GPs by one rank-1
    // Cholesky append each.
    assert!(
        snap.counter("linalg.cholesky.update") >= 3 * incremental,
        "rank-1 appends ({}) must cover 3 GPs per incremental fit ({incremental})",
        snap.counter("linalg.cholesky.update"),
    );
    // The reuse/refit tally and the fit-path tally tell one story: every
    // no-hyperopt iteration went incremental (nothing invalidated the cache
    // in a single uninterrupted session).
    assert_eq!(incremental, snap.counter("gp.hypers.reuse"));
    assert_eq!(full, snap.counter("gp.hypers.refit"));
}

#[test]
fn incremental_sessions_are_deterministic_and_disabling_is_a_pure_fallback() {
    let _g = trace_lock();
    // Same seed, two runs with the incremental path on: bit-identical traces.
    let a = TuningSession::new(env(33), quick_config(33, true)).run(45);
    let b = TuningSession::new(env(33), quick_config(33, true)).run(45);
    assert_eq!(history_digest(&a), history_digest(&b), "incremental path must be deterministic");
    // With the path disabled the session still completes and stays
    // deterministic (it just pays full refits with default hyperparameters
    // on the off-schedule iterations).
    let c = TuningSession::new(env(33), quick_config(33, false)).run(45);
    let d = TuningSession::new(env(33), quick_config(33, false)).run(45);
    assert_eq!(history_digest(&c), history_digest(&d), "fallback path must be deterministic");
    assert_eq!(a.history.len(), c.history.len());
}

fn synthetic_record(n: usize, task_id: &str) -> TaskRecord {
    // A smooth 3-knob response surface; no DBMS replay needed, so a
    // 1,000-observation history is cheap to construct.
    let observations: Vec<TaskObservation> = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            let point = vec![t, (t * 13.7).fract(), (t * 5.3).fract()];
            TaskObservation {
                res: 40.0 + 20.0 * point[0] + 5.0 * point[1],
                tps: 900.0 - 300.0 * point[0],
                lat: 12.0 + 6.0 * point[2],
                metrics: Vec::new(),
                point,
            }
        })
        .collect();
    TaskRecord {
        task_id: task_id.into(),
        workload: "synthetic".into(),
        instance: InstanceType::A,
        resource: ResourceKind::Cpu,
        knob_names: vec!["a".into(), "b".into(), "c".into()],
        space_id: "native".into(),
        meta_feature: vec![0.3, 0.7],
        observations,
    }
}

#[test]
fn sparse_policy_handles_a_thousand_observation_base_task() {
    let _g = trace_lock();
    trace::enable();
    trace::reset();
    let mut repo = DataRepository::new();
    repo.add(synthetic_record(1000, "big@A"));
    repo.add(synthetic_record(40, "small@A"));
    let learners = repo.base_learners_with_policy(
        &gp::GpConfig::fixed(),
        &SurrogatePolicy::default(),
        |_| true,
    );
    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    assert_eq!(learners.len(), 2);
    let big = learners.iter().find(|l| l.task_id == "big@A").unwrap();
    let small = learners.iter().find(|l| l.task_id == "small@A").unwrap();
    // The 1,000-observation task crossed the 256-observation threshold and
    // fitted sparsely; the small one stayed dense.
    assert!(big.model.res.is_sparse() && big.model.tps.is_sparse() && big.model.lat.is_sparse());
    assert!(!small.model.res.is_sparse());
    assert_eq!(big.model.n(), 1000);
    assert_eq!(snap.counter("repository.fit.sparse"), 1);
    assert_eq!(snap.counter("repository.fit.dense"), 1);
    // No dense O(n^3) factorization of the full history happened: every
    // Cholesky factor the sparse path built is m x m (m = 64 inducing) or
    // the small task's 40 x 40 — the 1000-point kernel matrix was never
    // factored. Predictions from the sparse learner track the generating
    // surface in standardized units.
    let p = vec![0.5, (0.5 * 13.7_f64).fract(), (0.5 * 5.3_f64).fract()];
    let pred = big.model.res.predict(&p).unwrap();
    let expect_raw = 40.0 + 20.0 * p[0] + 5.0 * p[1];
    let got_raw = big.model.scalers.res.inverse(pred.mean);
    assert!(
        (got_raw - expect_raw).abs() < 2.0,
        "sparse prediction {got_raw} vs surface {expect_raw}"
    );
}

#[test]
fn sparse_learners_participate_in_a_meta_boosted_session() {
    let _g = trace_lock();
    // A session whose base-learner pool contains a sparse (big-history)
    // learner must run end to end: static weights, dynamic ranking-loss
    // weights (the sparse learner draws joint posterior samples), and
    // recommendation.
    let mut repo = DataRepository::new();
    repo.add(synthetic_record(300, "big@A"));
    let learners = repo.base_learners_with_policy(
        &gp::GpConfig::fixed(),
        &SurrogatePolicy::default(),
        |_| true,
    );
    assert!(learners[0].model.res.is_sparse());
    let mut config = quick_config(7, true);
    config.init_iters = 2;
    let outcome = TuningSession::with_base_learners(
        env(7),
        config,
        learners,
        vec![0.3, 0.7],
    )
    .run(6);
    assert_eq!(outcome.history.len(), 6);
    assert!(outcome.best_objective.is_some());
}
