//! Total-cost-of-ownership analysis (§7.6, Tables 8–9).
//!
//! The paper derives per-core and per-GB 1-year prices from the public AWS /
//! Azure / Aliyun RDS-MySQL calculators (e.g. the Aliyun example works out to
//! $45 per core-year) and multiplies by the resource reduction ResTune
//! achieves. Those calculators are live web tools; this module carries static
//! price tables in the same ballpark, documented as synthetic stand-ins.


/// A cloud provider's derived RDS-MySQL unit prices (1-year commitments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderPricing {
    /// Display name.
    pub name: &'static str,
    /// 1-year cost per vCPU core (USD).
    pub per_core_year: f64,
    /// 1-year cost per GB of RAM (USD).
    pub per_gb_year: f64,
}

/// The three providers the paper compares.
pub fn providers() -> [ProviderPricing; 3] {
    [
        ProviderPricing { name: "AWS", per_core_year: 182.0, per_gb_year: 77.0 },
        ProviderPricing { name: "Azure", per_core_year: 168.0, per_gb_year: 67.0 },
        // The paper's worked example: ($4032 - $3852) / 4 = $45/core-year.
        ProviderPricing { name: "Aliyun", per_core_year: 45.0, per_gb_year: 168.0 },
    ]
}

/// One row of a TCO reduction report.
#[derive(Debug, Clone, PartialEq)]
pub struct TcoReduction {
    /// Used resource before tuning (cores or GB).
    pub original: f64,
    /// Used resource after tuning.
    pub optimized: f64,
    /// Per-provider 1-year savings, in `providers()` order.
    pub per_provider: Vec<f64>,
    /// Mean savings across providers.
    pub average: f64,
}

/// Converts a CPU-utilization pair into used cores on an instance, the way
/// Table 8 reports "Original CPU / Optimized CPU".
pub fn used_cores(cpu_pct: f64, total_cores: u32) -> f64 {
    (cpu_pct / 100.0 * total_cores as f64).ceil()
}

/// 1-year TCO reduction for a CPU optimization (Table 8): whole cores freed ×
/// per-core price.
pub fn cpu_tco_reduction(original_cores: f64, optimized_cores: f64) -> TcoReduction {
    let freed = (original_cores - optimized_cores).max(0.0);
    let per_provider: Vec<f64> =
        providers().iter().map(|p| freed * p.per_core_year).collect();
    let average = per_provider.iter().sum::<f64>() / per_provider.len() as f64;
    TcoReduction { original: original_cores, optimized: optimized_cores, per_provider, average }
}

/// 1-year TCO reduction for a memory optimization (Table 9): GB freed ×
/// per-GB price, reported per provider.
pub fn memory_tco_reduction(original_gb: f64, optimized_gb: f64) -> TcoReduction {
    let freed = (original_gb - optimized_gb).max(0.0);
    let per_provider: Vec<f64> = providers().iter().map(|p| freed * p.per_gb_year).collect();
    let average = per_provider.iter().sum::<f64>() / per_provider.len() as f64;
    TcoReduction { original: original_gb, optimized: optimized_gb, per_provider, average }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn used_cores_rounds_up() {
        assert_eq!(used_cores(86.4, 48), 42.0);
        assert_eq!(used_cores(99.1, 8), 8.0);
        assert_eq!(used_cores(10.0, 4), 1.0);
    }

    #[test]
    fn aliyun_worked_example() {
        // The paper's example: freeing 4 cores saves 4 x $45 = $180 on Aliyun.
        let r = cpu_tco_reduction(8.0, 4.0);
        let aliyun = r.per_provider[2];
        assert!((aliyun - 180.0).abs() < 1e-9);
    }

    #[test]
    fn no_negative_savings() {
        let r = cpu_tco_reduction(4.0, 6.0);
        assert!(r.per_provider.iter().all(|v| *v == 0.0));
        assert_eq!(r.average, 0.0);
    }

    #[test]
    fn memory_reduction_scales_with_freed_gb() {
        let a = memory_tco_reduction(25.4, 12.64);
        let b = memory_tco_reduction(22.5, 16.34);
        assert!(a.average > b.average, "more GB freed, more saved");
        assert!(a.per_provider.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn average_is_mean_of_providers() {
        let r = cpu_tco_reduction(10.0, 5.0);
        let mean = r.per_provider.iter().sum::<f64>() / 3.0;
        assert!((r.average - mean).abs() < 1e-9);
    }
}
