//! Failure-aware evaluation: the retry policy, the failure taxonomy tuning
//! records carry, and the penalized synthetic observation a failed replay
//! contributes to the surrogate.
//!
//! The loop's contract (DESIGN.md §9): transient faults are retried with
//! exponential backoff (the simulated clock charges every failed attempt
//! plus the backoff); structural faults — deterministic in the configuration
//! — fail immediately; a crash or timeout that survives its retry budget is
//! recorded as an *infeasible penalized observation* so CEI steers away from
//! the offending region, exactly like the penalty encoding the paper's §2
//! discusses for constraint handling.

use crate::problem::ResourceKind;
use dbsim::{Configuration, EvalOutcome, InternalMetrics, Observation, ResourceUsage, SimulatedDbms};

/// Why an iteration's replay did not produce a full observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The server died during replay (OOM or a transient crash that
    /// exhausted its retries). No observation was collected.
    Crash,
    /// The replay window missed its deadline. No observation was collected.
    Timeout,
    /// The replay returned a truncated sample; the observation was accepted
    /// into the model but is not incumbent-eligible.
    Partial,
}

impl FailureKind {
    /// Classifies a resolved evaluation outcome.
    pub fn from_outcome(outcome: &EvalOutcome) -> Option<FailureKind> {
        match outcome {
            EvalOutcome::Ok(_) => None,
            EvalOutcome::Crashed { .. } => Some(FailureKind::Crash),
            EvalOutcome::TimedOut { .. } => Some(FailureKind::Timeout),
            EvalOutcome::Partial { .. } => Some(FailureKind::Partial),
        }
    }
}

/// Failure tally over a tuning run (carried by `TuningOutcome`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureCounts {
    /// Iterations whose replay ended in a crash.
    pub crashes: usize,
    /// Iterations whose replay timed out.
    pub timeouts: usize,
    /// Iterations that accepted a truncated (partial) sample.
    pub partials: usize,
    /// Total retry attempts across all iterations.
    pub retries: usize,
}

impl FailureCounts {
    /// Records one resolved iteration. Mirrors the tally into the trace
    /// counters (`replay.crash` / `replay.timeout` / `replay.partial` /
    /// `replay.retries`) so fault tables render from the trace alone.
    pub fn record(&mut self, failure: Option<FailureKind>, retries: usize) {
        self.retries += retries;
        trace::count("replay.retries", retries as u64);
        match failure {
            Some(FailureKind::Crash) => {
                self.crashes += 1;
                trace::count("replay.crash", 1);
            }
            Some(FailureKind::Timeout) => {
                self.timeouts += 1;
                trace::count("replay.timeout", 1);
            }
            Some(FailureKind::Partial) => {
                self.partials += 1;
                trace::count("replay.partial", 1);
            }
            None => {}
        }
    }

    /// Iterations that did not complete a full replay.
    pub fn failed_iterations(&self) -> usize {
        self.crashes + self.timeouts + self.partials
    }

    /// The tally with one more resolved iteration folded in — *without* the
    /// trace-counter mirroring of [`FailureCounts::record`]. Diagnostics
    /// (`core::diag`) use this to preview the post-commit tally for a record
    /// the engine has not committed yet; mirroring here would double-count
    /// the `replay.*` counters when the engine records the same iteration.
    pub fn including(mut self, failure: Option<FailureKind>, retries: usize) -> FailureCounts {
        self.retries += retries;
        match failure {
            Some(FailureKind::Crash) => self.crashes += 1,
            Some(FailureKind::Timeout) => self.timeouts += 1,
            Some(FailureKind::Partial) => self.partials += 1,
            None => {}
        }
        self
    }
}

/// Bounded retry-with-backoff for transient replay failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayPolicy {
    /// Maximum retry attempts after the first failure (paper-scale replays
    /// run minutes, so the budget stays small).
    pub max_retries: usize,
    /// Initial backoff before the first retry, seconds (doubles per retry);
    /// charged to the simulated replay clock.
    pub backoff_s: f64,
}

impl Default for ReplayPolicy {
    fn default() -> Self {
        ReplayPolicy { max_retries: 2, backoff_s: 5.0 }
    }
}

/// A resolved (post-retry) evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// The final outcome after retries.
    pub outcome: EvalOutcome,
    /// Retry attempts consumed.
    pub retries: usize,
    /// Total simulated wall-clock charged: every attempt plus backoff.
    pub replay_s: f64,
}

/// Evaluates `config`, retrying transient failures under `policy`.
///
/// Structural faults (OOM, throughput-collapse timeout) are deterministic in
/// the configuration, so they return immediately without burning the retry
/// budget. Each attempt consumes one evaluation index on the DBMS, which
/// keeps the fault schedule (and thus the whole run) a pure function of the
/// seeds regardless of how many retries occur.
pub fn evaluate_with_retry(
    dbms: &mut SimulatedDbms,
    config: &Configuration,
    policy: &ReplayPolicy,
) -> ReplayResult {
    // The span measures harness wall-clock; the *simulated* replay seconds
    // (the paper's cost metric, and part of the determinism fingerprint)
    // are recorded separately as the `replay.sim_s` histogram.
    let span = trace::span!("replay");
    let mut retries = 0;
    let mut replay_s = 0.0;
    let mut backoff = policy.backoff_s.max(0.0);
    let result = loop {
        let outcome = dbms.evaluate_outcome(config);
        replay_s += outcome.replay_seconds();
        if outcome.is_ok() || !outcome.is_transient() || retries >= policy.max_retries {
            break ReplayResult { outcome, retries, replay_s };
        }
        retries += 1;
        replay_s += backoff;
        backoff *= 2.0;
    };
    trace::observe("replay.sim_s", result.replay_s);
    let _ = span.finish_s();
    result
}

/// The objective value a crashed/timed-out replay records: safely above the
/// worst *genuinely observed* value, scaled by the observed spread. Callers
/// must compute `obs_worst`/`obs_best` over full observations only, so
/// penalties never compound on each other. One shared formula — the loop in
/// `engine.rs` and the penalty-EI surrogate encoding both call this, so the
/// encodings can never drift apart.
pub fn failure_penalty(obs_worst: f64, obs_best: f64) -> f64 {
    obs_worst + 0.3 * (obs_worst - obs_best).max(1.0)
}

/// The synthetic observation a crashed/timed-out replay contributes.
///
/// Every field is finite so downstream code (serialization, convergence
/// checks, GP fits) never sees NaN/inf, and the encoding guarantees the
/// observation is *maximally discouraging*: the objective resource reads
/// `penalty` (above the worst genuinely observed value), throughput is zero
/// and latency sits far beyond the ceiling, so `SlaConstraints::is_feasible`
/// always rejects it and CEI's constraint model learns the region violates.
pub fn penalty_observation(
    config: Configuration,
    resource: ResourceKind,
    penalty: f64,
    lat_ceiling: f64,
    replay_seconds: f64,
) -> Observation {
    let mut resources = ResourceUsage { cpu_pct: 0.0, mem_gb: 0.0, io_mbps: 0.0, iops: 0.0 };
    match resource {
        ResourceKind::Cpu => resources.cpu_pct = penalty,
        ResourceKind::Memory => resources.mem_gb = penalty,
        ResourceKind::IoBps => resources.io_mbps = penalty,
        ResourceKind::Iops => resources.iops = penalty,
    }
    Observation {
        config,
        resources,
        tps: 0.0,
        p99_ms: (10.0 * lat_ceiling).max(1.0),
        internal: InternalMetrics::zeroed(),
        replay_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SlaConstraints;
    use dbsim::{FaultPlan, InstanceType, WorkloadSpec};

    #[test]
    fn structural_faults_are_not_retried() {
        let mut dbms = SimulatedDbms::new(InstanceType::B, WorkloadSpec::twitter(), 1)
            .with_fault_plan(FaultPlan::structural());
        let hog = Configuration::dba_default()
            .with("innodb_buffer_pool_frac", 0.85)
            .with("sort_buffer_size_kb", 65536.0)
            .with("join_buffer_size_kb", 65536.0);
        let r = evaluate_with_retry(&mut dbms, &hog, &ReplayPolicy::default());
        assert_eq!(r.retries, 0, "an OOM is deterministic; retrying is pointless");
        assert_eq!(FailureKind::from_outcome(&r.outcome), Some(FailureKind::Crash));
        assert_eq!(dbms.evaluations(), 1);
    }

    #[test]
    fn transient_failures_retry_and_usually_recover() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 1)
            .with_fault_plan(FaultPlan::none().with_transient_rate(0.2).with_seed(7));
        let policy = ReplayPolicy::default();
        let mut resolved_ok = 0;
        let mut total_retries = 0;
        for _ in 0..60 {
            let r = evaluate_with_retry(&mut dbms, &Configuration::dba_default(), &policy);
            total_retries += r.retries;
            if r.outcome.is_ok() {
                resolved_ok += 1;
            }
            assert!(r.replay_s > 0.0);
        }
        assert!(total_retries > 0, "a 20% rate over 60 evals should trigger retries");
        // P(three consecutive faults) = 0.8% — nearly everything resolves.
        assert!(resolved_ok >= 55, "only {resolved_ok}/60 resolved");
    }

    #[test]
    fn retry_charges_failed_attempts_and_backoff() {
        // Force every attempt to fail so the retry budget is exhausted.
        let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 1)
            .with_fault_plan(FaultPlan::none().with_transient_rate(1.0).with_seed(1));
        let policy = ReplayPolicy { max_retries: 2, backoff_s: 5.0 };
        let r = evaluate_with_retry(&mut dbms, &Configuration::dba_default(), &policy);
        assert!(!r.outcome.is_ok());
        // Partials resolve on acceptance; crashes/timeouts exhaust retries.
        if !matches!(r.outcome, EvalOutcome::Partial { .. }) {
            assert_eq!(r.retries, 2);
            assert!(r.replay_s > 5.0 + 10.0, "backoff must be charged: {}", r.replay_s);
            assert_eq!(dbms.evaluations(), 3, "each attempt consumes an eval index");
        }
    }

    #[test]
    fn failure_penalty_sits_above_the_worst_observation() {
        assert_eq!(failure_penalty(80.0, 20.0), 80.0 + 0.3 * 60.0);
        // A degenerate spread still clears the worst value by a margin.
        assert_eq!(failure_penalty(50.0, 50.0), 50.3);
        assert!(failure_penalty(120.0, 40.0) > 120.0);
    }

    #[test]
    fn penalty_observation_is_finite_and_always_infeasible() {
        let obs = penalty_observation(
            Configuration::dba_default(),
            ResourceKind::Cpu,
            120.0,
            10.0,
            240.0,
        );
        assert_eq!(ResourceKind::Cpu.value(&obs), 120.0);
        assert!(obs.tps == 0.0 && obs.p99_ms.is_finite());
        assert!(obs.internal.to_vec().iter().all(|v| v.is_finite()));
        let sla = SlaConstraints { min_tps: 100.0, max_p99_ms: 10.0, tolerance: 0.05 };
        assert!(!sla.is_feasible(&obs));
        // Every resource kind routes the penalty to its own field.
        for kind in [ResourceKind::Memory, ResourceKind::IoBps, ResourceKind::Iops] {
            let o = penalty_observation(Configuration::dba_default(), kind, 9.5, 10.0, 1.0);
            assert_eq!(kind.value(&o), 9.5);
        }
    }
}
