//! The fleet's persistent worker pool (DESIGN.md §12).
//!
//! The per-tenant recommend path used to be the only source of parallelism,
//! fanning out short-lived `std::thread::scope` spawns inside every
//! iteration. At fleet scale the parallel unit is the *tenant*: a fixed pool
//! of long-lived workers pulls tenant slices off one injector queue, so a
//! thousand tenants share `workers` threads instead of spawning thousands of
//! their own, and a slice re-enqueues itself until its tenant finishes —
//! cooperative round-robin fairness without preemption.
//!
//! The pool is deliberately strategy-agnostic: a job is any `FnOnce` that
//! receives a [`PoolHandle`] (to resubmit follow-up work). Panic isolation
//! lives here too — a panicking job never takes its worker down; the payload
//! is swallowed after the job's own `catch_unwind` (the fleet layer records
//! the tenant as poisoned) and the worker moves to the next job.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of pool work.
pub type Job = Box<dyn FnOnce(&PoolHandle) + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    /// `false` once [`WorkerPool::join`] drains: workers exit when the queue
    /// is empty and no more submissions can arrive.
    open: bool,
}

struct PoolInner {
    queue: Mutex<QueueState>,
    cv: Condvar,
}

impl PoolInner {
    fn push(&self, job: Job) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.jobs.push_back(job);
        drop(q);
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = q.jobs.pop_front() {
                return Some(job);
            }
            if !q.open {
                return None;
            }
            q = self.cv.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.open = false;
        drop(q);
        self.cv.notify_all();
    }
}

/// A cloneable submission handle, also passed to every running job so
/// in-flight work can enqueue its own continuation.
#[derive(Clone)]
pub struct PoolHandle {
    inner: Arc<PoolInner>,
}

impl PoolHandle {
    /// Enqueues a job. Submissions after [`WorkerPool::join`] began are
    /// dropped (the pool is draining).
    pub fn submit(&self, job: Job) {
        let open = {
            let q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.open
        };
        if open {
            self.inner.push(job);
        }
    }
}

/// A fixed-size pool of persistent worker threads over one injector queue.
pub struct WorkerPool {
    handle: PoolHandle,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) threads, idle until jobs arrive.
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), open: true }),
            cv: Condvar::new(),
        });
        let handle = PoolHandle { inner: Arc::clone(&inner) };
        let workers = (0..workers.max(1))
            .map(|i| {
                let handle = handle.clone();
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = handle.inner.pop() {
                            // The job's own catch_unwind reports tenant-level
                            // failures; this outer net only keeps the worker
                            // alive if a payload escapes anyway.
                            let _ = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| job(&handle)),
                            );
                        }
                    })
                    .expect("spawn fleet worker")
            })
            .collect();
        WorkerPool { handle, workers }
    }

    /// The submission handle.
    pub fn handle(&self) -> &PoolHandle {
        &self.handle
    }

    /// Worker thread count.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Stops accepting work, lets queued jobs drain, and joins every worker.
    pub fn join(self) {
        self.handle.inner.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job_across_workers() {
        let pool = WorkerPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.handle().submit(Box::new(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn jobs_can_resubmit_their_continuation() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        fn step(remaining: usize, done: Arc<AtomicUsize>) -> Job {
            Box::new(move |h| {
                done.fetch_add(1, Ordering::SeqCst);
                if remaining > 1 {
                    h.submit(step(remaining - 1, done));
                }
            })
        }
        pool.handle().submit(step(10, Arc::clone(&done)));
        // Drain: continuations chase each other, so spin until settled.
        while done.load(Ordering::SeqCst) < 10 {
            std::thread::yield_now();
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let pool = WorkerPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        pool.handle().submit(Box::new(|_| panic!("poisoned job")));
        let d = Arc::clone(&done);
        pool.handle().submit(Box::new(move |_| {
            d.fetch_add(1, Ordering::SeqCst);
        }));
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 1, "the single worker must survive the panic");
    }
}
