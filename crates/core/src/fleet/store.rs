//! The fleet's shared meta-repository: a sharded store with copy-on-write
//! snapshot reads (DESIGN.md §12).
//!
//! The paper's setting is one vendor accumulating tuning history across
//! thousands of tenant instances into a single repository (§4). At fleet
//! scale that repository is written concurrently — every tenant that
//! finishes (or checkpoints) commits its task record while hundreds of
//! siblings are mid-read building base-learners. The store resolves the
//! tension with two mechanisms:
//!
//! - **Sharding**: commits hash by tenant id onto `n_shards` independent
//!   locks, so unrelated tenants never contend on one mutex.
//! - **Copy-on-write shard states**: each shard holds an `Arc<ShardState>`;
//!   a commit builds the successor state (cloning only `Arc` pointers, never
//!   task records) and swaps it in. A snapshot clones one `Arc` per shard
//!   and is immutable from that moment — weight computation reads a
//!   consistent view no matter how many commits land while it runs.
//!
//! The consistency contract, pinned by the propcheck suite
//! (`crates/core/tests/proptest_fleet_store.rs`): every snapshot of a shard
//! is a **prefix** of that shard's eventual commit sequence — no torn reads,
//! no lost or reordered observations. Cross-shard, a snapshot is
//! prefix-consistent per shard (shards are read one lock at a time; there is
//! deliberately no global lock to make a fleet-wide atomic cut).
//!
//! Rendering a snapshot to a [`DataRepository`] sorts records by
//! `(tenant, commit order)`, so the merged repository — and its JSON — is
//! identical regardless of how tenant commits interleaved at run time.

use std::sync::{Arc, RwLock};

use crate::repository::{DataRepository, TaskRecord};

/// One committed task record, tagged with the committing tenant.
#[derive(Debug, Clone)]
pub struct CommitEntry {
    /// Committing tenant's id.
    pub tenant: u64,
    /// The record, shared between the shard log and every live snapshot.
    pub record: Arc<TaskRecord>,
}

/// An immutable shard state: the shard's commit log at some point in time.
#[derive(Debug, Default)]
pub struct ShardState {
    entries: Vec<CommitEntry>,
}

impl ShardState {
    /// The shard's commits, oldest first.
    pub fn entries(&self) -> &[CommitEntry] {
        &self.entries
    }
}

/// The sharded, concurrently-updated meta-repository store.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<RwLock<Arc<ShardState>>>,
}

/// splitmix64 finalizer — decorrelates consecutive tenant ids across shards
/// (and seeds; see [`mix_seed`]).
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Derives a tenant's algorithm/simulation seed from the fleet seed and the
/// tenant's **id** (never its position in a tenant list), so adding or
/// removing one tenant cannot shift any sibling's seed schedule — the
/// property the fault-isolation regression test relies on.
pub fn mix_seed(fleet_seed: u64, tenant: u64) -> u64 {
    mix64(fleet_seed ^ mix64(tenant.wrapping_add(0x9E3779B97F4A7C15)))
}

impl ShardedStore {
    /// An empty store over `n_shards` independent shards (at least one).
    pub fn new(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        ShardedStore {
            shards: (0..n).map(|_| RwLock::new(Arc::new(ShardState::default()))).collect(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a tenant's commits land on.
    pub fn shard_of(&self, tenant: u64) -> usize {
        (mix64(tenant) % self.shards.len() as u64) as usize
    }

    /// Commits `record` for `tenant`: builds the shard's successor state and
    /// swaps it in. Snapshots taken before the commit keep the predecessor
    /// alive and unchanged (copy-on-write).
    pub fn commit(&self, tenant: u64, record: TaskRecord) {
        self.commit_shared(tenant, Arc::new(record));
    }

    /// [`ShardedStore::commit`] for an already-shared record.
    pub fn commit_shared(&self, tenant: u64, record: Arc<TaskRecord>) {
        let lock = &self.shards[self.shard_of(tenant)];
        // A poisoned shard only means a sibling panicked while committing;
        // the log itself is swapped atomically, never half-written.
        let mut guard = lock.write().unwrap_or_else(|e| e.into_inner());
        let mut entries = guard.entries.clone();
        entries.push(CommitEntry { tenant, record });
        *guard = Arc::new(ShardState { entries });
        trace::count("fleet.store.commits", 1);
    }

    /// A consistent read view: one `Arc` clone per shard, immutable from
    /// this moment on. O(n_shards), no record is copied.
    pub fn snapshot(&self) -> StoreSnapshot {
        trace::count("fleet.store.snapshots", 1);
        StoreSnapshot {
            shards: self
                .shards
                .iter()
                .map(|l| Arc::clone(&l.read().unwrap_or_else(|e| e.into_inner())))
                .collect(),
        }
    }

    /// Total committed records right now (counted over a fresh snapshot).
    pub fn n_records(&self) -> usize {
        self.snapshot().n_records()
    }
}

/// An immutable view of the store at snapshot time.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    shards: Vec<Arc<ShardState>>,
}

impl StoreSnapshot {
    /// Per-shard states, in shard order.
    pub fn shards(&self) -> &[Arc<ShardState>] {
        &self.shards
    }

    /// Total records across shards.
    pub fn n_records(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.n_records() == 0
    }

    /// Every entry ordered by `(tenant id, commit order)` — a schedule-
    /// independent ordering: however tenant commits interleaved, the same
    /// set of commits renders the same sequence.
    pub fn entries_by_tenant(&self) -> Vec<&CommitEntry> {
        let mut out: Vec<(usize, &CommitEntry)> = Vec::with_capacity(self.n_records());
        for shard in &self.shards {
            for (pos, e) in shard.entries.iter().enumerate() {
                out.push((pos, e));
            }
        }
        // A tenant's commits are serialized (one live task per tenant), so
        // within a tenant the shard position is the commit order.
        out.sort_by_key(|(pos, e)| (e.tenant, *pos));
        out.into_iter().map(|(_, e)| e).collect()
    }

    /// Renders the snapshot as a plain [`DataRepository`] (records cloned,
    /// ordered by tenant id) — the input shape `base_learners` and the JSON
    /// serializer already understand. Byte-stable across schedules.
    pub fn to_repository(&self) -> DataRepository {
        let mut repo = DataRepository::new();
        for e in self.entries_by_tenant() {
            repo.add((*e.record).clone());
        }
        repo
    }

    /// Whether `self` is a per-shard prefix of `later` (same shard count,
    /// every shard's entry list a pointer-equal prefix of the later one).
    /// This is the snapshot-isolation invariant the propcheck suite asserts
    /// between any observed snapshot and the final state.
    pub fn is_prefix_of(&self, later: &StoreSnapshot) -> bool {
        self.shards.len() == later.shards.len()
            && self.shards.iter().zip(&later.shards).all(|(a, b)| {
                a.entries.len() <= b.entries.len()
                    && a.entries
                        .iter()
                        .zip(&b.entries)
                        .all(|(x, y)| x.tenant == y.tenant && Arc::ptr_eq(&x.record, &y.record))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ResourceKind;
    use dbsim::InstanceType;

    fn record(tenant: u64, seq: usize) -> TaskRecord {
        TaskRecord {
            task_id: format!("t{tenant}#{seq}"),
            workload: format!("w{tenant}"),
            instance: InstanceType::A,
            resource: ResourceKind::Cpu,
            knob_names: vec!["a".into()],
            space_id: "native".into(),
            meta_feature: vec![0.5],
            observations: Vec::new(),
        }
    }

    #[test]
    fn snapshots_are_copy_on_write() {
        let store = ShardedStore::new(4);
        store.commit(1, record(1, 0));
        let snap = store.snapshot();
        assert_eq!(snap.n_records(), 1);
        store.commit(2, record(2, 0));
        store.commit(1, record(1, 1));
        // The old snapshot is frozen; a new one sees all three commits.
        assert_eq!(snap.n_records(), 1);
        assert_eq!(store.snapshot().n_records(), 3);
        assert!(snap.is_prefix_of(&store.snapshot()));
    }

    #[test]
    fn rendering_orders_by_tenant_not_commit_schedule() {
        // Same commits, opposite interleavings → identical repositories.
        let a = ShardedStore::new(2);
        a.commit(7, record(7, 0));
        a.commit(3, record(3, 0));
        a.commit(7, record(7, 1));
        let b = ShardedStore::new(2);
        b.commit(3, record(3, 0));
        b.commit(7, record(7, 0));
        b.commit(7, record(7, 1));
        let ja = a.snapshot().to_repository().to_json().unwrap();
        let jb = b.snapshot().to_repository().to_json().unwrap();
        assert_eq!(ja, jb);
        let ids: Vec<String> =
            a.snapshot().to_repository().tasks().iter().map(|t| t.task_id.clone()).collect();
        assert_eq!(ids, vec!["t3#0", "t7#0", "t7#1"]);
    }

    #[test]
    fn seed_mixing_is_position_independent_and_spreads() {
        assert_eq!(mix_seed(5, 10), mix_seed(5, 10));
        assert_ne!(mix_seed(5, 10), mix_seed(5, 11));
        assert_ne!(mix_seed(5, 10), mix_seed(6, 10));
        // Consecutive tenants land on assorted shards, not one hot shard.
        let store = ShardedStore::new(8);
        let shards: std::collections::BTreeSet<usize> =
            (0..64).map(|t| store.shard_of(t)).collect();
        assert!(shards.len() >= 4, "ids clump onto {shards:?}");
    }
}
