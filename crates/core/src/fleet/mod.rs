//! Fleet-scale multi-tenant tuning (DESIGN.md §12).
//!
//! ResTune's deployment is a cloud vendor tuning thousands of tenant
//! instances against one shared meta-repository (§4, §7.5). The per-instance
//! loop became a pluggable unit with the driver/engine/proposer split; this
//! module is the service layer above it:
//!
//! - [`FleetService`] runs many [`TuningDriver`]s concurrently on a
//!   persistent [`scheduler::WorkerPool`] — the parallel unit is the tenant,
//!   replacing per-iteration `thread::scope` fan-out on this path.
//! - Tenants advance in **slices** of a few iterations: a slice batches its
//!   replay evaluations on one worker, then re-enqueues the tenant, so a
//!   thousand tenants round-robin fairly over a handful of threads.
//! - Iteration records stream back over a channel as each slice completes
//!   (async outcome ingestion); completed tenants commit their task record
//!   to the shared [`store::ShardedStore`], whose copy-on-write snapshots
//!   give sibling weight computations a consistent view mid-commit.
//! - Faults stay tenant-local: replay crash/timeout storms are absorbed by
//!   the engine's §9 resilience semantics, and a panicking tenant is caught
//!   at the slice boundary, reported as poisoned, and never stalls siblings.
//!
//! **Determinism contract:** a tenant's trace is a pure function of its own
//! driver state (engine seed schedule + proposer), never of scheduling.
//! Tenants read the repository via snapshots pinned *before* the fleet
//! starts, commit only on completion, and derive seeds from their id
//! ([`store::mix_seed`]) — so per-tenant outcomes, task-record JSON, and
//! golden digests are bit-identical at any worker count, and identical to a
//! single-driver run of the same configuration (pinned by
//! `tests/determinism.rs`, `tests/golden_methods.rs`, `tests/fleet.rs`).

pub mod health;
pub mod scheduler;
pub mod store;

pub use health::{Digest, FleetHealth, Straggler, StragglerPolicy, TenantHealth};
pub use scheduler::{PoolHandle, WorkerPool};
pub use store::{mix_seed, CommitEntry, ShardedStore, StoreSnapshot};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use crate::drift::{DriftConfig, DriftController, FleetSealSink};
use crate::driver::{BoxProposer, Proposer, TuningDriver};
use crate::engine::{IterationRecord, TuningOutcome};
use crate::meta::BaseLearner;
use crate::repository::TaskRecord;
use crate::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use workload::WorkloadCharacterizer;

/// Fleet service construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Persistent pool workers (defaults to the machine's parallelism).
    pub workers: usize,
    /// Iterations a tenant runs per scheduled slice before re-enqueueing
    /// (the replay-batching unit; fairness knob).
    pub slice: usize,
    /// Shards of the shared store.
    pub shards: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            slice: 4,
            shards: 16,
        }
    }
}

/// One tenant: an id, a label, an iteration budget, and a ready-to-run
/// driver (any strategy behind [`BoxProposer`]).
pub struct Tenant {
    /// Stable unique id — the seed/shard/trace identity. Outcomes depend on
    /// the id, never on the tenant's position in the submission order.
    pub id: u64,
    /// Task-record label (conventionally unique per tenant).
    pub name: String,
    /// Iterations to run.
    pub iters: usize,
    /// Meta-feature stored on the committed task record.
    pub meta_feature: Vec<f64>,
    /// The tuning loop to drive.
    pub driver: TuningDriver<BoxProposer>,
}

impl Tenant {
    /// Wraps an arbitrary-strategy driver as a tenant.
    pub fn new<P: Proposer + Send + 'static>(
        id: u64,
        name: impl Into<String>,
        iters: usize,
        meta_feature: Vec<f64>,
        driver: TuningDriver<P>,
    ) -> Tenant {
        Tenant { id, name: name.into(), iters, meta_feature, driver: driver.boxed() }
    }

    /// A ResTune-w/o-ML tenant. The proposer runs serial
    /// (`config.parallel = false`): at fleet scale the tenant is the parallel
    /// unit, and the serial path is bit-identical by the PR-2 contract.
    pub fn restune(
        id: u64,
        name: impl Into<String>,
        env: TuningEnvironment,
        mut config: RestuneConfig,
        iters: usize,
    ) -> Tenant {
        config.parallel = false;
        Tenant::new(id, name, iters, Vec::new(), TuningSession::new(env, config).into_driver())
    }

    /// A meta-boosted ResTune tenant over base-learners fitted from a store
    /// snapshot (or any history). Serial proposer, as [`Tenant::restune`].
    pub fn restune_meta(
        id: u64,
        name: impl Into<String>,
        env: TuningEnvironment,
        mut config: RestuneConfig,
        base_learners: Vec<BaseLearner>,
        meta_feature: Vec<f64>,
        iters: usize,
    ) -> Tenant {
        config.parallel = false;
        let session =
            TuningSession::with_base_learners(env, config, base_learners, meta_feature.clone());
        Tenant::new(id, name, iters, meta_feature, session.into_driver())
    }

    /// A ResTune tenant with a drift controller (DESIGN.md §16): the live
    /// workload (typically evolving under a [`dbsim::WorkloadSchedule`]) is
    /// re-characterized on the controller's epoch clock, and a detected
    /// drift seals the tenant's pre-drift epoch into the shared `store` and
    /// warm-restarts with the matching records as transfer sources. The
    /// [`FleetSealSink`] pins the store's contents **now** — call before the
    /// fleet runs — so restarts never read siblings' live commits and the
    /// tenant's trace stays bit-identical at any worker count.
    #[allow(clippy::too_many_arguments)]
    pub fn restune_drift(
        id: u64,
        name: impl Into<String>,
        env: TuningEnvironment,
        config: RestuneConfig,
        iters: usize,
        drift: DriftConfig,
        characterizer: Arc<WorkloadCharacterizer>,
        store: Arc<ShardedStore>,
    ) -> Tenant {
        let name = name.into();
        let base_spec = env.dbms.workload().clone();
        let gp = config.gp.clone();
        let sink = Box::new(FleetSealSink::new(id, store, gp));
        let controller =
            DriftController::for_workload(drift, characterizer, &base_spec, name.clone(), sink);
        let mut tenant = Tenant::restune(id, name, env, config, iters);
        tenant.driver.set_drift(controller);
        tenant
    }
}

/// A finished (or poisoned) tenant's result.
#[derive(Debug, Clone)]
pub struct TenantResult {
    /// Tenant id.
    pub id: u64,
    /// Tenant label.
    pub name: String,
    /// The tuning outcome (partial when `panicked`).
    pub outcome: TuningOutcome,
    /// The task record committed to the shared store.
    pub record: TaskRecord,
    /// Whether the tenant's strategy panicked (the fleet caught it at the
    /// slice boundary; siblings were unaffected).
    pub panicked: bool,
    /// Iterations actually completed.
    pub iterations_run: usize,
}

impl TenantResult {
    /// The task record as byte-stable pretty JSON — the per-tenant artifact
    /// the determinism suite compares across worker counts.
    pub fn record_json(&self) -> Result<String, minjson::JsonError> {
        minjson::to_string_pretty(&self.record)
    }
}

/// Result of a fleet run.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-tenant results, ordered by tenant id (schedule-independent).
    pub tenants: Vec<TenantResult>,
    /// Wall-clock seconds for the whole fleet (the `fleet` span's duration).
    pub wall_s: f64,
    /// Worker threads used.
    pub workers: usize,
}

impl FleetOutcome {
    /// Tenants per wall-clock second — the scaling metric `fleet_bench`
    /// tracks.
    pub fn tenants_per_s(&self) -> f64 {
        if self.wall_s <= 0.0 { 0.0 } else { self.tenants.len() as f64 / self.wall_s }
    }

    /// Results of tenants that panicked.
    pub fn poisoned(&self) -> impl Iterator<Item = &TenantResult> {
        self.tenants.iter().filter(|t| t.panicked)
    }
}

enum Event {
    Slice { id: u64, records: Vec<IterationRecord> },
    Done { result: Box<TenantResult> },
}

struct TenantState {
    id: u64,
    name: String,
    iters: usize,
    done: usize,
    meta_feature: Vec<f64>,
    driver: TuningDriver<BoxProposer>,
    panicked: bool,
}

/// The long-lived multi-tenant tuning service: a worker pool plus the shared
/// sharded store. One service can run successive fleets; records committed
/// by earlier generations are visible (via snapshots) to tenants built for
/// later ones.
pub struct FleetService {
    config: FleetConfig,
    store: Arc<ShardedStore>,
}

impl FleetService {
    /// A service with a fresh store.
    pub fn new(config: FleetConfig) -> Self {
        let shards = config.shards;
        FleetService { config, store: Arc::new(ShardedStore::new(shards)) }
    }

    /// A service over an existing store (e.g. a loaded historical
    /// repository).
    pub fn with_store(config: FleetConfig, store: Arc<ShardedStore>) -> Self {
        FleetService { config, store }
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// Runs every tenant to completion and returns results ordered by id.
    pub fn run(&self, tenants: Vec<Tenant>) -> FleetOutcome {
        self.run_with(tenants, |_, _| {})
    }

    /// [`FleetService::run`] with a streaming observer: `on_records(id,
    /// slice_records)` fires on the ingestion thread as each tenant slice
    /// completes, in arrival order (per-tenant order is the iteration
    /// order; cross-tenant interleaving is schedule-dependent).
    ///
    /// # Panics
    ///
    /// If two tenants share an id (ids are the seed/shard/trace identity).
    pub fn run_with(
        &self,
        tenants: Vec<Tenant>,
        mut on_records: impl FnMut(u64, &[IterationRecord]),
    ) -> FleetOutcome {
        let n = tenants.len();
        let workers = self.config.workers.max(1);
        {
            let mut ids: Vec<u64> = tenants.iter().map(|t| t.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), n, "fleet tenant ids must be unique");
        }
        let fleet_span = trace::span!("fleet", tenants = n, workers = workers);
        if n == 0 {
            return FleetOutcome { tenants: Vec::new(), wall_s: fleet_span.finish_s(), workers };
        }
        let ctx = trace::current_context();
        let pool = WorkerPool::new(workers);
        let (tx, rx) = channel::<Event>();
        let slice = self.config.slice.max(1);
        for t in tenants {
            let state = TenantState {
                id: t.id,
                name: t.name,
                iters: t.iters,
                done: 0,
                meta_feature: t.meta_feature,
                driver: t.driver,
                panicked: false,
            };
            pool.handle().submit(slice_job(
                state,
                ctx.clone(),
                tx.clone(),
                Arc::clone(&self.store),
                slice,
            ));
        }
        drop(tx);
        let mut results: Vec<TenantResult> = Vec::with_capacity(n);
        for event in rx.iter() {
            match event {
                Event::Slice { id, records } => on_records(id, &records),
                Event::Done { result } => {
                    results.push(*result);
                    if results.len() == n {
                        break;
                    }
                }
            }
        }
        pool.join();
        results.sort_by_key(|r| r.id);
        trace::count("fleet.tenants.completed", results.len() as u64);
        FleetOutcome { tenants: results, wall_s: fleet_span.finish_s(), workers }
    }
}

/// One scheduled slice of one tenant, as a pool job: enter the tenant's
/// trace task scope, run up to `slice` iterations under `catch_unwind`,
/// stream the new records, then re-enqueue the tenant or finalize it.
fn slice_job(
    mut st: TenantState,
    ctx: trace::TraceContext,
    tx: Sender<Event>,
    store: Arc<ShardedStore>,
    slice: usize,
) -> scheduler::Job {
    Box::new(move |handle| {
        // Task boundary: install the fleet's ambient path and tag every span
        // below with the tenant id; the guard resets the worker's span state
        // on exit, so reuse across tenants can never leak parent paths.
        let task_guard = trace::task_scope(&ctx, st.id);
        let slice_span = trace::span!("tenant", tenant = st.id, done = st.done);
        let budget = slice.min(st.iters - st.done);
        let mut records: Vec<IterationRecord> = Vec::with_capacity(budget);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for _ in 0..budget {
                records.push(st.driver.step());
            }
        }));
        st.done += records.len();
        if outcome.is_err() {
            st.panicked = true;
            trace::count("fleet.tenant.panics", 1);
        }
        let _ = slice_span.finish_s();
        let _ = tx.send(Event::Slice { id: st.id, records });
        if !st.panicked && st.done < st.iters {
            let next = slice_job(st, ctx.clone(), tx.clone(), store, slice);
            drop(task_guard);
            handle.submit(next);
        } else {
            finalize(st, &tx, &store);
        }
    })
}

/// Completes a tenant: renders its task record — via
/// [`EvalEngine::to_task_record`](crate::engine::EvalEngine::to_task_record),
/// which covers the tenant's *current epoch* (the whole run unless a drift
/// restart sealed earlier epochs mid-flight) — commits it to the shared
/// store, and reports the result.
fn finalize(st: TenantState, tx: &Sender<Event>, store: &ShardedStore) {
    let TenantState { id, name, done, meta_feature, driver, panicked, .. } = st;
    let record: TaskRecord = driver.engine().to_task_record(&name, meta_feature);
    let outcome = driver.into_outcome();
    store.commit_shared(id, Arc::new(record.clone()));
    let result =
        TenantResult { id, name, outcome, record, panicked, iterations_run: done };
    let _ = tx.send(Event::Done { result: Box::new(result) });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::AcquisitionOptimizer;
    use crate::problem::ResourceKind;
    use dbsim::{InstanceType, KnobSet, WorkloadSpec};

    fn quick_config(seed: u64) -> RestuneConfig {
        RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 120, n_local: 30, local_sigma: 0.1 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 8, ..Default::default() },
            dynamic_samples: 6,
            seed,
            ..Default::default()
        }
    }

    fn tenant(id: u64, iters: usize) -> Tenant {
        let seed = mix_seed(0xF1EE7, id);
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(seed)
            .build();
        Tenant::restune(id, format!("tenant-{id}"), env, quick_config(seed), iters)
    }

    #[test]
    fn fleet_runs_all_tenants_and_commits_their_records() {
        let service =
            FleetService::new(FleetConfig { workers: 3, slice: 2, shards: 4 });
        let mut streamed = 0usize;
        let out = service.run_with((0..5).map(|i| tenant(i, 5)).collect(), |_, rs| {
            streamed += rs.len();
        });
        assert_eq!(out.tenants.len(), 5);
        assert_eq!(streamed, 25, "every record streams through the ingestion channel");
        for (i, t) in out.tenants.iter().enumerate() {
            assert_eq!(t.id, i as u64, "results are ordered by id");
            assert_eq!(t.iterations_run, 5);
            assert!(!t.panicked);
            assert_eq!(t.outcome.history.len(), 5);
            // Record: default anchor + one observation per iteration.
            assert_eq!(t.record.observations.len(), 6);
            assert_eq!(t.record.task_id, format!("tenant-{i}"));
        }
        let snap = service.store().snapshot();
        assert_eq!(snap.n_records(), 5);
        assert_eq!(snap.to_repository().len(), 5);
    }

    #[test]
    fn empty_fleet_is_a_no_op() {
        let out = FleetService::new(FleetConfig::default()).run(Vec::new());
        assert!(out.tenants.is_empty());
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_tenant_ids_are_rejected() {
        let service = FleetService::new(FleetConfig::default());
        service.run(vec![tenant(1, 2), tenant(1, 2)]);
    }

    struct PanickingProposer {
        after: usize,
        calls: usize,
    }

    impl Proposer for PanickingProposer {
        fn propose(
            &mut self,
            view: &crate::engine::HistoryView<'_>,
            _iter: usize,
            _seed: u64,
        ) -> crate::driver::Proposal {
            self.calls += 1;
            if self.calls > self.after {
                panic!("tenant strategy blew up");
            }
            crate::driver::Proposal::point(vec![0.5; view.problem.dim()])
        }
    }

    #[test]
    fn a_panicking_tenant_is_poisoned_but_completes_the_fleet() {
        use crate::engine::{EngineSettings, EvalEngine};
        use crate::resilience::ReplayPolicy;
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(3)
            .build();
        let engine = EvalEngine::new(
            env,
            EngineSettings {
                policy: ReplayPolicy::default(),
                convergence_window: 10,
                convergence_epsilon: 0.005,
                seed_default_observation: false,
            },
        );
        let bad = Tenant::new(
            9,
            "poisoned",
            6,
            Vec::new(),
            TuningDriver::new(engine, PanickingProposer { after: 3, calls: 0 }, 0),
        );
        let service = FleetService::new(FleetConfig { workers: 2, slice: 2, shards: 2 });
        let out = service.run(vec![tenant(0, 4), bad, tenant(2, 4)]);
        assert_eq!(out.tenants.len(), 3);
        let poisoned: Vec<u64> = out.poisoned().map(|t| t.id).collect();
        assert_eq!(poisoned, vec![9]);
        let bad_result = out.tenants.iter().find(|t| t.id == 9).unwrap();
        assert_eq!(bad_result.iterations_run, 3, "records up to the panic are kept");
        for id in [0usize, 2] {
            let t = out.tenants.iter().find(|t| t.id == id as u64).unwrap();
            assert!(!t.panicked);
            assert_eq!(t.iterations_run, 4);
        }
        // The poisoned tenant still committed its partial record.
        assert_eq!(service.store().snapshot().n_records(), 3);
    }
}
