//! Fleet-level health aggregation (DESIGN.md §15).
//!
//! One traced fleet run leaves a single collector holding every tenant's
//! `tuner.health` event stream, tagged with the tenant's task id by the
//! scheduler's [`trace::task_scope`]. This module folds those streams two
//! levels up:
//!
//! 1. per tenant — [`TenantHealth`] condenses a tenant's event stream into
//!    summary statistics (mean regret, calibration means, fallback and
//!    failure tallies, final weight entropy),
//! 2. per fleet — [`FleetHealth`] digests the tenant summaries into
//!    p50/p95/p99 [`Digest`]s and flags straggler/outlier tenants against a
//!    [`StragglerPolicy`] (high regret relative to the fleet median, a
//!    grossly mis-calibrated GP, repeated GP-failure fallbacks, or a replay
//!    failure storm).
//!
//! Everything operates on data already recorded — aggregation never touches
//! the collector — so it can run on a live [`trace::snapshot`] or on a
//! JSONL file parsed back with [`trace::TraceSnapshot::from_jsonl`]. The
//! `fleet_health` bench bin renders the result.

use crate::diag::{TunerHealth, HEALTH_EVENT};
use trace::TraceSnapshot;

/// Nearest-rank percentile over a sorted sample vector.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A `{n, mean, min, max, p50, p95, p99}` digest of per-tenant values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Digest {
    /// Tenants contributing a value.
    pub n: usize,
    /// Mean value.
    pub mean: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl Digest {
    /// Digests a sample vector; `None` when no finite samples exist.
    pub fn from_samples(samples: &[f64]) -> Option<Digest> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        Some(Digest {
            n,
            mean,
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
        })
    }
}

/// One tenant's health event stream condensed to summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantHealth {
    /// Task id the tenant's events were tagged with.
    pub task: u64,
    /// Health events observed (== iterations when diagnostics ran end to
    /// end).
    pub iterations: usize,
    /// Best feasible objective after the last iteration.
    pub final_incumbent: f64,
    /// Mean per-iteration regret against the running incumbent.
    pub mean_regret: f64,
    /// The stagnation clock at the last iteration.
    pub final_since_improvement: usize,
    /// Mean 1σ empirical coverage over calibrated iterations, if any.
    pub mean_cov_1s: Option<f64>,
    /// Mean 2σ empirical coverage over calibrated iterations, if any.
    pub mean_cov_2s: Option<f64>,
    /// Mean standardized-residual `|z|` over calibrated iterations, if any.
    pub mean_abs_z: Option<f64>,
    /// Mean LOO negative log predictive density over calibrated iterations.
    pub mean_loo_nll: Option<f64>,
    /// Weight entropy at the last iteration carrying weights.
    pub final_weight_entropy: Option<f64>,
    /// GP-failure fallbacks over the whole session (final tally).
    pub fallbacks: u64,
    /// Iterations that ended crashed/timed-out/partial (final tally).
    pub failed_iterations: usize,
    /// Transient-replay retries (final tally).
    pub retries: usize,
    /// Iterations carrying a synthetic failure penalty.
    pub penalized_iterations: usize,
}

impl TenantHealth {
    /// Condenses one tenant's event stream (in iteration order). `None` when
    /// the stream is empty.
    pub fn from_records(task: u64, records: &[TunerHealth]) -> Option<TenantHealth> {
        let last = records.last()?;
        let n = records.len() as f64;
        let mean_of = |f: &dyn Fn(&TunerHealth) -> Option<f64>| -> Option<f64> {
            let vals: Vec<f64> = records.iter().filter_map(f).collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        };
        Some(TenantHealth {
            task,
            iterations: records.len(),
            final_incumbent: last.incumbent,
            mean_regret: records.iter().map(|r| r.regret).sum::<f64>() / n,
            final_since_improvement: last.since_improvement,
            mean_cov_1s: mean_of(&|r| r.calibration.map(|c| c.coverage_1s)),
            mean_cov_2s: mean_of(&|r| r.calibration.map(|c| c.coverage_2s)),
            mean_abs_z: mean_of(&|r| r.calibration.map(|c| c.mean_abs_z)),
            mean_loo_nll: mean_of(&|r| r.calibration.map(|c| c.loo_nll)),
            final_weight_entropy: records.iter().rev().find_map(|r| r.weight_entropy),
            fallbacks: last.fallbacks,
            failed_iterations: last.failures.failed_iterations(),
            retries: last.failures.retries,
            penalized_iterations: records.iter().filter(|r| r.penalized).count(),
        })
    }
}

/// Thresholds for flagging straggler/outlier tenants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerPolicy {
    /// Flag when a tenant's mean regret exceeds this multiple of the fleet's
    /// median mean regret (only when the median is meaningfully positive).
    pub regret_factor: f64,
    /// Flag a mis-calibrated GP when the tenant's mean `|z|` exceeds this
    /// (grossly overconfident predictive variance).
    pub max_mean_abs_z: f64,
    /// Flag a mis-calibrated GP when mean 2σ coverage falls below this.
    pub min_cov_2s: f64,
    /// Flag when the tenant took at least this many GP-failure fallbacks.
    pub max_fallbacks: u64,
    /// Flag when more than this share of iterations ended in failure.
    pub max_failed_share: f64,
}

impl Default for StragglerPolicy {
    fn default() -> Self {
        StragglerPolicy {
            regret_factor: 2.0,
            max_mean_abs_z: 3.0,
            min_cov_2s: 0.5,
            max_fallbacks: 2,
            max_failed_share: 0.5,
        }
    }
}

/// A flagged tenant with the reasons it tripped the [`StragglerPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Task id of the flagged tenant.
    pub task: u64,
    /// Human-readable reasons, in policy-check order.
    pub reasons: Vec<String>,
}

/// The fleet-level aggregate: per-tenant summaries, cross-tenant digests,
/// and flagged stragglers.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealth {
    /// Per-tenant summaries, ascending by task id.
    pub tenants: Vec<TenantHealth>,
    /// Digest of per-tenant mean regret.
    pub regret: Option<Digest>,
    /// Digest of per-tenant final incumbents.
    pub final_incumbent: Option<Digest>,
    /// Digest of per-tenant mean 1σ coverage (calibrated tenants only).
    pub coverage_1s: Option<Digest>,
    /// Digest of per-tenant mean LOO-NLL (calibrated tenants only).
    pub loo_nll: Option<Digest>,
    /// Digest of per-tenant final weight entropy (meta tenants only).
    pub weight_entropy: Option<Digest>,
    /// GP-failure fallbacks summed over the fleet.
    pub total_fallbacks: u64,
    /// Failed iterations summed over the fleet.
    pub total_failed_iterations: usize,
    /// Tenants flagged by the policy, ascending by task id.
    pub stragglers: Vec<Straggler>,
}

impl FleetHealth {
    /// Aggregates per-tenant health streams under `policy`. Input order is
    /// irrelevant; output is sorted by task id so the aggregate is
    /// schedule-independent.
    pub fn aggregate(
        mut per_tenant: Vec<(u64, Vec<TunerHealth>)>,
        policy: &StragglerPolicy,
    ) -> FleetHealth {
        per_tenant.sort_by_key(|(task, _)| *task);
        let tenants: Vec<TenantHealth> = per_tenant
            .iter()
            .filter_map(|(task, records)| TenantHealth::from_records(*task, records))
            .collect();

        let collect = |f: &dyn Fn(&TenantHealth) -> Option<f64>| -> Vec<f64> {
            tenants.iter().filter_map(f).collect()
        };
        let regret_samples = collect(&|t| Some(t.mean_regret));
        let regret = Digest::from_samples(&regret_samples);
        let median_regret = regret.map(|d| d.p50).unwrap_or(0.0);

        let mut stragglers = Vec::new();
        for t in &tenants {
            let mut reasons = Vec::new();
            // An essentially-zero fleet median means regret differences are
            // noise; the relative check needs a meaningful baseline.
            if median_regret > 1e-12 && t.mean_regret > policy.regret_factor * median_regret {
                reasons.push(format!(
                    "high regret: mean {:.4} > {:.1}x fleet median {:.4}",
                    t.mean_regret, policy.regret_factor, median_regret
                ));
            }
            let overconfident = t.mean_abs_z.is_some_and(|z| z > policy.max_mean_abs_z);
            let undercovered = t.mean_cov_2s.is_some_and(|c| c < policy.min_cov_2s);
            if overconfident || undercovered {
                reasons.push(format!(
                    "mis-calibrated GP: mean |z| {:.2}, 2-sigma coverage {:.2}",
                    t.mean_abs_z.unwrap_or(0.0),
                    t.mean_cov_2s.unwrap_or(0.0)
                ));
            }
            if t.fallbacks >= policy.max_fallbacks {
                reasons.push(format!("repeated GP fallbacks: {}", t.fallbacks));
            }
            let failed_share = if t.iterations == 0 {
                0.0
            } else {
                t.failed_iterations as f64 / t.iterations as f64
            };
            if failed_share > policy.max_failed_share {
                reasons.push(format!(
                    "failure storm: {}/{} iterations failed",
                    t.failed_iterations, t.iterations
                ));
            }
            if !reasons.is_empty() {
                stragglers.push(Straggler { task: t.task, reasons });
            }
        }

        FleetHealth {
            regret,
            final_incumbent: Digest::from_samples(&collect(&|t| Some(t.final_incumbent))),
            coverage_1s: Digest::from_samples(&collect(&|t| t.mean_cov_1s)),
            loo_nll: Digest::from_samples(&collect(&|t| t.mean_loo_nll)),
            weight_entropy: Digest::from_samples(&collect(&|t| t.final_weight_entropy)),
            total_fallbacks: tenants.iter().map(|t| t.fallbacks).sum(),
            total_failed_iterations: tenants.iter().map(|t| t.failed_iterations).sum(),
            stragglers,
            tenants,
        }
    }

    /// Slices a snapshot's task-tagged `tuner.health` events into per-tenant
    /// streams and aggregates them (events without a task tag — a solo
    /// session — are ignored; render those with the per-session report).
    pub fn from_snapshot(snap: &TraceSnapshot, policy: &StragglerPolicy) -> FleetHealth {
        let per_tenant: Vec<(u64, Vec<TunerHealth>)> = snap
            .event_tasks()
            .into_iter()
            .map(|task| {
                let records: Vec<TunerHealth> = snap
                    .events_for_task(task)
                    .into_iter()
                    .filter(|e| e.name == HEALTH_EVENT)
                    .filter_map(TunerHealth::from_event)
                    .collect();
                (task, records)
            })
            .collect();
        FleetHealth::aggregate(per_tenant, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::FitPath;
    use crate::resilience::FailureCounts;

    fn record(iter: usize, regret: f64) -> TunerHealth {
        TunerHealth {
            iteration: iter,
            objective: 1.0 + regret,
            feasible: true,
            penalized: false,
            incumbent: 1.0,
            regret,
            improvement: 0.0,
            since_improvement: iter,
            fit_path: FitPath::Full,
            surrogate: "dense".to_string(),
            fallbacks: 0,
            failures: FailureCounts::default(),
            weights: None,
            weight_entropy: None,
            calibration: None,
            drift: None,
        }
    }

    #[test]
    fn digest_percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = Digest::from_samples(&samples).unwrap();
        assert_eq!((d.n, d.min, d.max), (100, 1.0, 100.0));
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p95, 95.0);
        assert_eq!(d.p99, 99.0);
        assert_eq!(Digest::from_samples(&[]), None);
        assert_eq!(Digest::from_samples(&[f64::NAN]), None);
        let one = Digest::from_samples(&[3.0]).unwrap();
        assert_eq!((one.p50, one.p95, one.p99), (3.0, 3.0, 3.0));
    }

    #[test]
    fn high_regret_tenants_are_flagged_against_the_fleet_median() {
        let mut per_tenant: Vec<(u64, Vec<TunerHealth>)> = (0..9u64)
            .map(|t| (t, vec![record(0, 0.1), record(1, 0.1)]))
            .collect();
        per_tenant.push((9, vec![record(0, 2.0), record(1, 2.0)]));
        let fleet = FleetHealth::aggregate(per_tenant, &StragglerPolicy::default());
        assert_eq!(fleet.tenants.len(), 10);
        assert_eq!(fleet.stragglers.len(), 1);
        assert_eq!(fleet.stragglers[0].task, 9);
        assert!(fleet.stragglers[0].reasons[0].contains("high regret"));
        let regret = fleet.regret.unwrap();
        assert!((regret.p50 - 0.1).abs() < 1e-12);
        assert!((regret.max - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fallback_storms_and_miscalibration_are_flagged() {
        let mut bad = vec![record(0, 0.0)];
        bad[0].fallbacks = 5;
        bad[0].calibration = Some(gp::Calibration {
            n: 10,
            mean_abs_z: 8.0,
            max_abs_z: 20.0,
            loo_nll: 30.0,
            coverage_1s: 0.1,
            coverage_2s: 0.2,
        });
        let fleet = FleetHealth::aggregate(
            vec![(0, vec![record(0, 0.0)]), (1, bad)],
            &StragglerPolicy::default(),
        );
        assert_eq!(fleet.stragglers.len(), 1);
        let reasons = fleet.stragglers[0].reasons.join("; ");
        assert!(reasons.contains("mis-calibrated"));
        assert!(reasons.contains("fallbacks"));
        assert_eq!(fleet.total_fallbacks, 5);
    }

    #[test]
    fn aggregation_is_schedule_independent() {
        let streams = |order: &[u64]| -> Vec<(u64, Vec<TunerHealth>)> {
            order.iter().map(|&t| (t, vec![record(0, t as f64 * 0.1)])).collect()
        };
        let a = FleetHealth::aggregate(streams(&[0, 1, 2, 3]), &StragglerPolicy::default());
        let b = FleetHealth::aggregate(streams(&[3, 1, 0, 2]), &StragglerPolicy::default());
        assert_eq!(a, b);
    }
}
