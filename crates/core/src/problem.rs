//! The resource-oriented tuning problem (§3, Eq. 1):
//!
//! ```text
//! argmin_θ f_res(θ)   s.t.  f_tps(θ) ≥ λ_tps,  f_lat(θ) ≤ λ_lat
//! ```
//!
//! with λ set from the performance under the DBA default configuration.

use dbsim::{KnobSet, Observation};

/// Which resource the objective minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// CPU utilization (percent of instance).
    Cpu,
    /// Resident memory (GB).
    Memory,
    /// I/O bandwidth (MB/s), "BPS" in §7.5.1.
    IoBps,
    /// I/O operations per second, "IOPS" in §7.5.1.
    Iops,
}

impl ResourceKind {
    /// Extracts the objective value from an observation.
    pub fn value(&self, obs: &Observation) -> f64 {
        match self {
            ResourceKind::Cpu => obs.resources.cpu_pct,
            ResourceKind::Memory => obs.resources.mem_gb,
            ResourceKind::IoBps => obs.resources.io_mbps,
            ResourceKind::Iops => obs.resources.iops,
        }
    }

    /// The knob set the paper pre-selects for this resource (14 CPU, 20 I/O,
    /// 6 memory knobs).
    pub fn default_knob_set(&self) -> KnobSet {
        match self {
            ResourceKind::Cpu => KnobSet::cpu(),
            ResourceKind::Memory => KnobSet::memory(),
            ResourceKind::IoBps | ResourceKind::Iops => KnobSet::io(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ResourceKind::Cpu => "CPU",
            ResourceKind::Memory => "Memory",
            ResourceKind::IoBps => "IO-BPS",
            ResourceKind::Iops => "IOPS",
        }
    }

    /// Unit string for reports.
    pub fn unit(&self) -> &'static str {
        match self {
            ResourceKind::Cpu => "%",
            ResourceKind::Memory => "GB",
            ResourceKind::IoBps => "MB/s",
            ResourceKind::Iops => "op/s",
        }
    }
}

minjson::json_enum!(ResourceKind { Cpu, Memory, IoBps, Iops });

/// SLA bounds: the throughput floor and latency ceiling (§3). The paper
/// accepts a 5 % measurement deviation; `tolerance` implements that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaConstraints {
    /// Lower bound λ_tps on throughput (txn/s).
    pub min_tps: f64,
    /// Upper bound λ_lat on p99 latency (ms).
    pub max_p99_ms: f64,
    /// Relative tolerance applied to both bounds (paper: 0.05).
    pub tolerance: f64,
}

impl SlaConstraints {
    /// Builds constraints from the default-configuration observation, as the
    /// paper does: "We set λ_tps and λ_lat to the throughput and latency
    /// under the DBA's default knobs" (§7).
    pub fn from_default_observation(obs: &Observation) -> Self {
        SlaConstraints { min_tps: obs.tps, max_p99_ms: obs.p99_ms, tolerance: 0.05 }
    }

    /// Effective throughput floor after tolerance.
    pub fn tps_floor(&self) -> f64 {
        self.min_tps * (1.0 - self.tolerance)
    }

    /// Effective latency ceiling after tolerance.
    pub fn lat_ceiling(&self) -> f64 {
        self.max_p99_ms * (1.0 + self.tolerance)
    }

    /// Whether an observation satisfies the SLA.
    pub fn is_feasible(&self, obs: &Observation) -> bool {
        obs.tps >= self.tps_floor() && obs.p99_ms <= self.lat_ceiling()
    }
}

/// Identity of the space proposers search in.
///
/// With no transform installed this is the native knob space
/// (`dim == knob_set.dim()`, `id == "native"`); with a
/// [`crate::space::SpaceTransform`] it is the transform's low-dimensional
/// search space. The `id` string participates in meta-learning task identity:
/// observations recorded under different space ids are never mixed, because
/// their point coordinates are not comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceInfo {
    /// Search-space dimensionality (what proposers and surrogates see).
    pub dim: usize,
    /// Stable transform identity (`"native"` when untransformed).
    pub id: String,
}

impl SpaceInfo {
    /// The untransformed native space of `dim` knobs.
    pub fn native(dim: usize) -> Self {
        SpaceInfo { dim, id: "native".to_string() }
    }
}

/// A fully specified tuning problem: search space + objective + constraints.
#[derive(Debug, Clone)]
pub struct TuningProblem {
    /// The knob subspace being tuned, `[0,1]^m` after normalization.
    pub knob_set: KnobSet,
    /// The space proposers search in (native, or a transform's low space).
    pub space: SpaceInfo,
    /// The resource objective.
    pub resource: ResourceKind,
    /// SLA constraints from the default configuration.
    pub constraints: SlaConstraints,
}

impl TuningProblem {
    /// Search-space dimensionality — the *proposer-facing* dimension, which
    /// a transform may make smaller than `knob_set.dim()`.
    pub fn dim(&self) -> usize {
        self.space.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{Configuration, InstanceType, SimulatedDbms, WorkloadSpec};

    fn obs() -> Observation {
        let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 0);
        dbms.evaluate(&Configuration::dba_default())
    }

    #[test]
    fn resource_kind_selects_the_right_metric() {
        let o = obs();
        assert_eq!(ResourceKind::Cpu.value(&o), o.resources.cpu_pct);
        assert_eq!(ResourceKind::Memory.value(&o), o.resources.mem_gb);
        assert_eq!(ResourceKind::IoBps.value(&o), o.resources.io_mbps);
        assert_eq!(ResourceKind::Iops.value(&o), o.resources.iops);
    }

    #[test]
    fn knob_set_sizes_match_the_paper() {
        assert_eq!(ResourceKind::Cpu.default_knob_set().dim(), 14);
        assert_eq!(ResourceKind::IoBps.default_knob_set().dim(), 20);
        assert_eq!(ResourceKind::Memory.default_knob_set().dim(), 6);
    }

    #[test]
    fn feasibility_respects_tolerance() {
        let o = obs();
        let sla = SlaConstraints::from_default_observation(&o);
        // The defining observation is feasible by construction.
        assert!(sla.is_feasible(&o));
        // 3 % worse tps is inside the 5 % tolerance.
        let mut worse = o.clone();
        worse.tps *= 0.97;
        assert!(sla.is_feasible(&worse));
        // 10 % worse is not.
        worse.tps = o.tps * 0.90;
        assert!(!sla.is_feasible(&worse));
        // Latency ceiling works the same way.
        let mut slow = o.clone();
        slow.p99_ms = o.p99_ms * 1.2;
        assert!(!sla.is_feasible(&slow));
    }
}
