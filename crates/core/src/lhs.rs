//! Latin hypercube sampling over the *half-open* unit cube `[0,1)^d`.
//!
//! The paper bootstraps the non-meta BO methods (ResTune-w/o-ML, iTuned,
//! OtterTune-w-Con) with 10 LHS samples before switching to model-guided
//! search (§7 "Setting").
//!
//! # Interval contract
//!
//! The sampler guarantees every coordinate lies in **`[0,1)` — half-open**.
//! Downstream consumers are *closed*-interval tolerant: `KnobSet::
//! to_configuration` clamps to `[0,1]` and [`crate::space::SpaceTransform`]
//! pipelines clip lifted points into the closed cube, so any value this
//! module emits is accepted verbatim. The half-open guarantee matters for
//! stratification (`floor(v * n)` must equal the assigned stratum, which
//! requires `v < 1`) and for quantization (`⌊u·bins⌋` must not index one past
//! the last bin).
//!
//! Naively, `(stratum + jitter) / n` with `jitter ∈ [0,1)` cannot reach `1`,
//! but floating point disagrees: with the maximal jitter `1 - 2⁻⁵³`, the sum
//! `(n-1) + jitter` rounds *up* to exactly `n` whenever `n-1`'s ulp exceeds
//! `2⁻⁵²` (already at `n = 2`), and the division then yields exactly `1.0`.
//! The sampler therefore clamps each coordinate to the predecessor of `1.0`.

use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// The largest `f64` strictly below `1.0` (`1 - 2⁻⁵³`): the supremum of the
/// sampler's half-open range.
const BELOW_ONE: f64 = 1.0 - f64::EPSILON / 2.0;

/// Draws `n` Latin-hypercube samples in `[0,1)^d` (half-open; see the module
/// docs for the interval contract).
///
/// Each dimension's range is split into `n` equal strata; each stratum is hit
/// exactly once per dimension, with independent random permutations across
/// dimensions.
pub fn latin_hypercube(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = vec![vec![0.0; d]; n];
    let mut perm: Vec<usize> = (0..n).collect();
    for dim in 0..d {
        // Fisher–Yates shuffle of the strata.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for (row, &stratum) in samples.iter_mut().zip(perm.iter()) {
            let jitter: f64 = rng.random();
            // The clamp only fires when rounding pushed the quotient to 1.0
            // (top stratum, near-maximal jitter); every other value passes
            // through bit-unchanged, so existing traces are unaffected.
            row[dim] = ((stratum as f64 + jitter) / n as f64).min(BELOW_ONE);
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_unit_cube() {
        for s in latin_hypercube(32, 5, 1) {
            assert_eq!(s.len(), 5);
            for v in s {
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn each_stratum_hit_exactly_once_per_dimension() {
        let n = 16;
        let samples = latin_hypercube(n, 3, 7);
        for dim in 0..3 {
            let mut strata: Vec<usize> =
                samples.iter().map(|s| (s[dim] * n as f64).floor() as usize).collect();
            strata.sort_unstable();
            assert_eq!(strata, (0..n).collect::<Vec<_>>(), "dim {dim}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(latin_hypercube(8, 2, 3), latin_hypercube(8, 2, 3));
        assert_ne!(latin_hypercube(8, 2, 3), latin_hypercube(8, 2, 4));
    }

    #[test]
    fn boundary_jitter_would_round_to_one_without_the_clamp() {
        // Demonstrates the rounding hazard the clamp guards: with the maximal
        // jitter (the predecessor of 1.0), the stratum sum rounds up to n and
        // the quotient is exactly 1.0 — outside the half-open contract.
        assert_eq!(BELOW_ONE, f64::from_bits(1.0f64.to_bits() - 1), "predecessor of 1.0");
        assert_eq!((1.0 + BELOW_ONE) / 2.0, 1.0, "n=2, top stratum, max jitter");
        assert_eq!((7.0 + BELOW_ONE) / 8.0, 1.0, "n=8, top stratum, max jitter");
        // The clamp restores the contract without moving interior values.
        assert_eq!(((1.0 + BELOW_ONE) / 2.0_f64).min(BELOW_ONE), BELOW_ONE);
        assert_eq!(0.25_f64.min(BELOW_ONE), 0.25);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(latin_hypercube(0, 3, 0).len(), 0);
        let one = latin_hypercube(1, 2, 0);
        assert_eq!(one.len(), 1);
        assert!(one[0].iter().all(|v| (0.0..1.0).contains(v)));
    }
}
