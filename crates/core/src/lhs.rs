//! Latin hypercube sampling over `[0,1]^d`.
//!
//! The paper bootstraps the non-meta BO methods (ResTune-w/o-ML, iTuned,
//! OtterTune-w-Con) with 10 LHS samples before switching to model-guided
//! search (§7 "Setting").

use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// Draws `n` Latin-hypercube samples in `[0,1]^d`.
///
/// Each dimension's range is split into `n` equal strata; each stratum is hit
/// exactly once per dimension, with independent random permutations across
/// dimensions.
pub fn latin_hypercube(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = vec![vec![0.0; d]; n];
    let mut perm: Vec<usize> = (0..n).collect();
    for dim in 0..d {
        // Fisher–Yates shuffle of the strata.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for (row, &stratum) in samples.iter_mut().zip(perm.iter()) {
            let jitter: f64 = rng.random();
            row[dim] = (stratum as f64 + jitter) / n as f64;
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_unit_cube() {
        for s in latin_hypercube(32, 5, 1) {
            assert_eq!(s.len(), 5);
            for v in s {
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn each_stratum_hit_exactly_once_per_dimension() {
        let n = 16;
        let samples = latin_hypercube(n, 3, 7);
        for dim in 0..3 {
            let mut strata: Vec<usize> =
                samples.iter().map(|s| (s[dim] * n as f64).floor() as usize).collect();
            strata.sort_unstable();
            assert_eq!(strata, (0..n).collect::<Vec<_>>(), "dim {dim}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(latin_hypercube(8, 2, 3), latin_hypercube(8, 2, 3));
        assert_ne!(latin_hypercube(8, 2, 3), latin_hypercube(8, 2, 4));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(latin_hypercube(0, 3, 0).len(), 0);
        let one = latin_hypercube(1, 2, 0);
        assert_eq!(one.len(), 1);
        assert!(one[0].iter().all(|v| (0.0..1.0).contains(v)));
    }
}
