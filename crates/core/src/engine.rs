//! The shared evaluation engine (paper Fig. 5's apply-and-replay evaluator):
//! one apply → replay-with-retry → observe → record path that ResTune and
//! every baseline run through, so failure penalties, incumbent tracking,
//! convergence detection, and outcome rendering can never drift between
//! methods (§7 compares them on the *same* harness).
//!
//! The engine owns everything downstream of a proposed point: configuration
//! apply, the retry policy, the crash/timeout penalty observation, the
//! observed data columns the surrogates train on, history/incumbent/failure
//! bookkeeping, the §4 convergence criterion, and [`TuningOutcome`]
//! rendering. What point to evaluate next is the [`crate::driver::Proposer`]'s
//! job; the run loop tying the two together is [`crate::driver::TuningDriver`].

use crate::problem::{SlaConstraints, SpaceInfo, TuningProblem};
use crate::repository::{TaskObservation, TaskRecord};
use crate::resilience::{
    evaluate_with_retry, failure_penalty, penalty_observation, FailureCounts, FailureKind,
    ReplayPolicy,
};
use crate::tuner::TuningEnvironment;
use dbsim::{Configuration, EvalOutcome, Observation};

/// Wall-clock breakdown of a single iteration (Table 3's rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationTiming {
    /// Meta-data processing (scale unification, meta-feature handling).
    pub meta_data_processing_s: f64,
    /// Model update (GP fits + weight learning).
    pub model_update_s: f64,
    /// Subcomponent of `model_update_s`: fitting the target's three metric
    /// GPs.
    pub gp_fit_s: f64,
    /// Subcomponent of `model_update_s`: ensemble weight learning (static
    /// kernel weights or ranking-loss posterior sampling).
    pub weight_update_s: f64,
    /// Knob recommendation (acquisition optimization).
    pub recommendation_s: f64,
    /// Target workload replay (simulated seconds).
    pub replay_s: f64,
}

impl IterationTiming {
    /// Total iteration time. `gp_fit_s` and `weight_update_s` are already
    /// inside `model_update_s` and do not count again.
    pub fn total_s(&self) -> f64 {
        self.meta_data_processing_s + self.model_update_s + self.recommendation_s + self.replay_s
    }
}

/// One tuning iteration's record.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Normalized point that was evaluated.
    pub point: Vec<f64>,
    /// Raw observation.
    pub observation: Observation,
    /// Raw objective value.
    pub objective: f64,
    /// Whether the observation met the SLA.
    pub feasible: bool,
    /// Running best feasible objective (includes the default as incumbent).
    pub best_feasible_objective: f64,
    /// Ensemble weights at recommendation time (base learners..., target),
    /// when meta-learning was active.
    pub weights: Option<Vec<f64>>,
    /// How the replay failed, if it did. `Crash`/`Timeout` iterations carry a
    /// synthetic penalized observation; `Partial` carries the truncated one.
    pub failure: Option<FailureKind>,
    /// Transient-failure retries this iteration consumed.
    pub retries: usize,
    /// Timing breakdown.
    pub timing: IterationTiming,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Per-iteration records.
    pub history: Vec<IterationRecord>,
    /// The default-configuration observation that fixed the SLA.
    pub default_observation: Observation,
    /// The SLA constraints.
    pub sla: SlaConstraints,
    /// Best feasible configuration found (the default if nothing better).
    pub best_config: Configuration,
    /// Best feasible objective value.
    pub best_objective: Option<f64>,
    /// Iteration (0-based) at which the best was found; `None` if the default
    /// was never improved.
    pub best_iteration: Option<usize>,
    /// Iteration at which the §4 convergence criterion first held.
    pub converged_at: Option<usize>,
    /// The default configuration's objective value (the tuning baseline).
    pub default_obj_value: f64,
    /// Replay-failure tally across the run.
    pub failures: FailureCounts,
}

impl TuningOutcome {
    /// The best-feasible-objective curve per iteration (what Figures 3–5
    /// plot).
    pub fn best_curve(&self) -> Vec<f64> {
        self.history.iter().map(|r| r.best_feasible_objective).collect()
    }

    /// Relative improvement of the best feasible objective over the default.
    pub fn improvement(&self) -> f64 {
        let default = self.default_obj_value.max(1e-12);
        match self.best_objective {
            Some(best) => (default - best) / default,
            None => 0.0,
        }
    }

    /// The default configuration's objective value.
    pub fn default_objective(&self) -> f64 {
        self.default_obj_value
    }
}

/// Engine construction knobs (everything downstream of a proposed point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSettings {
    /// Retry policy for transient replay failures (DESIGN.md §9).
    pub policy: ReplayPolicy,
    /// Convergence window: no metric moves more than `convergence_epsilon`
    /// for this many consecutive iterations (§4: 0.5 % over 10 iterations).
    pub convergence_window: usize,
    /// Relative convergence threshold.
    pub convergence_epsilon: f64,
    /// Whether the default observation seeds the surrogate training columns
    /// and the incumbent. ResTune trains on the default as its first data
    /// point; the GP/DDPG baselines keep it out of their columns and merge
    /// it explicitly where their published algorithms do.
    pub seed_default_observation: bool,
}

/// A read-only view over the engine's observed state — everything a
/// [`crate::driver::Proposer`] may condition its next point on.
#[derive(Debug, Clone, Copy)]
pub struct HistoryView<'a> {
    /// Problem definition (knob space, objective, SLA fixed from the
    /// default observation).
    pub problem: &'a TuningProblem,
    /// The default observation that fixed the SLA.
    pub default_observation: &'a Observation,
    /// Normalized default point.
    pub default_point: &'a [f64],
    /// The default configuration's objective value.
    pub default_objective: f64,
    /// Observed points (default first iff the engine seeds it).
    pub points: &'a [Vec<f64>],
    /// Raw objective values per point.
    pub res: &'a [f64],
    /// Raw throughput per point.
    pub tps: &'a [f64],
    /// Raw p99 latency per point.
    pub lat: &'a [f64],
    /// Internal metric vectors per *evaluated* point (externally seeded
    /// tuples carry an empty placeholder).
    pub metrics: &'a [Vec<f64>],
    /// Committed iteration records.
    pub history: &'a [IterationRecord],
    /// Best feasible incumbent: (iteration, objective, point). Seeded with
    /// the default when `seed_default_observation` is on.
    pub best: Option<&'a (usize, f64, Vec<f64>)>,
    /// Iteration of the most recent incumbent improvement.
    pub last_improvement: usize,
    /// Running failure/retry tallies across committed iterations
    /// (DESIGN.md §9) — the engine's contribution to the per-iteration
    /// health event (`core::diag`).
    pub failures: FailureCounts,
    /// First iteration of the current tuning epoch (0 until a warm restart;
    /// see [`EvalEngine::warm_restart`]). Proposers gate their
    /// iteration-dependent schedules on `iter - epoch_start`, so a restarted
    /// session re-enters its bootstrap instead of inheriting a stale clock.
    pub epoch_start: usize,
}

/// The shared evaluate-and-record engine.
///
/// Failure semantics (DESIGN.md §9): transient faults retry with backoff,
/// crash/timeout records an infeasible penalized observation, and only full
/// replays update the penalty basis or certify a new incumbent.
pub struct EvalEngine {
    env: TuningEnvironment,
    problem: TuningProblem,
    default_observation: Observation,
    default_point: Vec<f64>,
    default_objective: f64,
    /// Observed data columns (the surrogates' training set).
    points: Vec<Vec<f64>>,
    res: Vec<f64>,
    tps: Vec<f64>,
    lat: Vec<f64>,
    metrics: Vec<Vec<f64>>,
    history: Vec<IterationRecord>,
    best: Option<(usize, f64, Vec<f64>)>,
    last_improvement: usize,
    converged_at: Option<usize>,
    failures: FailureCounts,
    /// Worst/best objective over *full* (non-synthetic) observations — the
    /// basis for the failure penalty, kept separate from `res` so penalty
    /// values never compound on each other.
    obs_worst: f64,
    obs_best: f64,
    policy: ReplayPolicy,
    convergence_window: usize,
    convergence_epsilon: f64,
    seed_default: bool,
    /// First iteration of the current epoch (0 until a warm restart).
    epoch_start: usize,
}

impl EvalEngine {
    /// Evaluates the default configuration, fixes the SLA, and prepares the
    /// bookkeeping.
    pub fn new(mut env: TuningEnvironment, settings: EngineSettings) -> Self {
        let default_observation = env.dbms.evaluate(&Configuration::dba_default());
        let sla = SlaConstraints::from_default_observation(&default_observation);
        // With a transform installed, everything proposer-facing — the
        // problem dimension, the default point, history, surrogates — lives
        // in the low-dimensional search space; only the two lift seams below
        // (evaluate, render) ever see native coordinates.
        let space = match &env.space {
            Some(t) => SpaceInfo { dim: t.dim(), id: t.id() },
            None => SpaceInfo::native(env.knob_set.dim()),
        };
        let problem = TuningProblem {
            knob_set: env.knob_set.clone(),
            space,
            resource: env.resource,
            constraints: sla,
        };
        let default_point = match &env.space {
            Some(t) => t.restrict(&env.knob_set.default_point()),
            None => env.knob_set.default_point(),
        };
        let default_objective = env.resource.value(&default_observation);
        let mut engine = EvalEngine {
            env,
            problem,
            default_observation,
            default_point,
            default_objective,
            points: Vec::new(),
            res: Vec::new(),
            tps: Vec::new(),
            lat: Vec::new(),
            metrics: Vec::new(),
            history: Vec::new(),
            best: None,
            last_improvement: 0,
            converged_at: None,
            failures: FailureCounts::default(),
            obs_worst: default_objective,
            obs_best: default_objective,
            policy: settings.policy,
            convergence_window: settings.convergence_window,
            convergence_epsilon: settings.convergence_epsilon,
            seed_default: settings.seed_default_observation,
            epoch_start: 0,
        };
        if settings.seed_default_observation {
            // The default observation seeds the model and the incumbent.
            let point = engine.default_point.clone();
            let obs = engine.default_observation.clone();
            engine.push_columns(point.clone(), &obs);
            engine.best = Some((0, default_objective, point));
        }
        engine
    }

    fn push_columns(&mut self, point: Vec<f64>, obs: &Observation) {
        self.points.push(point);
        self.res.push(self.env.resource.value(obs));
        self.tps.push(obs.tps);
        self.lat.push(obs.p99_ms);
        self.metrics.push(obs.internal.to_vec());
    }

    /// Appends an externally collected observation tuple to the surrogate's
    /// training data without consuming a replay — warm-starting from
    /// measurements gathered outside this engine. Values enter the model
    /// verbatim; a degenerate tuple (NaN/inf) does not abort the run but
    /// degrades the next recommendations to uniform exploration until enough
    /// clean data accumulates (see DESIGN.md §9).
    pub fn seed_history(&mut self, point: Vec<f64>, res: f64, tps: f64, lat: f64) {
        self.points.push(point);
        self.res.push(res);
        self.tps.push(tps);
        self.lat.push(lat);
        self.metrics.push(Vec::new());
    }

    /// The read-only view proposers condition on.
    pub fn view(&self) -> HistoryView<'_> {
        HistoryView {
            problem: &self.problem,
            default_observation: &self.default_observation,
            default_point: &self.default_point,
            default_objective: self.default_objective,
            points: &self.points,
            res: &self.res,
            tps: &self.tps,
            lat: &self.lat,
            metrics: &self.metrics,
            history: &self.history,
            best: self.best.as_ref(),
            last_improvement: self.last_improvement,
            failures: self.failures,
            epoch_start: self.epoch_start,
        }
    }

    /// Applies and replays `point`, resolving retries and failure penalties,
    /// and returns the iteration's record with the supplied proposal-side
    /// timings plus the simulated replay clock filled in. The record is not
    /// yet part of the history — [`EvalEngine::commit`] it once any
    /// post-evaluation timing (e.g. an RL agent's training step) has been
    /// attributed, so nothing ever patches committed records in place.
    pub fn evaluate(&mut self, proposal: crate::driver::Proposal) -> IterationRecord {
        let iter = self.history.len();
        let crate::driver::Proposal { point, weights, timing } = proposal;
        let config = self
            .problem
            .knob_set
            .to_configuration(&self.lift(&point), &Configuration::dba_default());
        let replay = evaluate_with_retry(&mut self.env.dbms, &config, &self.policy);
        let replay_s = replay.replay_s;
        let retries = replay.retries;
        let failure = FailureKind::from_outcome(&replay.outcome);
        let observation = match replay.outcome {
            EvalOutcome::Ok(obs) => obs,
            EvalOutcome::Partial { observation, .. } => observation,
            // Crash/timeout: no sample came back. Record a finite synthetic
            // observation that is infeasible by construction and penalized
            // above the worst genuine value, so CEI steers away from the
            // region (the penalty encoding of §2, applied to failures).
            EvalOutcome::Crashed { .. } | EvalOutcome::TimedOut { .. } => penalty_observation(
                config.clone(),
                self.env.resource,
                failure_penalty(self.obs_worst, self.obs_best),
                self.problem.constraints.lat_ceiling(),
                replay_s,
            ),
        };
        let objective = self.env.resource.value(&observation);
        let feasible = self.problem.constraints.is_feasible(&observation);
        self.push_columns(point.clone(), &observation);
        if failure.is_none() {
            // Only full replays update the penalty basis and may certify a
            // new incumbent; a truncated sample's SLA reading is not trusted.
            self.obs_worst = self.obs_worst.max(objective);
            self.obs_best = self.obs_best.min(objective);
            if feasible
                && objective
                    < self.best.as_ref().map(|b| b.1).unwrap_or(self.default_objective)
            {
                self.best = Some((iter, objective, point.clone()));
                self.last_improvement = iter;
            }
        }
        self.failures.record(failure, retries);
        IterationRecord {
            iteration: iter,
            point,
            observation,
            objective,
            feasible,
            best_feasible_objective: self
                .best
                .as_ref()
                .map(|b| b.1)
                .unwrap_or(self.default_objective),
            weights,
            failure,
            retries,
            timing: IterationTiming {
                meta_data_processing_s: timing.meta_data_processing_s,
                model_update_s: timing.model_update_s,
                gp_fit_s: timing.gp_fit_s,
                weight_update_s: timing.weight_update_s,
                recommendation_s: timing.recommendation_s,
                replay_s,
            },
        }
    }

    /// Appends a record produced by [`EvalEngine::evaluate`] to the history
    /// and runs the §4 convergence check over the updated tail.
    pub fn commit(&mut self, record: IterationRecord) {
        self.history.push(record);
        self.check_convergence();
    }

    fn check_convergence(&mut self) {
        if self.converged_at.is_some() {
            return;
        }
        let w = self.convergence_window;
        // Convergence is a property of the current epoch: a warm restart
        // resets the criterion, and pre-restart records never stabilize a
        // post-restart tail.
        let epoch = &self.history[self.epoch_start..];
        if epoch.len() < w + 1 {
            return;
        }
        let eps = self.convergence_epsilon;
        let tail = &epoch[epoch.len() - w - 1..];
        let within = |get: fn(&IterationRecord) -> f64| {
            let base = get(&tail[0]).abs().max(1e-12);
            tail.iter().all(|r| (get(r) - get(&tail[0])).abs() / base <= eps)
        };
        // §4: resource utilization, throughput and latency all stable.
        if within(|r| r.best_feasible_objective)
            && within(|r| r.observation.tps)
            && within(|r| r.observation.p99_ms)
        {
            self.converged_at = Some(self.history.len() - 1);
        }
    }

    /// Committed iterations.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// Committed records (a cheap borrow for mid-run inspection).
    pub fn history(&self) -> &[IterationRecord] {
        &self.history
    }

    /// Replay-failure tally so far.
    pub fn failures(&self) -> FailureCounts {
        self.failures
    }

    /// The SLA in force.
    pub fn sla(&self) -> SlaConstraints {
        self.problem.constraints
    }

    /// The problem definition.
    pub fn problem(&self) -> &TuningProblem {
        &self.problem
    }

    /// The tuning environment (DBMS copy, knob set, resource) — what a fleet
    /// needs to label a tenant's task record (`workload@instance`) without
    /// threading that identity separately.
    pub fn environment(&self) -> &TuningEnvironment {
        &self.env
    }

    /// The default observation.
    pub fn default_observation(&self) -> &Observation {
        &self.default_observation
    }

    /// The default configuration's point in *search* coordinates (equal to
    /// the knob set's default point when no transform is installed).
    pub fn default_point(&self) -> &[f64] {
        &self.default_point
    }

    /// Lifts a search-space point into native knob coordinates through the
    /// installed transform (identity when none is installed). Every path
    /// from a proposed point to a `Configuration` goes through here.
    fn lift(&self, point: &[f64]) -> Vec<f64> {
        match &self.env.space {
            Some(t) => {
                trace::count("space.project", 1);
                t.lift(point)
            }
            None => point.to_vec(),
        }
    }

    /// The default configuration's objective value (cheap — no history
    /// clone, unlike rendering a full outcome).
    pub fn default_objective(&self) -> f64 {
        self.default_objective
    }

    /// The current best feasible objective (default if nothing better yet).
    pub fn best_objective(&self) -> f64 {
        self.best.as_ref().map(|b| b.1).unwrap_or(self.default_objective)
    }

    /// Iteration at which the §4 convergence criterion first held.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// First iteration of the current tuning epoch (0 until a warm restart).
    pub fn epoch_start(&self) -> usize {
        self.epoch_start
    }

    /// Renders the **current epoch's** observed history as a [`TaskRecord`]
    /// in the repository's convention: the SLA-anchoring default observation
    /// first, then one observation per committed iteration since
    /// [`EvalEngine::epoch_start`]. Before any warm restart the epoch is the
    /// whole session, which is exactly what a fleet tenant commits on
    /// completion. Every field derives from the deterministic tuning trace,
    /// so the record (and its JSON) is bit-identical across worker counts.
    pub fn to_task_record(&self, task_id: &str, meta_feature: Vec<f64>) -> TaskRecord {
        let resource = self.problem.resource;
        let default = &self.default_observation;
        let epoch = &self.history[self.epoch_start..];
        let mut observations = Vec::with_capacity(epoch.len() + 1);
        observations.push(TaskObservation {
            point: self.default_point.clone(),
            res: resource.value(default),
            tps: default.tps,
            lat: default.p99_ms,
            metrics: default.internal.to_vec(),
        });
        for r in epoch {
            observations.push(TaskObservation {
                point: r.point.clone(),
                res: r.objective,
                tps: r.observation.tps,
                lat: r.observation.p99_ms,
                metrics: r.observation.internal.to_vec(),
            });
        }
        TaskRecord {
            task_id: task_id.to_string(),
            workload: self.env.dbms.workload().name.clone(),
            instance: self.env.dbms.instance(),
            resource,
            knob_names: self.problem.knob_set.names().to_vec(),
            space_id: self.problem.space.id.clone(),
            meta_feature,
            observations,
        }
    }

    /// Executes the engine side of a warm restart after a detected workload
    /// drift (DESIGN.md §16): seals the current epoch's history as a
    /// [`TaskRecord`] (returned so the caller can commit it to a repository),
    /// then starts a fresh epoch against the *drifted* workload — the default
    /// configuration is re-evaluated to re-fix the SLA and the penalty basis,
    /// and the incumbent/convergence bookkeeping resets. The committed
    /// [`IterationRecord`] history and failure tallies are retained, so trace
    /// and diagnostics continuity survives the restart.
    pub fn warm_restart(&mut self, sealed_task_id: &str, meta_feature: Vec<f64>) -> TaskRecord {
        let sealed = self.to_task_record(sealed_task_id, meta_feature);
        self.epoch_start = self.history.len();
        self.points.clear();
        self.res.clear();
        self.tps.clear();
        self.lat.clear();
        self.metrics.clear();
        // Re-anchor against the drifted workload: the default observation is
        // the epoch's SLA and scale reference, exactly as at construction.
        let default_observation = self.env.dbms.evaluate(&Configuration::dba_default());
        self.problem.constraints = SlaConstraints::from_default_observation(&default_observation);
        self.default_objective = self.env.resource.value(&default_observation);
        self.default_observation = default_observation;
        self.best = None;
        self.last_improvement = self.epoch_start;
        self.converged_at = None;
        self.obs_worst = self.default_objective;
        self.obs_best = self.default_objective;
        if self.seed_default {
            let point = self.default_point.clone();
            let obs = self.default_observation.clone();
            self.push_columns(point.clone(), &obs);
            self.best = Some((self.epoch_start, self.default_objective, point));
        }
        trace::count("drift.epochs.sealed", 1);
        sealed
    }

    fn render_outcome(&self, history: Vec<IterationRecord>) -> TuningOutcome {
        let (best_iteration, best_objective, best_config) = match &self.best {
            Some((it, obj, point)) => {
                let config = self
                    .problem
                    .knob_set
                    .to_configuration(&self.lift(point), &Configuration::dba_default());
                // A seeded incumbent that never improved means "the default";
                // report no improving iteration then.
                if (obj - self.default_objective).abs() < 1e-12 && point == &self.default_point {
                    (None, Some(*obj), config)
                } else {
                    (Some(*it), Some(*obj), config)
                }
            }
            None => (None, Some(self.default_objective), Configuration::dba_default()),
        };
        TuningOutcome {
            history,
            default_observation: self.default_observation.clone(),
            sla: self.problem.constraints,
            best_config,
            best_objective,
            best_iteration,
            converged_at: self.converged_at,
            default_obj_value: self.default_objective,
            failures: self.failures,
        }
    }

    /// Summarizes what has been observed so far (clones the history — use
    /// [`EvalEngine::into_outcome`] at end of run, or the cheap accessors
    /// above for mid-run reads).
    pub fn outcome(&self) -> TuningOutcome {
        self.render_outcome(self.history.clone())
    }

    /// Consumes the engine into its final outcome without cloning the
    /// history.
    pub fn into_outcome(mut self) -> TuningOutcome {
        let history = std::mem::take(&mut self.history);
        self.render_outcome(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Proposal;
    use crate::problem::ResourceKind;
    use dbsim::{FaultPlan, InstanceType, KnobSet, WorkloadSpec};

    fn env() -> TuningEnvironment {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(1)
            .build()
    }

    fn baseline_settings() -> EngineSettings {
        EngineSettings {
            policy: ReplayPolicy::default(),
            convergence_window: 10,
            convergence_epsilon: 0.005,
            seed_default_observation: false,
        }
    }

    fn eval(engine: &mut EvalEngine, point: Vec<f64>) {
        let record = engine.evaluate(Proposal::point(point));
        engine.commit(record);
    }

    #[test]
    fn tracks_best_feasible_only() {
        let mut engine = EvalEngine::new(env(), baseline_settings());
        // A throttled point: low CPU but infeasible.
        let throttled = vec![1.0 / 128.0, 0.0, 0.0];
        eval(&mut engine, throttled);
        let record = &engine.history()[0];
        assert!(!record.feasible, "throttled config should violate the SLA");
        assert_eq!(engine.best_objective(), engine.default_objective());
    }

    #[test]
    fn good_point_becomes_incumbent() {
        let mut engine = EvalEngine::new(env(), baseline_settings());
        let good = vec![13.0 / 128.0, 0.0, 0.3];
        eval(&mut engine, good);
        let o = engine.into_outcome();
        assert_eq!(o.best_iteration, Some(0));
        assert!(o.best_objective.unwrap() < o.default_obj_value);
    }

    #[test]
    fn outcome_history_matches_iterations() {
        let mut engine = EvalEngine::new(env(), baseline_settings());
        eval(&mut engine, vec![0.5, 0.5, 0.5]);
        eval(&mut engine, vec![0.2, 0.2, 0.2]);
        assert_eq!(engine.iterations(), 2);
        assert_eq!(engine.outcome().history.len(), 2);
        // The consuming render agrees with the borrowing one.
        let snapshot = engine.outcome();
        let consumed = engine.into_outcome();
        assert_eq!(snapshot.history.len(), consumed.history.len());
        assert_eq!(snapshot.best_objective, consumed.best_objective);
        assert_eq!(snapshot.best_iteration, consumed.best_iteration);
        assert_eq!(snapshot.converged_at, consumed.converged_at);
    }

    #[test]
    fn failed_replays_are_penalized_and_never_become_incumbents() {
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(2)
            .fault_plan(FaultPlan::none().with_transient_rate(0.6).with_seed(9))
            .build();
        let mut settings = baseline_settings();
        // Surface failures instead of absorbing them.
        settings.policy.max_retries = 0;
        let mut engine = EvalEngine::new(env, settings);
        let good = vec![13.0 / 128.0, 0.0, 0.3];
        for _ in 0..12 {
            eval(&mut engine, good.clone());
        }
        let o = engine.into_outcome();
        assert!(o.failures.failed_iterations() > 0, "60% fault rate must fail some");
        for r in &o.history {
            if matches!(r.failure, Some(FailureKind::Crash) | Some(FailureKind::Timeout)) {
                assert!(!r.feasible);
                assert!(r.objective.is_finite() && r.objective > o.default_obj_value);
                assert!(Some(r.iteration) != o.best_iteration);
            }
        }
        // The good point still becomes the incumbent on a successful replay.
        assert!(o.best_objective.unwrap() < o.default_obj_value);
    }

    #[test]
    fn convergence_is_detected_without_a_session() {
        // The §4 criterion now lives in the shared engine, so any strategy —
        // here a fixed point — reports `converged_at` instead of `None`.
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(3)
            .noise(0.0)
            .build();
        let mut settings = baseline_settings();
        settings.convergence_window = 5;
        let mut engine = EvalEngine::new(env, settings);
        for _ in 0..7 {
            eval(&mut engine, vec![0.4, 0.4, 0.4]);
        }
        let o = engine.into_outcome();
        // Six identical noiseless observations satisfy a 5-iteration window.
        assert_eq!(o.converged_at, Some(5));
    }

    #[test]
    fn seeded_default_engine_starts_from_the_default_incumbent() {
        let settings = EngineSettings { seed_default_observation: true, ..baseline_settings() };
        let engine = EvalEngine::new(env(), settings);
        // The default observation is the first training point and the
        // starting incumbent.
        let view = engine.view();
        assert_eq!(view.points.len(), 1);
        assert_eq!(view.points[0], view.default_point);
        assert_eq!(view.best.map(|b| b.1), Some(view.default_objective));
        // Rendered as "no improving iteration yet".
        let o = engine.into_outcome();
        assert_eq!(o.best_iteration, None);
        assert_eq!(o.best_objective, Some(o.default_obj_value));
    }
}
