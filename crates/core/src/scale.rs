//! Scale unification (§6.1).
//!
//! Metrics differ wildly in scale across instances and workloads (2 K txn/s
//! vs 30 K txn/s, 8 GB vs 128 GB). Before any cross-task learning, each
//! task's observations are standardized to zero mean / unit standard
//! deviation, so base-learners output *relative* values. Constraint bounds
//! are re-scaled through the same transform; the paper's §6.1 proof notes
//! that with the meta-learner, the re-scaled bound can simply be the
//! meta-learner's prediction at the default configuration.


/// An affine standardizer `z = (x - mean) / std`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Standardizer {
    /// Empirical mean.
    pub mean: f64,
    /// Empirical standard deviation (floored to avoid division blow-ups on
    /// constant data).
    pub std: f64,
}

impl Standardizer {
    /// Minimum standard deviation; constant observation sets (e.g. tps pinned
    /// at the request rate) standardize to zero rather than exploding.
    pub const MIN_STD: f64 = 1e-9;

    /// Fits mean/std on `values` (population std).
    pub fn fit(values: &[f64]) -> Self {
        let mean = linalg::vector::mean(values);
        let std = linalg::vector::std_dev(values).max(Self::MIN_STD);
        Standardizer { mean, std }
    }

    /// Standardizes one value.
    pub fn transform(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }

    /// Standardizes a slice.
    pub fn transform_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|x| self.transform(*x)).collect()
    }

    /// Inverse transform back to the original scale.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

/// The per-task scalers for the three modeled outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskScalers {
    /// Resource-objective scaler.
    pub res: Standardizer,
    /// Throughput scaler.
    pub tps: Standardizer,
    /// Latency scaler.
    pub lat: Standardizer,
}

impl TaskScalers {
    /// Fits all three scalers from raw observation columns.
    pub fn fit(res: &[f64], tps: &[f64], lat: &[f64]) -> Self {
        TaskScalers {
            res: Standardizer::fit(res),
            tps: Standardizer::fit(tps),
            lat: Standardizer::fit(lat),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_data_has_zero_mean_unit_std() {
        let xs = [3.0, 7.0, 11.0, 5.0, 9.0];
        let s = Standardizer::fit(&xs);
        let zs = s.transform_all(&xs);
        assert!(linalg::vector::mean(&zs).abs() < 1e-12);
        assert!((linalg::vector::std_dev(&zs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_inverse_roundtrip() {
        let s = Standardizer::fit(&[10.0, 20.0, 30.0]);
        for x in [-5.0, 12.3, 40.0] {
            assert!((s.inverse(s.transform(x)) - x).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_data_does_not_explode() {
        let s = Standardizer::fit(&[21_000.0, 21_000.0, 21_000.0]);
        let z = s.transform(21_000.0);
        assert!(z.abs() < 1e-6);
        assert!(z.is_finite());
    }

    #[test]
    fn ordering_is_preserved() {
        // The heart of the §6.1 proof: standardization is monotone, so
        // relative comparisons carry over. L(a) <= L(b) iff a <= b.
        let s = Standardizer::fit(&[1.0, 5.0, 9.0, 2.0]);
        let pairs = [(1.0, 2.0), (-3.0, 7.5), (5.0, 5.1)];
        for (a, b) in pairs {
            assert_eq!(a <= b, s.transform(a) <= s.transform(b));
        }
    }

    #[test]
    fn task_scalers_fit_all_three_outputs() {
        let t = TaskScalers::fit(&[50.0, 60.0], &[1000.0, 2000.0], &[10.0, 30.0]);
        assert!((t.res.mean - 55.0).abs() < 1e-12);
        assert!((t.tps.mean - 1500.0).abs() < 1e-12);
        assert!((t.lat.mean - 20.0).abs() < 1e-12);
    }
}
