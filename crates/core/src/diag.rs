//! Per-iteration model-quality telemetry (DESIGN.md §15).
//!
//! The trace layer (§10) answers *where the time went*; this module answers
//! *is the tuner healthy*. Every iteration of a diagnostics-enabled session
//! ([`crate::tuner::RestuneConfig::diag`]) condenses the model's state into
//! one [`TunerHealth`] record and emits it as a typed, timestamp-free
//! `tuner.health` trace event:
//!
//! - **GP calibration** — standardized LOO residual z-scores, mean LOO
//!   negative log predictive density, and empirical 1σ/2σ coverage of the
//!   objective surrogate ([`gp::Calibration`]), computed on the standardized
//!   targets the model actually trains on,
//! - **RGPE weight dynamics** — the ensemble weight vector and its Shannon
//!   entropy (high entropy = transfer still diffuse, near-zero entropy =
//!   weights collapsed, usually onto the target learner),
//! - **optimization progress** — the incumbent, this iteration's regret
//!   against it, the incumbent improvement, and the stagnation clock,
//! - **surrogate path** — dense vs. sparse model and full vs. incremental
//!   vs. fallback fit, mirroring the `gp.fit.*` counters per iteration,
//! - **failure tallies** — the engine's running crash/timeout/partial/retry
//!   counts plus the proposer's GP-failure fallback count.
//!
//! The data flows from both sides of the loop: the [`crate::engine`] view
//! carries incumbent/failure state, the [`crate::proposer`] carries the
//! fitted surrogate. Everything read is closed-form and deterministic — no
//! RNG streams — so same-seed runs are bit-identical with diagnostics on or
//! off (`tests/determinism.rs` pins it), and the events themselves are
//! timestamp-free so two same-seed diagnostic streams are byte-identical.
//!
//! `core::fleet::health` folds these events into fleet-level digests;
//! `restune-bench`'s `health_report` and `fleet_health` bins render them.

use crate::engine::{HistoryView, IterationRecord};
use crate::resilience::{FailureCounts, FailureKind};
use trace::FieldValue;

/// Event name under which [`TunerHealth`] records are emitted.
pub const HEALTH_EVENT: &str = "tuner.health";

/// How the target surrogate was produced this iteration (the per-iteration
/// view of the `gp.fit.incremental` / `gp.fit.full` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitPath {
    /// From-scratch fit (with or without a hyperparameter refit).
    Full,
    /// Rank-1 Cholesky append onto the previous iteration's cached model.
    Incremental,
    /// The fit failed; the proposer degraded to seeded uniform exploration.
    Fallback,
}

impl FitPath {
    /// Stable string form used in the event field.
    pub fn as_str(self) -> &'static str {
        match self {
            FitPath::Full => "full",
            FitPath::Incremental => "incremental",
            FitPath::Fallback => "fallback",
        }
    }

    /// Parses the string form back (see [`FitPath::as_str`]).
    pub fn parse(s: &str) -> Option<FitPath> {
        match s {
            "full" => Some(FitPath::Full),
            "incremental" => Some(FitPath::Incremental),
            "fallback" => Some(FitPath::Fallback),
            _ => None,
        }
    }
}

/// Drift/warm-restart facts carried by the health event once a session's
/// [`DriftController`](crate::drift::DriftController) has executed at least
/// one restart (DESIGN.md §16). Absent (`None`) until then, so static
/// sessions' event streams stay byte-identical to pre-drift builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftDiag {
    /// Current tuning epoch (1 after the first restart).
    pub epoch: usize,
    /// Warm restarts executed so far.
    pub restarts: u64,
    /// Pre-drift epochs sealed into the repository so far.
    pub sealed_tasks: usize,
    /// Total-variation score of the detection that started this epoch.
    pub last_score: f64,
}

/// Shannon entropy (nats) of a weight vector, normalized defensively so it
/// tolerates vectors that do not sum exactly to one. `None` when no positive
/// mass exists.
pub fn weight_entropy(weights: &[f64]) -> Option<f64> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut h = 0.0;
    for w in weights {
        if w.is_finite() && *w > 0.0 {
            let p = w / total;
            h -= p * p.ln();
        }
    }
    Some(h)
}

/// One iteration's model-quality summary (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TunerHealth {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Raw objective this iteration observed.
    pub objective: f64,
    /// Whether the observation met the SLA.
    pub feasible: bool,
    /// Whether the observation is a synthetic failure penalty
    /// (crash/timeout — DESIGN.md §9).
    pub penalized: bool,
    /// Best feasible objective after this iteration.
    pub incumbent: f64,
    /// `objective − incumbent`: how far this iteration landed from the best
    /// seen (0 on improving iterations, for a minimized objective).
    pub regret: f64,
    /// Incumbent improvement this iteration (previous incumbent − new
    /// incumbent; positive on improvement).
    pub improvement: f64,
    /// Iterations since the incumbent last moved (0 right after a move).
    pub since_improvement: usize,
    /// How the target surrogate was fitted.
    pub fit_path: FitPath,
    /// Dense or sparse objective surrogate (`"none"` before the first
    /// successful fit).
    pub surrogate: String,
    /// GP-failure exploration fallbacks taken so far in this session.
    pub fallbacks: u64,
    /// The engine's running failure/retry tallies, including this iteration.
    pub failures: FailureCounts,
    /// Ensemble weights at recommendation time (base learners..., target).
    pub weights: Option<Vec<f64>>,
    /// Shannon entropy of the weights, when present.
    pub weight_entropy: Option<f64>,
    /// LOO calibration of the objective surrogate, in standardized-target
    /// units (absent on fallback iterations and for sparse surrogates).
    pub calibration: Option<gp::Calibration>,
    /// Drift/warm-restart facts (absent until the first restart).
    pub drift: Option<DriftDiag>,
}

impl TunerHealth {
    /// Builds the summary for the iteration `record` just evaluated (not yet
    /// committed: `view.history` excludes it). The proposer supplies the
    /// surrogate-side facts; the engine's `view` and `record` supply the
    /// optimization- and failure-side facts.
    #[allow(clippy::too_many_arguments)]
    pub fn collect(
        view: &HistoryView<'_>,
        record: &IterationRecord,
        fit_path: FitPath,
        surrogate: &str,
        fallbacks: u64,
        calibration: Option<gp::Calibration>,
        drift: Option<DriftDiag>,
    ) -> TunerHealth {
        // Improvement is measured within the current epoch: right after a
        // warm restart the previous incumbent is the fresh default, not the
        // sealed epoch's best.
        let prev_incumbent = view.history[view.epoch_start..]
            .last()
            .map(|r| r.best_feasible_objective)
            .unwrap_or(view.default_objective);
        let incumbent = record.best_feasible_objective;
        let improvement = prev_incumbent - incumbent;
        let improved = improvement > 0.0;
        let since_improvement = if improved {
            0
        } else {
            record.iteration.saturating_sub(view.last_improvement)
        };
        let failures = view.failures.including(record.failure, record.retries);
        let weight_entropy = record.weights.as_deref().and_then(weight_entropy);
        TunerHealth {
            iteration: record.iteration,
            objective: record.objective,
            feasible: record.feasible,
            penalized: matches!(
                record.failure,
                Some(FailureKind::Crash) | Some(FailureKind::Timeout)
            ),
            incumbent,
            regret: record.objective - incumbent,
            improvement,
            since_improvement,
            fit_path,
            surrogate: surrogate.to_string(),
            fallbacks,
            failures,
            weights: record.weights.clone(),
            weight_entropy,
            calibration,
            drift,
        }
    }

    /// Emits the summary as a [`HEALTH_EVENT`] trace event (no-op while
    /// tracing is disabled).
    pub fn emit(&self) {
        let mut fields: Vec<(&str, FieldValue)> = vec![
            ("iter", self.iteration.into()),
            ("objective", self.objective.into()),
            ("feasible", self.feasible.into()),
            ("penalized", self.penalized.into()),
            ("incumbent", self.incumbent.into()),
            ("regret", self.regret.into()),
            ("improvement", self.improvement.into()),
            ("since_improvement", self.since_improvement.into()),
            ("fit_path", self.fit_path.as_str().into()),
            ("surrogate", self.surrogate.as_str().into()),
            ("fallbacks", self.fallbacks.into()),
            ("crashes", self.failures.crashes.into()),
            ("timeouts", self.failures.timeouts.into()),
            ("partials", self.failures.partials.into()),
            ("retries", self.failures.retries.into()),
        ];
        if let Some(w) = &self.weights {
            // Comma-joined shortest-round-trip floats: the vector's length
            // varies per session, so it travels as one string field.
            let joined =
                w.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(",");
            fields.push(("weights", joined.into()));
        }
        if let Some(h) = self.weight_entropy {
            fields.push(("weight_entropy", h.into()));
        }
        if let Some(c) = &self.calibration {
            fields.push(("calib_n", c.n.into()));
            fields.push(("z_mean", c.mean_abs_z.into()));
            fields.push(("z_max", c.max_abs_z.into()));
            fields.push(("loo_nll", c.loo_nll.into()));
            fields.push(("cov_1s", c.coverage_1s.into()));
            fields.push(("cov_2s", c.coverage_2s.into()));
        }
        if let Some(d) = &self.drift {
            fields.push(("drift_epoch", d.epoch.into()));
            fields.push(("drift_restarts", d.restarts.into()));
            fields.push(("drift_sealed", d.sealed_tasks.into()));
            fields.push(("drift_score", d.last_score.into()));
        }
        trace::event(HEALTH_EVENT, fields);
    }

    /// Reconstructs a summary from a [`HEALTH_EVENT`] event (e.g. out of a
    /// JSONL snapshot). Returns `None` for events of a different name or
    /// missing the iteration index; absent optional blocks stay `None`.
    pub fn from_event(ev: &trace::Event) -> Option<TunerHealth> {
        if ev.name != HEALTH_EVENT {
            return None;
        }
        let iteration = ev.int("iter")? as usize;
        let weights: Option<Vec<f64>> = ev.str("weights").map(|s| {
            s.split(',').filter_map(|t| t.parse::<f64>().ok()).collect()
        });
        let calibration = ev.int("calib_n").map(|n| gp::Calibration {
            n: n as usize,
            mean_abs_z: ev.f64("z_mean").unwrap_or(0.0),
            max_abs_z: ev.f64("z_max").unwrap_or(0.0),
            loo_nll: ev.f64("loo_nll").unwrap_or(0.0),
            coverage_1s: ev.f64("cov_1s").unwrap_or(0.0),
            coverage_2s: ev.f64("cov_2s").unwrap_or(0.0),
        });
        let drift = ev.int("drift_epoch").map(|e| DriftDiag {
            epoch: e as usize,
            restarts: ev.int("drift_restarts").unwrap_or(0) as u64,
            sealed_tasks: ev.int("drift_sealed").unwrap_or(0) as usize,
            last_score: ev.f64("drift_score").unwrap_or(0.0),
        });
        Some(TunerHealth {
            iteration,
            objective: ev.f64("objective").unwrap_or(0.0),
            feasible: ev.int("feasible").unwrap_or(0) != 0,
            penalized: ev.int("penalized").unwrap_or(0) != 0,
            incumbent: ev.f64("incumbent").unwrap_or(0.0),
            regret: ev.f64("regret").unwrap_or(0.0),
            improvement: ev.f64("improvement").unwrap_or(0.0),
            since_improvement: ev.int("since_improvement").unwrap_or(0) as usize,
            fit_path: ev
                .str("fit_path")
                .and_then(FitPath::parse)
                .unwrap_or(FitPath::Full),
            surrogate: ev.str("surrogate").unwrap_or("none").to_string(),
            fallbacks: ev.int("fallbacks").unwrap_or(0) as u64,
            failures: FailureCounts {
                crashes: ev.int("crashes").unwrap_or(0) as usize,
                timeouts: ev.int("timeouts").unwrap_or(0) as usize,
                partials: ev.int("partials").unwrap_or(0) as usize,
                retries: ev.int("retries").unwrap_or(0) as usize,
            },
            weights,
            weight_entropy: ev.f64("weight_entropy"),
            calibration,
            drift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_path_round_trips_through_strings() {
        for p in [FitPath::Full, FitPath::Incremental, FitPath::Fallback] {
            assert_eq!(FitPath::parse(p.as_str()), Some(p));
        }
        assert_eq!(FitPath::parse("warp"), None);
    }

    #[test]
    fn entropy_of_collapsed_and_uniform_weights() {
        // All mass on one learner: zero entropy.
        assert_eq!(weight_entropy(&[0.0, 1.0, 0.0]), Some(0.0));
        // Uniform over 4: ln 4.
        let h = weight_entropy(&[0.25; 4]).unwrap();
        assert!((h - 4.0f64.ln()).abs() < 1e-12);
        // Degenerate vectors have no defined entropy.
        assert_eq!(weight_entropy(&[0.0, 0.0]), None);
        assert_eq!(weight_entropy(&[]), None);
        // Non-finite entries are ignored, not propagated.
        assert_eq!(weight_entropy(&[f64::NAN, 1.0]), Some(0.0));
    }
}
