//! ResTune's recommendation policy as a [`Proposer`]: the propose-side of
//! the paper's iteration pipeline (Fig. 5), split into its named stages —
//! *scale unification* (§6.1, meta-data processing), *model update* (target
//! GP fits + the §6.4.3 adaptive weight schema), and *knob recommendation*
//! (CEI optimization with the LHS-bootstrap, stagnation, and GP-failure
//! fallbacks). Everything downstream of the chosen point (apply, replay,
//! penalties, bookkeeping) lives in [`crate::engine::EvalEngine`].

use crate::acquisition::{
    expected_improvement, AcquisitionKind, ConstrainedExpectedImprovement,
};
use crate::diag::{DriftDiag, FitPath, TunerHealth};
use crate::drift::DriftEvent;
use crate::driver::{Proposal, ProposalTiming, Proposer};
use crate::engine::{HistoryView, IterationRecord};
use crate::meta::{static_weights, BaseLearner, MetaLearner, TargetObservations};
use crate::surrogate::{GpTaskModel, SurrogatePrediction, TaskSurrogate};
use crate::tuner::{InitStrategy, RestuneConfig};
use xrand::{RngExt, SeedableRng};

/// The ResTune strategy (and, with the acquisition swapped, the iTuned and
/// penalty-EI ablations): meta-boosted constrained Bayesian optimization.
pub struct RestuneProposer {
    config: RestuneConfig,
    base_learners: Vec<BaseLearner>,
    target_meta_feature: Vec<f64>,
    use_meta: bool,
    dim: usize,
    lhs_plan: Vec<Vec<f64>>,
    /// The previous iteration's fitted target model, kept so no-hyperopt
    /// iterations can grow it by a rank-1 Cholesky append instead of paying
    /// a from-scratch `O(n^3)` refit. `None` until the first successful fit.
    target_cache: Option<GpTaskModel>,
    /// How the most recent `fit_target` produced its model — the
    /// per-iteration fact behind the `gp.fit.*` counters, reported by the
    /// health event (`core::diag`).
    last_fit: FitPath,
    /// GP-failure exploration fallbacks taken so far in this session.
    gp_fallbacks: u64,
    /// Drift/warm-restart facts for the health event; `None` until the
    /// driver's controller reports a restart, so static sessions' event
    /// streams stay byte-identical.
    drift: Option<DriftDiag>,
}

impl RestuneProposer {
    /// Builds the strategy over a `dim`-dimensional knob space. The caller
    /// (the [`crate::tuner::TuningSession`] facade) validates that every
    /// base learner matches `dim`.
    pub fn new(
        config: RestuneConfig,
        base_learners: Vec<BaseLearner>,
        target_meta_feature: Vec<f64>,
        use_meta: bool,
        dim: usize,
    ) -> Self {
        let lhs_plan = crate::lhs::latin_hypercube(config.init_iters, dim, config.seed ^ 0x5A);
        RestuneProposer {
            config,
            base_learners,
            target_meta_feature,
            use_meta,
            dim,
            lhs_plan,
            target_cache: None,
            last_fit: FitPath::Full,
            gp_fallbacks: 0,
            drift: None,
        }
    }

    /// The objective column for the penalty-EI ablation: infeasible
    /// observations are pushed above the worst value by the shared
    /// failure-penalty formula, so plain EI steers away from them (§2's
    /// simple alternative to CEI).
    fn penalized_res(&self, view: &HistoryView<'_>) -> Vec<f64> {
        let sla = view.problem.constraints;
        let worst = view.res.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let best = view.res.iter().cloned().fold(f64::INFINITY, f64::min);
        let penalty = crate::resilience::failure_penalty(worst, best);
        view.res
            .iter()
            .zip(view.tps.iter().zip(view.lat))
            .map(|(r, (t, l))| {
                if *t >= sla.tps_floor() && *l <= sla.lat_ceiling() {
                    *r
                } else {
                    penalty
                }
            })
            .collect()
    }

    /// Stage 1 — scale unification (§6.1, the paper's "meta-data
    /// processing"): builds the objective column the surrogate trains on
    /// (penalized for the penalty-EI ablation) and fits the standardizers
    /// the model update *uses* — not a throwaway probe.
    fn scale_unification(&self, view: &HistoryView<'_>) -> (Vec<f64>, crate::scale::TaskScalers) {
        let res_col = match self.config.acquisition {
            AcquisitionKind::PenalizedExpectedImprovement => self.penalized_res(view),
            _ => view.res.to_vec(),
        };
        let scalers = crate::scale::TaskScalers::fit(&res_col, view.tps, view.lat);
        (res_col, scalers)
    }

    /// Stage 2a — target surrogate fit, with hyperparameter refits gated to
    /// every `refit_hypers_every` iterations once the observation set grows
    /// past 40 points. On no-refit iterations, the previous iteration's
    /// cached model is grown *incrementally* by a rank-1 Cholesky append
    /// (`O(n^2)`) when exactly one observation arrived since; any mismatch
    /// (restarted history, failed extension, sparse model) falls back to the
    /// full fit. The successful model is always re-cached for the next
    /// iteration.
    fn fit_target(
        &mut self,
        view: &HistoryView<'_>,
        iter: usize,
        res: &[f64],
        scalers: crate::scale::TaskScalers,
    ) -> Result<GpTaskModel, gp::GpError> {
        let n = view.points.len();
        let mut gp_config = self.config.gp.clone();
        gp_config.optimize_hypers = self.config.gp.optimize_hypers
            && (n <= 40 || iter.is_multiple_of(self.config.refit_hypers_every));
        gp_config.seed = self.config.seed;
        // Cache-style tally of the hyperparameter-refit schedule: a "miss"
        // pays the full marginal-likelihood optimization, a "hit" reuses the
        // previous hyperparameters.
        if gp_config.optimize_hypers {
            trace::count("gp.hypers.refit", 1);
        } else {
            trace::count("gp.hypers.reuse", 1);
        }
        if !gp_config.optimize_hypers && self.config.incremental_refit {
            if let Some(mut cached) = self.target_cache.take() {
                if cached.n() + 1 == n
                    && cached.trained_on(&view.points[..n - 1])
                    && cached
                        .extend_with_scalers(
                            view.points,
                            res,
                            view.tps,
                            view.lat,
                            scalers,
                            &gp_config,
                        )
                        .is_ok()
                {
                    trace::count("gp.fit.incremental", 1);
                    self.last_fit = FitPath::Incremental;
                    self.target_cache = Some(cached.clone());
                    return Ok(cached);
                }
            }
        }
        trace::count("gp.fit.full", 1);
        self.last_fit = FitPath::Full;
        let fitted = GpTaskModel::fit_with_scalers(
            view.points,
            res,
            view.tps,
            view.lat,
            scalers,
            &gp_config,
            self.config.parallel,
        )?;
        self.target_cache = Some(fitted.clone());
        Ok(fitted)
    }

    /// Stage 2b — ensemble weight learning (§6.4.3 adaptive schema):
    /// meta-feature static weights for the first `init_iters`, ranking-loss
    /// dynamic weights afterwards.
    fn update_weights(
        &self,
        view: &HistoryView<'_>,
        iter: usize,
        seed: u64,
        target: GpTaskModel,
    ) -> (MetaLearner, Option<Vec<f64>>) {
        if self.use_meta && !self.base_learners.is_empty() {
            let w = if iter < self.config.init_iters {
                static_weights(
                    &self.base_learners,
                    &self.target_meta_feature,
                    self.config.static_bandwidth,
                )
            } else {
                let res_std = target.scalers.res.transform_all(view.res);
                let tps_std = target.scalers.tps.transform_all(view.tps);
                let lat_std = target.scalers.lat.transform_all(view.lat);
                let obs = TargetObservations {
                    points: view.points,
                    res: &res_std,
                    tps: &tps_std,
                    lat: &lat_std,
                };
                crate::meta::dynamic_weights_with_options(
                    &self.base_learners,
                    &target,
                    &obs,
                    self.config.dynamic_samples,
                    self.config.max_rank_points,
                    self.config.dilution_guard,
                    self.config.parallel,
                    seed,
                )
            };
            let learner = MetaLearner::new(self.base_learners.clone(), target, w.clone());
            (learner, Some(w))
        } else {
            (MetaLearner::target_only(target), None)
        }
    }

    /// Stage 3 — knob recommendation: the LHS bootstrap for non-meta runs
    /// (and the w/o-Workload ablation), the ε-greedy stagnation safeguard,
    /// or the acquisition optimization proper.
    fn recommend(
        &self,
        view: &HistoryView<'_>,
        iter: usize,
        seed: u64,
        surrogate: &MetaLearner,
    ) -> Vec<f64> {
        let lhs_init = iter < self.config.init_iters
            && (!self.use_meta || self.config.init_strategy == InitStrategy::Lhs);
        // During the static bootstrap the ensemble mixes base-learners from
        // heterogeneous hardware whose *feasibility* surfaces can disagree
        // with the target instance (a small machine's optimal concurrency
        // throttles a big one). Constraint predictions therefore come from
        // the target learner until dynamic (ranking-loss) weights take over —
        // ranking loss scores tps/lat orderings explicitly, so the dynamic
        // ensemble is safe for constraints.
        let constraints_from_target = self.use_meta
            && iter < self.config.init_iters
            && self.config.static_constraints_from_target;
        // Stagnation safeguard: when the incumbent has not moved for a long
        // stretch (a misled ensemble or a degenerate surrogate can pin the
        // acquisition in a dead region), interleave a uniform exploration
        // point every few iterations — standard ε-greedy insurance in BO
        // implementations. The improvement clock compares two absolute
        // iteration indices (`last_improvement` rebases to `epoch_start` on
        // a warm restart), so the difference is epoch-local like `iter`.
        let stagnated = iter >= self.config.init_iters
            && (view.epoch_start + iter).saturating_sub(view.last_improvement) >= 8
            && iter.is_multiple_of(4);
        if lhs_init {
            // Non-meta methods (and the w/o-Workload ablation) bootstrap with
            // LHS (§7 Setting).
            self.lhs_plan[iter].clone()
        } else if stagnated {
            let mut rng = xrand::rngs::StdRng::seed_from_u64(seed ^ 0xE5C4);
            (0..view.problem.dim()).map(|_| rng.random::<f64>()).collect()
        } else {
            self.optimize_acquisition(view, surrogate, constraints_from_target, seed)
        }
    }

    fn optimize_acquisition(
        &self,
        view: &HistoryView<'_>,
        surrogate: &MetaLearner,
        constraints_from_target: bool,
        seed: u64,
    ) -> Vec<f64> {
        // Joint prediction with constraints optionally sourced from the
        // target learner alone.
        let predict = |p: &[f64]| {
            let mut pred = surrogate.predict(p);
            if constraints_from_target {
                let t = surrogate.target();
                pred.tps = t.tps.predict(p).expect("dim");
                pred.lat = t.lat.predict(p).expect("dim");
            }
            pred
        };
        // Re-scaled constraint bounds λ' = L_M(θ_d) (§6.1), widened by the
        // 5 % tolerance expressed in target-σ units.
        let default_pred = predict(view.default_point);
        let scalers = surrogate.target().scalers;
        let sla = view.problem.constraints;
        let tol = sla.tolerance;
        let tps_floor = default_pred.tps.mean - tol * sla.min_tps / scalers.tps.std;
        let lat_ceiling = default_pred.lat.mean + tol * sla.max_p99_ms / scalers.lat.std;

        let (best_feasible, mut anchors) = match view.best {
            Some((_, _, point)) => {
                let incumbent = predict(point).res.mean;
                (Some(incumbent), vec![point.clone()])
            }
            None => (None, Vec::new()),
        };
        // Seed local refinement with the best observed points of the
        // highest-weight base-learners: "suggest knobs that are promising
        // according to similar historical tasks" (§6.4.3).
        let weights = surrogate.weights();
        let mut ranked: Vec<(usize, f64)> = surrogate
            .base_learners()
            .iter()
            .enumerate()
            .map(|(i, _)| (i, weights[i]))
            .collect();
        // Total order, not `partial_cmp(..).unwrap()`: a NaN weight (e.g. a
        // degenerate ranking-loss posterior) must not panic the ranking. NaN
        // sorts below every real weight and the positivity gate drops it.
        ranked.sort_by(|a, b| {
            let key = |w: f64| if w.is_nan() { f64::NEG_INFINITY } else { w };
            key(b.1).total_cmp(&key(a.1))
        });
        for (i, w) in ranked.into_iter().take(3) {
            // Stop at the first weight that is not strictly positive — a NaN
            // (incomparable) weight stops the scan too.
            if w.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                break;
            }
            // Anchor on the learner's best point that met its own task's SLA
            // — the raw resource minimum is usually a throttled violator.
            if let Some(p) = &surrogate.base_learners()[i].promising_point {
                anchors.push(p.clone());
            }
        }

        // Per-prediction acquisition value. Resolving the incumbent up front
        // keeps the scoring closure pure (no RNG, no per-call setup), which
        // is what allows batched/parallel candidate scoring below.
        enum Scorer {
            Cei(ConstrainedExpectedImprovement),
            Ei { incumbent: f64 },
        }
        let scorer = match self.config.acquisition {
            AcquisitionKind::ConstrainedExpectedImprovement => Scorer::Cei(
                ConstrainedExpectedImprovement { best_feasible, tps_floor, lat_ceiling },
            ),
            AcquisitionKind::PenalizedExpectedImprovement => {
                // Plain EI on the penalized surrogate; the penalty encoded at
                // fit time does the constraint handling.
                let incumbent = view
                    .best
                    .map(|(_, _, p)| predict(p).res.mean)
                    .unwrap_or_else(|| predict(view.default_point).res.mean);
                Scorer::Ei { incumbent }
            }
            AcquisitionKind::ExpectedImprovement => {
                // Unconstrained EI over the *overall* best (iTuned's behavior
                // after the objective swap): ignores the SLA entirely.
                // Filter non-finite objectives before taking the minimum: a
                // seeded-in NaN observation must degrade, not panic.
                let best_overall = view
                    .points
                    .iter()
                    .zip(view.res)
                    .filter(|(_, r)| r.is_finite())
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(p, _)| predict(p).res.mean);
                Scorer::Ei { incumbent: best_overall.unwrap_or(0.0) }
            }
        };
        let value = |pred: &SurrogatePrediction| -> f64 {
            match &scorer {
                Scorer::Cei(cei) => cei.value(pred),
                Scorer::Ei { incumbent } => {
                    expected_improvement(pred.res.mean, pred.res.std_dev(), *incumbent)
                }
            }
        };

        if self.config.parallel {
            // Joint *batched* prediction with the same constraint override as
            // `predict`; each batch is one blocked solve per metric GP.
            let predict_batch = |pts: &[Vec<f64>]| -> Vec<SurrogatePrediction> {
                let mut preds = surrogate.predict_batch(pts);
                if constraints_from_target {
                    let t = surrogate.target();
                    let tps = t.tps.predict_batch(pts).expect("dim");
                    let lat = t.lat.predict_batch(pts).expect("dim");
                    for ((pred, tps), lat) in preds.iter_mut().zip(tps).zip(lat) {
                        pred.tps = tps;
                        pred.lat = lat;
                    }
                }
                preds
            };
            self.config.optimizer.optimize_batch(
                view.problem.dim(),
                &anchors,
                seed,
                true,
                |pts| predict_batch(pts).iter().map(&value).collect(),
            )
        } else {
            self.config.optimizer.optimize(view.problem.dim(), &anchors, seed, |p| {
                value(&predict(p))
            })
        }
    }
}

impl Proposer for RestuneProposer {
    fn propose(&mut self, view: &HistoryView<'_>, iter: usize, seed: u64) -> Proposal {
        // Every iteration-dependent schedule below (LHS bootstrap, weight
        // mode, hyperopt refits, stagnation) runs on the *epoch* clock: a
        // warm restart rewinds it to zero while `iter` — and the driver's
        // seed stream — keep counting. Static sessions have epoch_start 0,
        // so the two clocks coincide bit-for-bit.
        let rel_iter = iter - view.epoch_start;
        // ---- stage 1: meta-data processing (scale unification) ------------
        let meta_span = trace::span!("meta_data_processing");
        let (res_col, scalers) = self.scale_unification(view);
        let meta_data_processing_s = meta_span.finish_s();

        // ---- stage 2: model update (surrogate fit + weights + ensemble) ---
        let model_span = trace::span!("model_update");
        let fit_span = trace::span!("gp_fit", n_obs = view.points.len());
        let fit = self.fit_target(view, rel_iter, &res_col, scalers);
        let gp_fit_s = fit_span.finish_s();
        let (point, weights, model_update_s, weight_update_s, recommendation_s) = match fit {
            Ok(target) => {
                let weight_span = trace::span!("weight_update");
                let (surrogate, weights) = self.update_weights(view, rel_iter, seed, target);
                let weight_update_s = weight_span.finish_s();
                let model_update_s = model_span.finish_s();

                // ---- stage 3: knob recommendation -------------------------
                let recommendation_span = trace::span!("recommendation");
                let point = self.recommend(view, rel_iter, seed, &surrogate);
                let recommendation_s = recommendation_span.finish_s();
                (point, weights, model_update_s, weight_update_s, recommendation_s)
            }
            Err(_) => {
                // GP-failure fallback: a degenerate observation set
                // (non-finite values, pathological kernel) must not abort the
                // run: degrade to a seeded uniform exploration point — the
                // next full observation both makes progress and feeds the
                // surrogate fresh, usable data.
                self.last_fit = FitPath::Fallback;
                self.gp_fallbacks += 1;
                let mut rng = xrand::rngs::StdRng::seed_from_u64(seed ^ 0xFA11);
                let point: Vec<f64> =
                    (0..view.problem.dim()).map(|_| rng.random::<f64>()).collect();
                let model_update_s = model_span.finish_s();
                (point, None, model_update_s, 0.0, 0.0)
            }
        };
        Proposal {
            point,
            weights,
            timing: ProposalTiming {
                meta_data_processing_s,
                model_update_s,
                gp_fit_s,
                weight_update_s,
                recommendation_s,
            },
        }
    }

    /// Post-replay hook: emit the per-iteration `tuner.health` diagnostics
    /// event (DESIGN.md §15) when enabled. Every quantity read here is
    /// closed-form — the LOO calibration inverts the already-factored kernel
    /// matrix, no RNG stream is touched — so diagnostics on/off cannot move
    /// a bit of the tuning trace. Returns 0: diagnostics time is not model
    /// update; it shows up as the nested `diag` span instead.
    fn observe(&mut self, view: &HistoryView<'_>, record: &IterationRecord) -> f64 {
        if self.config.diag && trace::enabled() {
            let _sp = trace::span!("diag");
            let calibration = self
                .target_cache
                .as_ref()
                .filter(|_| self.last_fit != FitPath::Fallback)
                .and_then(|m| m.res.as_dense())
                .and_then(|g| g.loo_calibration().ok());
            let surrogate = match self.target_cache.as_ref().map(|m| &m.res) {
                Some(gp::SurrogateGp::Dense(_)) => "dense",
                Some(gp::SurrogateGp::Sparse(_)) => "sparse",
                None => "none",
            };
            TunerHealth::collect(
                view,
                record,
                self.last_fit,
                surrogate,
                self.gp_fallbacks,
                calibration,
                self.drift,
            )
            .emit();
        }
        0.0
    }

    /// Warm-restart hook (DESIGN.md §16): the sealed pre-drift epoch (and
    /// whatever else the repository matched) becomes the new base-learner
    /// ensemble, the drifted workload's profile becomes the target
    /// meta-feature, and the bootstrap/cache state resets so the next
    /// `propose` re-enters initialization against the new epoch.
    fn on_drift(&mut self, event: &DriftEvent) {
        self.base_learners = event.learners.clone();
        self.target_meta_feature = event.meta_feature.clone();
        // A session that started without transfer sources gains them the
        // moment its own past is sealed; a cold restart (no learners) keeps
        // — or falls back to — the non-meta LHS bootstrap.
        self.use_meta = !self.base_learners.is_empty();
        // A fresh LHS plan, decorrelated per epoch: replaying the epoch-0
        // bootstrap points against a different workload would waste the
        // restart's initialization budget on a stale design.
        self.lhs_plan = crate::lhs::latin_hypercube(
            self.config.init_iters,
            self.dim,
            self.config.seed ^ 0x5A ^ (event.epoch as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        self.target_cache = None;
        self.last_fit = FitPath::Full;
        self.drift = Some(DriftDiag {
            epoch: event.epoch,
            restarts: self.drift.map(|d| d.restarts).unwrap_or(0) + 1,
            sealed_tasks: self.drift.map(|d| d.sealed_tasks).unwrap_or(0) + 1,
            last_score: event.score,
        });
    }
}
