//! Exact Shapley-value knob attribution (the Figure 7 "SHAP path").
//!
//! The paper uses SHAP to explain how each recommended knob moves CPU,
//! throughput, and latency from their default values. With a handful of
//! tuned knobs (the case study tunes 3) the Shapley value can be computed
//! *exactly* by enumerating all `2^m` coalitions, using the simulator as the
//! value function; above [`EXACT_LIMIT`] knobs a seeded permutation-sampling
//! estimate is used instead.

use dbsim::{Configuration, Observation, SimulatedDbms};
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// Maximum knob count for exact enumeration (2^12 = 4096 evaluations per
/// metric is still instant on the simulator).
pub const EXACT_LIMIT: usize = 12;

/// Per-knob attribution for one output metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapAttribution {
    /// Knob name.
    pub knob: String,
    /// Default value of the knob.
    pub default_value: f64,
    /// Recommended (current) value of the knob.
    pub current_value: f64,
    /// Shapley contribution to the CPU change (percentage points).
    pub cpu: f64,
    /// Shapley contribution to the throughput change (txn/s).
    pub tps: f64,
    /// Shapley contribution to the p99 latency change (ms).
    pub p99_ms: f64,
}

/// The full explanation: per-knob contributions plus the endpoint values.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapPath {
    /// One attribution per changed knob, ordered by |CPU contribution|.
    pub attributions: Vec<ShapAttribution>,
    /// Metrics under the default configuration.
    pub default_metrics: (f64, f64, f64),
    /// Metrics under the recommended configuration.
    pub current_metrics: (f64, f64, f64),
}

fn metrics(obs: &Observation) -> (f64, f64, f64) {
    (obs.resources.cpu_pct, obs.tps, obs.p99_ms)
}

/// Computes the SHAP path from the default configuration to `recommended`
/// over the named knobs.
///
/// The value function evaluates the *noiseless* simulator with a coalition's
/// knobs set to their recommended values and the rest at defaults. Shapley
/// values therefore sum exactly (up to estimation error beyond
/// [`EXACT_LIMIT`]) to the default→recommended metric deltas.
pub fn shap_path(
    dbms: &SimulatedDbms,
    recommended: &Configuration,
    knobs: &[String],
    seed: u64,
) -> ShapPath {
    let m = knobs.len();
    let default = Configuration::dba_default();
    let eval = |mask: &[bool]| -> (f64, f64, f64) {
        let mut config = default.clone();
        for (i, on) in mask.iter().enumerate() {
            if *on {
                config.set(&knobs[i], recommended.get(&knobs[i]));
            }
        }
        metrics(&dbms.evaluate_noiseless(&config))
    };

    let default_metrics = eval(&vec![false; m]);
    let current_metrics = eval(&vec![true; m]);

    let contributions = if m <= EXACT_LIMIT {
        exact_shapley(m, &eval)
    } else {
        sampled_shapley(m, &eval, 64, seed)
    };

    let mut attributions: Vec<ShapAttribution> = knobs
        .iter()
        .enumerate()
        .map(|(i, name)| ShapAttribution {
            knob: name.clone(),
            default_value: default.get(name),
            current_value: recommended.get(name),
            cpu: contributions[i].0,
            tps: contributions[i].1,
            p99_ms: contributions[i].2,
        })
        .collect();
    attributions.sort_by(|a, b| b.cpu.abs().partial_cmp(&a.cpu.abs()).unwrap());
    ShapPath { attributions, default_metrics, current_metrics }
}

fn exact_shapley(
    m: usize,
    eval: &impl Fn(&[bool]) -> (f64, f64, f64),
) -> Vec<(f64, f64, f64)> {
    // Cache all coalition values.
    let size = 1usize << m;
    let mut values = Vec::with_capacity(size);
    for mask in 0..size {
        let bits: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
        values.push(eval(&bits));
    }
    let fact: Vec<f64> = {
        let mut f = vec![1.0; m + 1];
        for i in 1..=m {
            f[i] = f[i - 1] * i as f64;
        }
        f
    };
    let mut out = vec![(0.0, 0.0, 0.0); m];
    for (i, contribution) in out.iter_mut().enumerate() {
        for mask in 0..size {
            if mask & (1 << i) != 0 {
                continue;
            }
            let s = (mask as u64).count_ones() as usize;
            let weight = fact[s] * fact[m - s - 1] / fact[m];
            let with = values[mask | (1 << i)];
            let without = values[mask];
            contribution.0 += weight * (with.0 - without.0);
            contribution.1 += weight * (with.1 - without.1);
            contribution.2 += weight * (with.2 - without.2);
        }
    }
    out
}

fn sampled_shapley(
    m: usize,
    eval: &impl Fn(&[bool]) -> (f64, f64, f64),
    permutations: usize,
    seed: u64,
) -> Vec<(f64, f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![(0.0, 0.0, 0.0); m];
    let mut order: Vec<usize> = (0..m).collect();
    for _ in 0..permutations {
        for i in (1..m).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut mask = vec![false; m];
        let mut prev = eval(&mask);
        for &i in &order {
            mask[i] = true;
            let with = eval(&mask);
            out[i].0 += with.0 - prev.0;
            out[i].1 += with.1 - prev.1;
            out[i].2 += with.2 - prev.2;
            prev = with;
        }
    }
    for c in &mut out {
        c.0 /= permutations as f64;
        c.1 /= permutations as f64;
        c.2 /= permutations as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, WorkloadSpec};

    fn case_study_setup() -> (SimulatedDbms, Configuration, Vec<String>) {
        let dbms =
            SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
        let recommended = Configuration::dba_default()
            .with("innodb_thread_concurrency", 13.0)
            .with("innodb_spin_wait_delay", 0.0)
            .with("innodb_lru_scan_depth", 356.0);
        let knobs = vec![
            "innodb_thread_concurrency".to_string(),
            "innodb_spin_wait_delay".to_string(),
            "innodb_lru_scan_depth".to_string(),
        ];
        (dbms, recommended, knobs)
    }

    #[test]
    fn contributions_sum_to_the_total_delta() {
        let (dbms, rec, knobs) = case_study_setup();
        let path = shap_path(&dbms, &rec, &knobs, 0);
        let cpu_sum: f64 = path.attributions.iter().map(|a| a.cpu).sum();
        let cpu_delta = path.current_metrics.0 - path.default_metrics.0;
        assert!(
            (cpu_sum - cpu_delta).abs() < 1e-6,
            "efficiency axiom violated: {cpu_sum} vs {cpu_delta}"
        );
        let tps_sum: f64 = path.attributions.iter().map(|a| a.tps).sum();
        let tps_delta = path.current_metrics.1 - path.default_metrics.1;
        assert!((tps_sum - tps_delta).abs() < 1e-6);
    }

    #[test]
    fn thread_concurrency_dominates_the_case_study() {
        // Paper Fig. 7: thread_concurrency has the largest CPU effect.
        let (dbms, rec, knobs) = case_study_setup();
        let path = shap_path(&dbms, &rec, &knobs, 0);
        assert_eq!(path.attributions[0].knob, "innodb_thread_concurrency");
        assert!(path.attributions[0].cpu < 0.0, "it reduces CPU");
    }

    #[test]
    fn unchanged_knobs_get_zero_attribution() {
        let (dbms, mut rec, mut knobs) = case_study_setup();
        // Add a knob whose recommended value equals the default (dummy axiom).
        rec.set("innodb_purge_threads", 4.0);
        knobs.push("innodb_purge_threads".to_string());
        let path = shap_path(&dbms, &rec, &knobs, 0);
        let purge = path.attributions.iter().find(|a| a.knob == "innodb_purge_threads").unwrap();
        assert!(purge.cpu.abs() < 1e-9);
        assert!(purge.tps.abs() < 1e-9);
    }

    #[test]
    fn sampled_estimator_agrees_with_exact_on_small_problems() {
        let (dbms, rec, knobs) = case_study_setup();
        let default = Configuration::dba_default();
        let eval = |mask: &[bool]| {
            let mut config = default.clone();
            for (i, on) in mask.iter().enumerate() {
                if *on {
                    config.set(&knobs[i], rec.get(&knobs[i]));
                }
            }
            let o = dbms.evaluate_noiseless(&config);
            (o.resources.cpu_pct, o.tps, o.p99_ms)
        };
        let exact = exact_shapley(3, &eval);
        let sampled = sampled_shapley(3, &eval, 200, 1);
        for i in 0..3 {
            assert!(
                (exact[i].0 - sampled[i].0).abs() < 1.5,
                "knob {i}: exact {} sampled {}",
                exact[i].0,
                sampled[i].0
            );
        }
    }
}

minjson::json_struct!(ShapAttribution { knob, default_value, current_value, cpu, tps, p99_ms });
minjson::json_struct!(ShapPath { attributions, default_metrics, current_metrics });
