//! The meta-learner (§6): a weighted ensemble of per-task Gaussian-process
//! base-learners that transfers tuning experience to a new task.
//!
//! * **Base-learners** memorize one historical task's observations each
//!   (standardized per §6.1), so adding history never inflates the `O(n^3)`
//!   GP cost of the target task (§6.3).
//! * **Static weights** (§6.4.1, Eq. 8): before the target has meaningful
//!   observations, weights come from meta-feature distances through an
//!   Epanechnikov kernel.
//! * **Dynamic weights** (§6.4.2, Eq. 9): once observations accumulate, each
//!   base-learner is scored by its *ranking loss* against the target's
//!   observations — misranked pairs, not absolute errors, which is what makes
//!   the transfer robust to hardware-induced scale changes. Weights are the
//!   probability that a learner has the lowest loss, estimated by sampling
//!   from learner posteriors (the target uses leave-one-out predictions to
//!   avoid in-sample optimism).
//! * **Ensemble predictions** (Eqs. 6–7): the mean is the weighted average of
//!   base-learner means; the variance is the *target* learner's variance
//!   alone, because only target observations should shrink uncertainty.

use crate::surrogate::{GpTaskModel, SurrogatePrediction, TaskSurrogate};
use gp::{GpError, Prediction, SurrogateGp};
use xrand::rngs::StdRng;
use xrand::{Rng, SeedableRng, SplitMix64};

/// A historical task's frozen surrogate plus its meta-feature.
#[derive(Debug, Clone)]
pub struct BaseLearner {
    /// Task label (workload @ instance).
    pub task_id: String,
    /// Workload name (for the varying-workloads setting filter).
    pub workload: String,
    /// Hardware environment (for the varying-hardware setting filter).
    pub instance: dbsim::InstanceType,
    /// Workload meta-feature (averaged cost-class distribution, §6.2).
    pub meta_feature: Vec<f64>,
    /// The task's best observed point that met the task's *own* SLA
    /// (throughput/latency of its first — default — observation). Used to
    /// seed acquisition anchors; `None` when no stored point qualified.
    pub promising_point: Option<Vec<f64>>,
    /// The task's fitted multi-output surrogate.
    pub model: GpTaskModel,
}

/// How ensemble weights are assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightStrategy {
    /// Meta-feature distances through the Epanechnikov kernel (Eq. 8).
    Static {
        /// Kernel bandwidth ρ.
        bandwidth: f64,
    },
    /// Ranking-loss posterior sampling (Eq. 9).
    Dynamic {
        /// Posterior samples used to estimate `P(learner has lowest loss)`.
        samples: usize,
        /// At most this many of the most recent target observations enter the
        /// O(n²) ranking-loss computation.
        max_points: usize,
    },
}

impl WeightStrategy {
    /// The paper's defaults: bandwidth chosen so Table 5-scale distances
    /// produce comparable weights; 30 posterior samples.
    pub fn default_static() -> Self {
        WeightStrategy::Static { bandwidth: 0.2 }
    }

    /// Default dynamic strategy.
    pub fn default_dynamic() -> Self {
        WeightStrategy::Dynamic { samples: 30, max_points: 50 }
    }
}

/// The Epanechnikov quadratic kernel γ(t) = 3/4 (1 − t²) for t ≤ 1 (Eq. 8).
pub fn epanechnikov(t: f64) -> f64 {
    if t.abs() <= 1.0 {
        0.75 * (1.0 - t * t)
    } else {
        0.0
    }
}

/// Static weights from meta-feature distances (§6.4.1).
///
/// Returns one weight per historical learner plus, last, the target's weight
/// (the kernel at distance zero, 0.75 — matching the ~54 % share Table 5
/// reports for the target before normalization).
pub fn static_weights(
    base: &[BaseLearner],
    target_meta_feature: &[f64],
    bandwidth: f64,
) -> Vec<f64> {
    let mut weights: Vec<f64> = base
        .iter()
        .map(|b| {
            let d = linalg::vector::euclidean_distance(&b.meta_feature, target_meta_feature);
            epanechnikov(d / bandwidth)
        })
        .collect();
    weights.push(epanechnikov(0.0));
    weights
}

/// The target task's observations, standardized, as the dynamic weighting
/// needs them.
#[derive(Debug, Clone)]
pub struct TargetObservations<'a> {
    /// Normalized knob points.
    pub points: &'a [Vec<f64>],
    /// Standardized resource objective values.
    pub res: &'a [f64],
    /// Standardized throughput values.
    pub tps: &'a [f64],
    /// Standardized latency values.
    pub lat: &'a [f64],
}

/// Counts misranked pairs between `pred` and `actual` (Eq. 9).
pub fn ranking_loss(pred: &[f64], actual: &[f64]) -> usize {
    debug_assert_eq!(pred.len(), actual.len());
    let n = pred.len();
    let mut loss = 0;
    for j in 0..n {
        for k in 0..n {
            if j == k {
                continue;
            }
            if (pred[j] <= pred[k]) != (actual[j] <= actual[k]) {
                loss += 1;
            }
        }
    }
    loss
}

/// Posterior draws of a GP at `points`: one `Vec<f64>` per sample.
fn posterior_draws(
    gp: &SurrogateGp,
    points: &[Vec<f64>],
    n_samples: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<f64>> {
    gp.sample_joint(points, n_samples, rng).unwrap_or_else(|_| {
        // Degenerate covariance: fall back to the posterior means.
        let means: Vec<f64> =
            points.iter().map(|p| gp.predict(p).map(|q| q.mean).unwrap_or(0.0)).collect();
        vec![means; n_samples]
    })
}

/// Independent draws from leave-one-out predictive distributions (used for
/// the target learner so its loss is out-of-sample, §6.4.2). Only training
/// indices `start..` are drawn, matching the (possibly truncated) ranking
/// window at `points`.
fn loo_draws(
    gp: &SurrogateGp,
    points: &[Vec<f64>],
    start: usize,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<f64>> {
    draws_from_loo(gp.loo_predictions(), gp, points, start, n_samples, rng)
}

/// Testable core of [`loo_draws`]. When the leave-one-out computation fails
/// (or yields fewer entries than the ranking window), falls back to
/// *length-preserving* draws — the in-sample posterior means at `points`,
/// mirroring [`posterior_draws`]' degenerate-covariance fallback — rather
/// than empty vectors. Zero-length target draws would score zero ranking
/// loss on every sample, silently absorbing all ensemble weight and
/// disabling transfer (and tripping the `ranking_loss` debug assertion in
/// debug builds).
fn draws_from_loo(
    loo: Result<Vec<Prediction>, GpError>,
    gp: &SurrogateGp,
    points: &[Vec<f64>],
    start: usize,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<f64>> {
    match loo {
        Ok(loo) if loo.len() >= start + points.len() => {
            let tail = &loo[start..start + points.len()];
            (0..n_samples)
                .map(|_| {
                    tail.iter()
                        .map(|p| p.mean + p.std_dev() * gp::rand_util::standard_normal(rng))
                        .collect()
                })
                .collect()
        }
        _ => {
            let means: Vec<f64> =
                points.iter().map(|p| gp.predict(p).map(|q| q.mean).unwrap_or(0.0)).collect();
            vec![means; n_samples]
        }
    }
}

/// Dynamic weights: the probability that each learner (historical learners
/// first, target last) attains the lowest summed ranking loss over
/// {res, tps, lat} (§6.4.2).
pub fn dynamic_weights(
    base: &[BaseLearner],
    target: &GpTaskModel,
    obs: &TargetObservations<'_>,
    samples: usize,
    max_points: usize,
    seed: u64,
) -> Vec<f64> {
    dynamic_weights_with_options(base, target, obs, samples, max_points, true, true, seed)
}

/// [`dynamic_weights`] with the RGPE weight-dilution guard switchable (the
/// ablation harness runs both arms) and the per-learner draw fan-out
/// switchable (`parallel`). Each (learner, metric) pair draws from its own
/// RNG stream seeded via splitmix64, so the weights are bit-identical
/// whether the draws run on scoped threads or serially.
// Every argument is an independent ablation axis; bundling them into an
// options struct would obscure the call sites that flip exactly one.
#[allow(clippy::too_many_arguments)]
pub fn dynamic_weights_with_options(
    base: &[BaseLearner],
    target: &GpTaskModel,
    obs: &TargetObservations<'_>,
    samples: usize,
    max_points: usize,
    dilution_guard: bool,
    parallel: bool,
    seed: u64,
) -> Vec<f64> {
    let n_all = obs.points.len();
    let take = n_all.min(max_points);
    let start = n_all - take;
    let points = &obs.points[start..];
    let actual: [&[f64]; 3] =
        [&obs.res[start..], &obs.tps[start..], &obs.lat[start..]];

    let t = base.len();
    if take < 3 || samples == 0 {
        // Too few observations to rank — or no samples to estimate
        // `P(lowest loss)` with, which would otherwise divide by zero and
        // hand `MetaLearner::new` all-NaN weights. Everything on the target.
        let mut w = vec![0.0; t + 1];
        w[t] = 1.0;
        return w;
    }

    trace::count("meta.weight_updates", 1);

    // Pre-draw posterior samples per learner per metric.
    // draws[learner][metric][sample] -> predictions at `points`.
    let mut seeder = SplitMix64::new(seed);
    let stream_seeds: Vec<u64> = (0..(t + 1) * 3).map(|_| seeder.next_u64()).collect();
    // Draw spans re-enter the caller's context so the per-learner fan-out
    // aggregates under the ambient `weight_update` path on both the scoped
    // threads and the serial fallback.
    let trace_ctx = trace::current_context();
    let draw_learner = |li: usize| -> [Vec<Vec<f64>>; 3] {
        let _trace_guard = trace_ctx.enter();
        let span = trace::span!("learner_draws", learner = li);
        let model = if li == t { target } else { &base[li].model };
        let metric = |m: usize, gp: &SurrogateGp| -> Vec<Vec<f64>> {
            let mut rng = StdRng::seed_from_u64(stream_seeds[li * 3 + m]);
            if li == t {
                loo_draws(gp, points, start, samples, &mut rng)
            } else {
                posterior_draws(gp, points, samples, &mut rng)
            }
        };
        let out = [metric(0, &model.res), metric(1, &model.tps), metric(2, &model.lat)];
        let _ = span.finish_s();
        out
    };
    let draws: Vec<[Vec<Vec<f64>>; 3]> = if parallel {
        let draw_learner = &draw_learner;
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..=t).map(|li| scope.spawn(move || draw_learner(li))).collect();
            handles.into_iter().map(|h| h.join().expect("draw thread panicked")).collect()
        })
    } else {
        (0..=t).map(draw_learner).collect()
    };

    // Per-learner per-sample summed losses.
    let mut losses = vec![vec![0usize; samples]; t + 1];
    for (li, learner_draws) in draws.iter().enumerate() {
        for s in 0..samples {
            let mut loss = 0;
            for (m, actual_m) in actual.iter().enumerate() {
                loss += ranking_loss(&learner_draws[m][s], actual_m);
            }
            losses[li][s] = loss;
        }
    }

    // Weight-dilution guard (RGPE): drop a historical learner whose median
    // loss exceeds the 95th percentile of the *target's* loss samples — it
    // can only add noise ("negative transfer", §6.4.2 / §7.2.3).
    let percentile = |sorted: &[usize], q: f64| -> usize {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    let mut target_sorted = losses[t].clone();
    target_sorted.sort_unstable();
    let guard = percentile(&target_sorted, 0.95);
    let allowed: Vec<bool> = (0..=t)
        .map(|li| {
            if li == t || !dilution_guard {
                return true;
            }
            let mut sorted = losses[li].clone();
            sorted.sort_unstable();
            percentile(&sorted, 0.5) <= guard
        })
        .collect();

    let mut counts = vec![0.0; t + 1];
    for s in 0..samples {
        let mut best_loss = usize::MAX;
        let mut best: Vec<usize> = Vec::new();
        for li in 0..=t {
            if !allowed[li] {
                continue;
            }
            let loss = losses[li][s];
            match loss.cmp(&best_loss) {
                std::cmp::Ordering::Less => {
                    best_loss = loss;
                    best = vec![li];
                }
                std::cmp::Ordering::Equal => best.push(li),
                std::cmp::Ordering::Greater => {}
            }
        }
        // Split ties evenly (unbiased estimate of P(min)).
        let share = 1.0 / best.len() as f64;
        for li in best {
            counts[li] += share;
        }
    }
    for c in &mut counts {
        *c /= samples as f64;
    }
    counts
}

/// The ensemble surrogate L_M (§6.3).
#[derive(Debug, Clone)]
pub struct MetaLearner {
    base: Vec<BaseLearner>,
    target: GpTaskModel,
    /// Weights over `[base..., target]`; need not be normalized.
    weights: Vec<f64>,
}

impl MetaLearner {
    /// Builds the ensemble with explicit weights (`weights.len() ==
    /// base.len() + 1`, target last).
    ///
    /// # Panics
    ///
    /// If the weight count is wrong, or if any base learner's knob-space
    /// dimensionality differs from the target's: a mismatched learner would
    /// only surface as a prediction-time error deep inside the GP, so it is
    /// rejected here, at construction, with the offending task named.
    pub fn new(base: Vec<BaseLearner>, target: GpTaskModel, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), base.len() + 1, "one weight per learner plus target");
        let dim = target.res.dim();
        for b in &base {
            assert_eq!(
                b.model.res.dim(),
                dim,
                "base learner {:?} was fitted on a {}-dim knob space; the target space is {}-dim",
                b.task_id,
                b.model.res.dim(),
                dim
            );
        }
        MetaLearner { base, target, weights }
    }

    /// A meta-learner with no history: pure target model (ResTune-w/o-ML
    /// reduces to this).
    pub fn target_only(target: GpTaskModel) -> Self {
        MetaLearner { base: Vec::new(), target, weights: vec![1.0] }
    }

    /// The current weights (historical learners first, target last).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The target base-learner.
    pub fn target(&self) -> &GpTaskModel {
        &self.target
    }

    /// Historical base-learners.
    pub fn base_learners(&self) -> &[BaseLearner] {
        &self.base
    }

    fn ensemble(&self, extract: impl Fn(&GpTaskModel, &[f64]) -> Prediction, point: &[f64]) -> Prediction {
        let wsum: f64 = self.weights.iter().sum();
        let target_pred = extract(&self.target, point);
        if wsum <= 1e-12 {
            return target_pred;
        }
        // Eq. 6: weighted mean across all learners.
        let mut mean = 0.0;
        for (b, w) in self.base.iter().zip(&self.weights) {
            if *w > 0.0 {
                mean += w * extract(&b.model, point).mean;
            }
        }
        mean += self.weights[self.base.len()] * target_pred.mean;
        mean /= wsum;
        // Eq. 7: variance from the target learner only.
        Prediction { mean, variance: target_pred.variance }
    }

    /// Batched [`MetaLearner::ensemble`]: one batched GP predict per learner
    /// instead of one triangular-solve per (learner, point). The per-point
    /// arithmetic (accumulation order, single division by the weight sum) is
    /// preserved exactly, so each output matches `ensemble` bit-for-bit.
    fn ensemble_batch(
        &self,
        extract: impl Fn(&GpTaskModel, &[Vec<f64>]) -> Vec<Prediction>,
        points: &[Vec<f64>],
    ) -> Vec<Prediction> {
        let wsum: f64 = self.weights.iter().sum();
        let target_preds = extract(&self.target, points);
        if wsum <= 1e-12 {
            return target_preds;
        }
        let mut means = vec![0.0; points.len()];
        for (b, w) in self.base.iter().zip(&self.weights) {
            if *w > 0.0 {
                for (acc, p) in means.iter_mut().zip(extract(&b.model, points)) {
                    *acc += w * p.mean;
                }
            }
        }
        let target_weight = self.weights[self.base.len()];
        means
            .into_iter()
            .zip(&target_preds)
            .map(|(mut mean, tp)| {
                mean += target_weight * tp.mean;
                mean /= wsum;
                Prediction { mean, variance: tp.variance }
            })
            .collect()
    }
}

impl TaskSurrogate for MetaLearner {
    fn predict(&self, point: &[f64]) -> SurrogatePrediction {
        SurrogatePrediction {
            res: self.ensemble(|m, p| m.res.predict(p).expect("dim"), point),
            tps: self.ensemble(|m, p| m.tps.predict(p).expect("dim"), point),
            lat: self.ensemble(|m, p| m.lat.predict(p).expect("dim"), point),
        }
    }

    fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<SurrogatePrediction> {
        let res = self.ensemble_batch(|m, p| m.res.predict_batch(p).expect("dim"), points);
        let tps = self.ensemble_batch(|m, p| m.tps.predict_batch(p).expect("dim"), points);
        let lat = self.ensemble_batch(|m, p| m.lat.predict_batch(p).expect("dim"), points);
        res.into_iter()
            .zip(tps)
            .zip(lat)
            .map(|((res, tps), lat)| SurrogatePrediction { res, tps, lat })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp::GpConfig;

    fn model_from(f: impl Fn(f64) -> f64) -> GpTaskModel {
        let points: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let res: Vec<f64> = points.iter().map(|p| f(p[0])).collect();
        let tps: Vec<f64> = points.iter().map(|p| 100.0 - 10.0 * p[0]).collect();
        let lat: Vec<f64> = points.iter().map(|p| 5.0 + p[0]).collect();
        GpTaskModel::fit(&points, &res, &tps, &lat, &GpConfig::fixed()).unwrap()
    }

    fn learner(id: &str, mf: Vec<f64>, f: impl Fn(f64) -> f64) -> BaseLearner {
        BaseLearner {
            task_id: id.into(),
            workload: id.into(),
            instance: dbsim::InstanceType::A,
            meta_feature: mf,
            promising_point: None,
            model: model_from(f),
        }
    }

    #[test]
    fn epanechnikov_shape() {
        assert_eq!(epanechnikov(0.0), 0.75);
        assert!(epanechnikov(0.5) > epanechnikov(0.9));
        assert_eq!(epanechnikov(1.5), 0.0);
        assert_eq!(epanechnikov(-1.5), 0.0);
    }

    #[test]
    fn static_weights_favor_similar_meta_features() {
        let base = vec![
            learner("near", vec![0.5, 0.5], |x| x),
            learner("far", vec![0.9, 0.1], |x| x),
        ];
        let w = static_weights(&base, &[0.52, 0.48], 0.5);
        assert_eq!(w.len(), 3);
        assert!(w[0] > w[1], "near {} far {}", w[0], w[1]);
        assert_eq!(w[2], 0.75); // target at distance 0
    }

    #[test]
    fn ranking_loss_counts_misranked_pairs() {
        // Perfectly aligned ranking: zero loss.
        assert_eq!(ranking_loss(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 0);
        // Fully reversed: every ordered pair (j != k) misranks except ties.
        let loss = ranking_loss(&[3.0, 2.0, 1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(loss, 6);
        // One swap.
        assert!(ranking_loss(&[1.0, 3.0, 2.0], &[1.0, 2.0, 3.0]) > 0);
    }

    #[test]
    fn ranking_loss_is_scale_invariant() {
        // The whole point of rank-based similarity: multiplying predictions
        // by any positive scale (different hardware!) leaves the loss
        // unchanged.
        let actual = [5.0, 1.0, 3.0, 2.0];
        let pred = [50.0, 10.0, 30.0, 20.0];
        let scaled: Vec<f64> = pred.iter().map(|v| v * 1000.0 + 7.0).collect();
        assert_eq!(ranking_loss(&pred, &actual), 0);
        assert_eq!(ranking_loss(&scaled, &actual), 0);
    }

    #[test]
    fn dynamic_weights_pick_the_matching_base_learner() {
        // Base learner A models the same res shape as the target; B is
        // anti-correlated. With enough target observations, A should carry
        // much more weight than B.
        let base = vec![
            learner("match", vec![0.5], |x| x),
            learner("anti", vec![0.5], |x| 1.0 - x),
        ];
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let res_raw: Vec<f64> = points.iter().map(|p| 40.0 + 30.0 * p[0]).collect();
        let tps_raw: Vec<f64> = points.iter().map(|p| 200.0 - 20.0 * p[0]).collect();
        let lat_raw: Vec<f64> = points.iter().map(|p| 10.0 + 2.0 * p[0]).collect();
        let target =
            GpTaskModel::fit(&points, &res_raw, &tps_raw, &lat_raw, &GpConfig::fixed()).unwrap();
        let res_std = target.scalers.res.transform_all(&res_raw);
        let tps_std = target.scalers.tps.transform_all(&tps_raw);
        let lat_std = target.scalers.lat.transform_all(&lat_raw);
        let obs = TargetObservations {
            points: &points,
            res: &res_std,
            tps: &tps_std,
            lat: &lat_std,
        };
        let w = dynamic_weights(&base, &target, &obs, 40, 50, 7);
        assert_eq!(w.len(), 3);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] > w[1] + 0.2, "match {} anti {}", w[0], w[1]);
    }

    #[test]
    fn dynamic_weights_fall_back_to_target_with_few_points() {
        let base = vec![learner("a", vec![0.5], |x| x)];
        let points = vec![vec![0.1], vec![0.9]];
        let vals = vec![0.0, 1.0];
        let target = GpTaskModel::fit(
            &points,
            &vals,
            &vals,
            &vals,
            &GpConfig::fixed(),
        )
        .unwrap();
        let obs = TargetObservations { points: &points, res: &vals, tps: &vals, lat: &vals };
        let w = dynamic_weights(&base, &target, &obs, 10, 50, 0);
        assert_eq!(w, vec![0.0, 1.0]);
    }

    #[test]
    fn ensemble_mean_is_weighted_average_and_variance_is_targets() {
        let base = vec![learner("a", vec![0.5], |x| x), learner("b", vec![0.5], |x| 1.0 - x)];
        let target = model_from(|x| 0.5 * x);
        let target_pred = target.res.predict(&[0.3]).unwrap();
        let meta = MetaLearner::new(base, target, vec![1.0, 1.0, 2.0]);
        let pred = meta.predict(&[0.3]);
        assert_eq!(pred.res.variance, target_pred.variance);
        // Mean is pulled between the learners; with symmetric base learners
        // (x and 1-x standardized are mirror images) it stays near target's.
        assert!(pred.res.mean.is_finite());
    }

    #[test]
    fn zero_weights_degrade_to_target_prediction() {
        let base = vec![learner("a", vec![0.5], |x| x)];
        let target = model_from(|x| x * x);
        let expected = target.res.predict(&[0.4]).unwrap();
        let meta = MetaLearner::new(base, target, vec![0.0, 0.0]);
        let pred = meta.predict(&[0.4]);
        assert_eq!(pred.res, expected);
    }

    #[test]
    fn target_only_matches_plain_model() {
        let target = model_from(|x| x);
        let direct = target.res.predict(&[0.6]).unwrap();
        let meta = MetaLearner::target_only(target);
        assert_eq!(meta.predict(&[0.6]).res, direct);
    }

    #[test]
    fn loo_failure_falls_back_to_length_preserving_draws() {
        // Regression for the silent-transfer-kill bug: a failed
        // `loo_predictions()` used to produce *empty* draw vectors, which
        // score zero ranking loss against any actuals — the target learner
        // then "wins" every sample and absorbs all ensemble weight.
        let target = model_from(|x| x);
        let points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let draws = super::draws_from_loo(
            Err(GpError::Factorization("forced failure".into())),
            &target.res,
            &points,
            0,
            5,
            &mut rng,
        );
        assert_eq!(draws.len(), 5);
        for d in &draws {
            assert_eq!(d.len(), points.len(), "draws must preserve window length");
            assert!(d.iter().all(|v| v.is_finite()));
        }
        // The fallback draws follow the fitted (increasing) signal, so they
        // incur real ranking loss against anti-correlated actuals — the
        // target can no longer score a free zero.
        let anti: Vec<f64> = points.iter().map(|p| 1.0 - p[0]).collect();
        assert!(ranking_loss(&draws[0], &anti) > 0, "fallback draws must not be free wins");
    }

    #[test]
    fn zero_samples_yield_target_only_weights_not_nan() {
        let base = vec![learner("a", vec![0.5], |x| x)];
        let points: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let vals: Vec<f64> = points.iter().map(|p| p[0]).collect();
        let target =
            GpTaskModel::fit(&points, &vals, &vals, &vals, &GpConfig::fixed()).unwrap();
        let obs = TargetObservations { points: &points, res: &vals, tps: &vals, lat: &vals };
        let w = dynamic_weights(&base, &target, &obs, 0, 50, 3);
        assert_eq!(w, vec![0.0, 1.0]);
        assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_and_serial_dynamic_weights_agree_bitwise() {
        let base = vec![
            learner("match", vec![0.5], |x| x),
            learner("anti", vec![0.5], |x| 1.0 - x),
        ];
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let res_raw: Vec<f64> = points.iter().map(|p| 40.0 + 30.0 * p[0]).collect();
        let tps_raw: Vec<f64> = points.iter().map(|p| 200.0 - 20.0 * p[0]).collect();
        let lat_raw: Vec<f64> = points.iter().map(|p| 10.0 + 2.0 * p[0]).collect();
        let target =
            GpTaskModel::fit(&points, &res_raw, &tps_raw, &lat_raw, &GpConfig::fixed()).unwrap();
        let res_std = target.scalers.res.transform_all(&res_raw);
        let tps_std = target.scalers.tps.transform_all(&tps_raw);
        let lat_std = target.scalers.lat.transform_all(&lat_raw);
        let obs = TargetObservations {
            points: &points,
            res: &res_std,
            tps: &tps_std,
            lat: &lat_std,
        };
        let par = dynamic_weights_with_options(&base, &target, &obs, 25, 50, true, true, 11);
        let ser = dynamic_weights_with_options(&base, &target, &obs, 25, 50, true, false, 11);
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.to_bits(), b.to_bits(), "parallel {par:?} vs serial {ser:?}");
        }
    }

    #[test]
    fn meta_predict_batch_matches_per_point_bitwise() {
        let base = vec![learner("a", vec![0.5], |x| x), learner("b", vec![0.5], |x| 1.0 - x)];
        let target = model_from(|x| 0.5 * x);
        let meta = MetaLearner::new(base, target, vec![0.6, 0.0, 1.4]);
        let pts: Vec<Vec<f64>> = (0..17).map(|i| vec![i as f64 / 16.0]).collect();
        let batch = meta.predict_batch(&pts);
        for (p, b) in pts.iter().zip(&batch) {
            let single = meta.predict(p);
            assert_eq!(single.res.mean.to_bits(), b.res.mean.to_bits());
            assert_eq!(single.tps.mean.to_bits(), b.tps.mean.to_bits());
            assert_eq!(single.lat.mean.to_bits(), b.lat.mean.to_bits());
            assert_eq!(single.res.variance.to_bits(), b.res.variance.to_bits());
        }
    }
}
