//! Human-readable tuning reports: what changed, what it does, and what the
//! SLA audit says — the explanation a DBA reads before applying a
//! recommendation (the textual counterpart of the paper's Figure 7 story).

use crate::problem::ResourceKind;
use crate::tuner::TuningOutcome;
use dbsim::{Configuration, KnobRegistry, KnobSet};
use std::fmt::Write as _;

/// One changed knob with its registry description.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobChange {
    /// Knob name.
    pub knob: String,
    /// Default value.
    pub from: f64,
    /// Recommended value.
    pub to: f64,
    /// Registry description of what the knob does.
    pub description: &'static str,
}

/// Lists the knobs whose recommended values differ from the defaults.
pub fn changed_knobs(config: &Configuration, knob_set: &KnobSet) -> Vec<KnobChange> {
    let default = Configuration::dba_default();
    let registry = KnobRegistry::mysql();
    knob_set
        .names()
        .iter()
        .filter_map(|name| {
            let (from, to) = (default.get(name), config.get(name));
            if (from - to).abs() > 1e-9 {
                Some(KnobChange {
                    knob: name.clone(),
                    from,
                    to,
                    description: registry.get(name).map(|d| d.description).unwrap_or(""),
                })
            } else {
                None
            }
        })
        .collect()
}

/// Renders a full advisory report for a tuning outcome.
pub fn report(outcome: &TuningOutcome, knob_set: &KnobSet, resource: ResourceKind) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Tuning report — {} objective", resource.name());
    let _ = writeln!(
        out,
        "\nSLA: throughput >= {:.0} txn/s, p99 latency <= {:.2} ms (5% tolerance applied)",
        outcome.sla.min_tps, outcome.sla.max_p99_ms
    );
    let _ = writeln!(
        out,
        "Default {}: {:.2} {}",
        resource.name(),
        outcome.default_objective(),
        resource.unit()
    );
    match outcome.best_objective {
        Some(best) if outcome.best_iteration.is_some() => {
            let _ = writeln!(
                out,
                "Recommended {}: {:.2} {} — a {:.1}% reduction, found at iteration {}",
                resource.name(),
                best,
                resource.unit(),
                outcome.improvement() * 100.0,
                outcome.best_iteration.unwrap()
            );
        }
        _ => {
            let _ = writeln!(out, "No configuration beat the default within budget; keeping defaults.");
        }
    }

    let violations = outcome.history.iter().filter(|r| !r.feasible).count();
    let _ = writeln!(
        out,
        "Explored {} configurations; {} violated the SLA and were never adopted.",
        outcome.history.len(),
        violations
    );
    if let Some(at) = outcome.converged_at {
        let _ = writeln!(out, "Converged (<=0.5% movement over 10 iterations) at iteration {at}.");
    }

    let changes = changed_knobs(&outcome.best_config, knob_set);
    if changes.is_empty() {
        let _ = writeln!(out, "\nNo knob changes recommended.");
    } else {
        let _ = writeln!(out, "\n## Recommended knob changes\n");
        for c in &changes {
            let _ = writeln!(out, "- `{}`: {} -> {}", c.knob, c.from, c.to);
            if !c.description.is_empty() {
                let _ = writeln!(out, "    ({})", c.description);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::AcquisitionOptimizer;
    use crate::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
    use dbsim::{InstanceType, WorkloadSpec};

    fn outcome() -> (TuningOutcome, KnobSet) {
        let knob_set = KnobSet::case_study();
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(knob_set.clone())
            .seed(2)
            .build();
        let config = RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 250, n_local: 50, local_sigma: 0.1 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 10, ..Default::default() },
            seed: 2,
            ..Default::default()
        };
        (TuningSession::new(env, config).run(12), knob_set)
    }

    #[test]
    fn changed_knobs_only_lists_real_changes() {
        let set = KnobSet::case_study();
        // Unchanged config: nothing to report.
        assert!(changed_knobs(&Configuration::dba_default(), &set).is_empty());
        let tuned = Configuration::dba_default().with("innodb_thread_concurrency", 13.0);
        let changes = changed_knobs(&tuned, &set);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].knob, "innodb_thread_concurrency");
        assert_eq!(changes[0].from, 0.0);
        assert_eq!(changes[0].to, 13.0);
        assert!(!changes[0].description.is_empty());
    }

    #[test]
    fn report_contains_the_essentials() {
        let (o, set) = outcome();
        let text = report(&o, &set, ResourceKind::Cpu);
        assert!(text.contains("Tuning report"));
        assert!(text.contains("SLA: throughput >="));
        assert!(text.contains("Default CPU"));
        assert!(text.contains("Explored 12 configurations"));
        // Twitter's tuning always changes thread concurrency.
        assert!(text.contains("innodb_thread_concurrency"));
    }

    #[test]
    fn report_handles_no_improvement_gracefully() {
        // Zero-iteration outcome: best == default, no iteration.
        let knob_set = KnobSet::case_study();
        let env = TuningEnvironment::builder()
            .instance(InstanceType::B)
            .workload(WorkloadSpec::sales())
            .resource(ResourceKind::Cpu)
            .knob_set(knob_set.clone())
            .seed(3)
            .build();
        let o = TuningSession::new(env, RestuneConfig::default()).run(0);
        let text = report(&o, &knob_set, ResourceKind::Cpu);
        assert!(text.contains("keeping defaults"));
    }
}
