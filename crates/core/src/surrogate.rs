//! The multi-output task surrogate (§5.1): three conditionally independent
//! Gaussian processes over the normalized knob space, one each for the
//! resource objective, throughput, and p99 latency — fitted on *standardized*
//! observations (§6.1).

use crate::scale::TaskScalers;
use gp::{GaussianProcess, GpConfig, GpError, Prediction, SparseGp, SparseGpConfig, SurrogateGp};

/// Joint prediction of the three modeled outputs, in standardized units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogatePrediction {
    /// Resource objective.
    pub res: Prediction,
    /// Throughput.
    pub tps: Prediction,
    /// p99 latency.
    pub lat: Prediction,
}

/// Anything that can predict `(f_res, f_tps, f_lat)` at a normalized point:
/// a single task model, or the meta-learner ensemble.
pub trait TaskSurrogate {
    /// Predicts the three outputs (standardized scale).
    fn predict(&self, point: &[f64]) -> SurrogatePrediction;

    /// Predicts a whole batch of points. Implementations must return exactly
    /// the same bits as mapping [`TaskSurrogate::predict`] over `points`;
    /// the default does precisely that, while model-backed implementations
    /// override it with one blocked solve per metric GP.
    fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<SurrogatePrediction> {
        points.iter().map(|p| self.predict(p)).collect()
    }
}

/// A single task's surrogate: three GPs on standardized outputs.
///
/// Each metric model is a [`SurrogateGp`]: dense for target tasks (which stay
/// small and need incremental extension + leave-one-out predictions), sparse
/// for large base-task histories from the meta-repository.
#[derive(Debug, Clone)]
pub struct GpTaskModel {
    /// GP over the standardized resource objective.
    pub res: SurrogateGp,
    /// GP over standardized throughput.
    pub tps: SurrogateGp,
    /// GP over standardized latency.
    pub lat: SurrogateGp,
    /// The scalers used (needed to map SLA bounds into model space).
    pub scalers: TaskScalers,
}

impl GpTaskModel {
    /// Fits the three GPs on raw observation columns; standardization happens
    /// internally so base-learners from different tasks share one scale.
    pub fn fit(
        points: &[Vec<f64>],
        res_raw: &[f64],
        tps_raw: &[f64],
        lat_raw: &[f64],
        config: &GpConfig,
    ) -> Result<Self, GpError> {
        let scalers = TaskScalers::fit(res_raw, tps_raw, lat_raw);
        Self::fit_with_scalers(points, res_raw, tps_raw, lat_raw, scalers, config, false)
    }

    /// [`GpTaskModel::fit`] with externally fitted scalers (so callers that
    /// already standardized — e.g. for ranking-loss bookkeeping — don't pay
    /// for a second pass) and an opt-in parallel mode that fits the three
    /// metric GPs on scoped threads. Each GP's fit is self-contained and
    /// seeded by `config`, so the parallel and serial paths produce
    /// bit-identical models.
    pub fn fit_with_scalers(
        points: &[Vec<f64>],
        res_raw: &[f64],
        tps_raw: &[f64],
        lat_raw: &[f64],
        scalers: TaskScalers,
        config: &GpConfig,
        parallel: bool,
    ) -> Result<Self, GpError> {
        let pts = points.to_vec();
        let res_std = scalers.res.transform_all(res_raw);
        let tps_std = scalers.tps.transform_all(tps_raw);
        let lat_std = scalers.lat.transform_all(lat_raw);
        // Per-metric fit spans; the scoped-thread fits re-enter the calling
        // thread's span context so they aggregate under the ambient
        // `gp_fit` path whichever path runs.
        let ctx = trace::current_context();
        let timed_fit = |name: &'static str, pts: Vec<Vec<f64>>, ys: Vec<f64>| {
            let _guard = ctx.enter();
            let span = trace::Span::new(name).with_field("n_obs", ys.len() as f64);
            let fitted = GaussianProcess::fit(pts, ys, config);
            let _ = span.finish_s();
            fitted
        };
        let (res, tps, lat) = if parallel {
            let pts_tps = pts.clone();
            let pts_lat = pts.clone();
            std::thread::scope(|scope| {
                let tps_h = scope.spawn(|| timed_fit("fit_tps", pts_tps, tps_std));
                let lat_h = scope.spawn(|| timed_fit("fit_lat", pts_lat, lat_std));
                let res = timed_fit("fit_res", pts, res_std);
                (res, tps_h.join().expect("tps fit panicked"), lat_h.join().expect("lat fit panicked"))
            })
        } else {
            (
                timed_fit("fit_res", pts.clone(), res_std),
                timed_fit("fit_tps", pts.clone(), tps_std),
                timed_fit("fit_lat", pts, lat_std),
            )
        };
        Ok(GpTaskModel {
            res: SurrogateGp::Dense(res?),
            tps: SurrogateGp::Dense(tps?),
            lat: SurrogateGp::Dense(lat?),
            scalers,
        })
    }

    /// Fits the three metric models as inducing-point sparse GPs — the
    /// large-history path for base learners whose observation count makes a
    /// dense `O(n^3)` fit unaffordable. Hyperparameters come from a dense fit
    /// on the inducing subset (see [`SparseGp::fit`]).
    pub fn fit_sparse(
        points: &[Vec<f64>],
        res_raw: &[f64],
        tps_raw: &[f64],
        lat_raw: &[f64],
        config: &SparseGpConfig,
    ) -> Result<Self, GpError> {
        let scalers = TaskScalers::fit(res_raw, tps_raw, lat_raw);
        let fit_one = |ys: Vec<f64>| -> Result<SurrogateGp, GpError> {
            Ok(SurrogateGp::Sparse(SparseGp::fit(points.to_vec(), ys, config)?))
        };
        Ok(GpTaskModel {
            res: fit_one(scalers.res.transform_all(res_raw))?,
            tps: fit_one(scalers.tps.transform_all(tps_raw))?,
            lat: fit_one(scalers.lat.transform_all(lat_raw))?,
            scalers,
        })
    }

    /// Appends the latest observation *incrementally*: each dense metric GP
    /// grows its Cholesky factor by one rank-1 row (`O(n^2)`) instead of
    /// refactoring from scratch (`O(n^3)`), keeping the kernel
    /// hyperparameters it already carries. Standardization is re-fit on the
    /// full raw columns every iteration, so all targets are rewritten through
    /// [`GaussianProcess::set_targets`] (an `O(n^2)` solve against the grown
    /// factor).
    ///
    /// `points`/`*_raw` are the FULL history including the new last entry;
    /// the model must currently hold exactly `points.len() - 1` observations,
    /// with a training set bit-equal to `points[..n-1]`. Errors if any metric
    /// model is sparse (target models never are) — the caller falls back to a
    /// full fit.
    pub fn extend_with_scalers(
        &mut self,
        points: &[Vec<f64>],
        res_raw: &[f64],
        tps_raw: &[f64],
        lat_raw: &[f64],
        scalers: TaskScalers,
        config: &GpConfig,
    ) -> Result<(), GpError> {
        let n = points.len();
        if n == 0 || self.n() + 1 != n {
            return Err(GpError::DataMismatch { n_x: n, n_y: self.n() + 1 });
        }
        let x_new = &points[n - 1];
        let extend_one =
            |gp: &mut SurrogateGp, std_col: Vec<f64>| -> Result<(), GpError> {
                let dense = gp.as_dense_mut().ok_or_else(|| {
                    GpError::Factorization("cannot extend a sparse surrogate".into())
                })?;
                dense.extend(x_new.clone(), std_col[n - 1], config)?;
                dense.set_targets(std_col)
            };
        extend_one(&mut self.res, scalers.res.transform_all(res_raw))?;
        extend_one(&mut self.tps, scalers.tps.transform_all(tps_raw))?;
        extend_one(&mut self.lat, scalers.lat.transform_all(lat_raw))?;
        self.scalers = scalers;
        Ok(())
    }

    /// Whether the model's training inputs are exactly `prefix` — the guard
    /// the proposer's incremental cache uses before extending.
    pub fn trained_on(&self, prefix: &[Vec<f64>]) -> bool {
        let Some(dense) = self.res.as_dense() else { return false };
        let train = dense.train_x();
        train.len() == prefix.len()
            && train
                .iter()
                .zip(prefix)
                .all(|(a, b)| a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y))
    }

    /// Number of observations the model was fitted on.
    pub fn n(&self) -> usize {
        self.res.n()
    }
}

impl TaskSurrogate for GpTaskModel {
    fn predict(&self, point: &[f64]) -> SurrogatePrediction {
        SurrogatePrediction {
            res: self.res.predict(point).expect("dimension checked at fit"),
            tps: self.tps.predict(point).expect("dimension checked at fit"),
            lat: self.lat.predict(point).expect("dimension checked at fit"),
        }
    }

    fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<SurrogatePrediction> {
        let res = self.res.predict_batch(points).expect("dimension checked at fit");
        let tps = self.tps.predict_batch(points).expect("dimension checked at fit");
        let lat = self.lat.predict_batch(points).expect("dimension checked at fit");
        res.into_iter()
            .zip(tps)
            .zip(lat)
            .map(|((res, tps), lat)| SurrogatePrediction { res, tps, lat })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> GpTaskModel {
        // res = x, tps = 100 - 50x, lat = 10 + 5x over a 1-D grid.
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let res: Vec<f64> = points.iter().map(|p| 80.0 * p[0] + 10.0).collect();
        let tps: Vec<f64> = points.iter().map(|p| 100.0 - 50.0 * p[0]).collect();
        let lat: Vec<f64> = points.iter().map(|p| 10.0 + 5.0 * p[0]).collect();
        GpTaskModel::fit(&points, &res, &tps, &lat, &GpConfig::fixed()).unwrap()
    }

    #[test]
    fn predictions_track_the_training_signal() {
        let m = toy_model();
        let lo = m.predict(&[0.05]);
        let hi = m.predict(&[0.95]);
        // Standardized res increases with x, tps decreases, lat increases.
        assert!(lo.res.mean < hi.res.mean);
        assert!(lo.tps.mean > hi.tps.mean);
        assert!(lo.lat.mean < hi.lat.mean);
    }

    #[test]
    fn scalers_invert_to_raw_units() {
        let m = toy_model();
        let p = m.predict(&[0.5]);
        let raw_res = m.scalers.res.inverse(p.res.mean);
        assert!((raw_res - 50.0).abs() < 8.0, "raw res {raw_res}");
    }

    #[test]
    fn n_reports_observation_count() {
        assert_eq!(toy_model().n(), 10);
    }

    #[test]
    fn parallel_fit_matches_serial_fit_bitwise() {
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let res: Vec<f64> = points.iter().map(|p| 80.0 * p[0] + 10.0).collect();
        let tps: Vec<f64> = points.iter().map(|p| 100.0 - 50.0 * p[0]).collect();
        let lat: Vec<f64> = points.iter().map(|p| 10.0 + 5.0 * p[0]).collect();
        let cfg = GpConfig { restarts: 2, adam_iters: 20, seed: 5, ..Default::default() };
        let scalers = TaskScalers::fit(&res, &tps, &lat);
        let serial =
            GpTaskModel::fit_with_scalers(&points, &res, &tps, &lat, scalers, &cfg, false).unwrap();
        let par =
            GpTaskModel::fit_with_scalers(&points, &res, &tps, &lat, scalers, &cfg, true).unwrap();
        for x in [0.0, 0.17, 0.5, 0.83, 1.0] {
            let a = serial.predict(&[x]);
            let b = par.predict(&[x]);
            assert_eq!(a.res.mean.to_bits(), b.res.mean.to_bits());
            assert_eq!(a.tps.mean.to_bits(), b.tps.mean.to_bits());
            assert_eq!(a.lat.mean.to_bits(), b.lat.mean.to_bits());
            assert_eq!(a.res.variance.to_bits(), b.res.variance.to_bits());
        }
    }

    #[test]
    fn batched_surrogate_prediction_matches_per_point_bitwise() {
        let m = toy_model();
        let pts: Vec<Vec<f64>> = (0..23).map(|i| vec![i as f64 / 22.0 * 1.4 - 0.2]).collect();
        let batch = m.predict_batch(&pts);
        assert_eq!(batch.len(), pts.len());
        for (p, b) in pts.iter().zip(&batch) {
            let single = m.predict(p);
            assert_eq!(single.res.mean.to_bits(), b.res.mean.to_bits());
            assert_eq!(single.tps.mean.to_bits(), b.tps.mean.to_bits());
            assert_eq!(single.lat.mean.to_bits(), b.lat.mean.to_bits());
            assert_eq!(single.res.variance.to_bits(), b.res.variance.to_bits());
            assert_eq!(single.tps.variance.to_bits(), b.tps.variance.to_bits());
            assert_eq!(single.lat.variance.to_bits(), b.lat.variance.to_bits());
        }
    }
}
