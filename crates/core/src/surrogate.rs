//! The multi-output task surrogate (§5.1): three conditionally independent
//! Gaussian processes over the normalized knob space, one each for the
//! resource objective, throughput, and p99 latency — fitted on *standardized*
//! observations (§6.1).

use crate::scale::TaskScalers;
use gp::{GaussianProcess, GpConfig, GpError, Prediction};

/// Joint prediction of the three modeled outputs, in standardized units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogatePrediction {
    /// Resource objective.
    pub res: Prediction,
    /// Throughput.
    pub tps: Prediction,
    /// p99 latency.
    pub lat: Prediction,
}

/// Anything that can predict `(f_res, f_tps, f_lat)` at a normalized point:
/// a single task model, or the meta-learner ensemble.
pub trait TaskSurrogate {
    /// Predicts the three outputs (standardized scale).
    fn predict(&self, point: &[f64]) -> SurrogatePrediction;
}

/// A single task's surrogate: three GPs on standardized outputs.
#[derive(Debug, Clone)]
pub struct GpTaskModel {
    /// GP over the standardized resource objective.
    pub res: GaussianProcess,
    /// GP over standardized throughput.
    pub tps: GaussianProcess,
    /// GP over standardized latency.
    pub lat: GaussianProcess,
    /// The scalers used (needed to map SLA bounds into model space).
    pub scalers: TaskScalers,
}

impl GpTaskModel {
    /// Fits the three GPs on raw observation columns; standardization happens
    /// internally so base-learners from different tasks share one scale.
    pub fn fit(
        points: &[Vec<f64>],
        res_raw: &[f64],
        tps_raw: &[f64],
        lat_raw: &[f64],
        config: &GpConfig,
    ) -> Result<Self, GpError> {
        let scalers = TaskScalers::fit(res_raw, tps_raw, lat_raw);
        let pts = points.to_vec();
        let res = GaussianProcess::fit(pts.clone(), scalers.res.transform_all(res_raw), config)?;
        let tps = GaussianProcess::fit(pts.clone(), scalers.tps.transform_all(tps_raw), config)?;
        let lat = GaussianProcess::fit(pts, scalers.lat.transform_all(lat_raw), config)?;
        Ok(GpTaskModel { res, tps, lat, scalers })
    }

    /// Number of observations the model was fitted on.
    pub fn n(&self) -> usize {
        self.res.n()
    }
}

impl TaskSurrogate for GpTaskModel {
    fn predict(&self, point: &[f64]) -> SurrogatePrediction {
        SurrogatePrediction {
            res: self.res.predict(point).expect("dimension checked at fit"),
            tps: self.tps.predict(point).expect("dimension checked at fit"),
            lat: self.lat.predict(point).expect("dimension checked at fit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> GpTaskModel {
        // res = x, tps = 100 - 50x, lat = 10 + 5x over a 1-D grid.
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let res: Vec<f64> = points.iter().map(|p| 80.0 * p[0] + 10.0).collect();
        let tps: Vec<f64> = points.iter().map(|p| 100.0 - 50.0 * p[0]).collect();
        let lat: Vec<f64> = points.iter().map(|p| 10.0 + 5.0 * p[0]).collect();
        GpTaskModel::fit(&points, &res, &tps, &lat, &GpConfig::fixed()).unwrap()
    }

    #[test]
    fn predictions_track_the_training_signal() {
        let m = toy_model();
        let lo = m.predict(&[0.05]);
        let hi = m.predict(&[0.95]);
        // Standardized res increases with x, tps decreases, lat increases.
        assert!(lo.res.mean < hi.res.mean);
        assert!(lo.tps.mean > hi.tps.mean);
        assert!(lo.lat.mean < hi.lat.mean);
    }

    #[test]
    fn scalers_invert_to_raw_units() {
        let m = toy_model();
        let p = m.predict(&[0.5]);
        let raw_res = m.scalers.res.inverse(p.res.mean);
        assert!((raw_res - 50.0).abs() < 8.0, "raw res {raw_res}");
    }

    #[test]
    fn n_reports_observation_count() {
        assert_eq!(toy_model().n(), 10);
    }
}
