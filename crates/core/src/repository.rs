//! The data repository (§4): meta-features and observation histories of past
//! tuning tasks, from which base-learners are built.
//!
//! The paper's repository holds 34 past tasks — 17 workloads × 2 hardware
//! environments, 6 400 observations total — each a set of
//! `(θ, f_res, f_tps, f_lat)` tuples plus a workload meta-feature.

use crate::meta::BaseLearner;
use crate::problem::ResourceKind;
use crate::surrogate::GpTaskModel;
use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms};
use gp::{GpConfig, InducingSelector, SparseGpConfig};
use workload::WorkloadCharacterizer;

/// When and how a base-task history is fitted sparsely instead of densely.
///
/// A repository in the paper's regime holds a few hundred observations per
/// task; a cloud vendor's holds thousands. Above `dense_obs_threshold`
/// observations the dense `O(n^3)` fit is replaced by an inducing-point
/// sparse fit over `n_inducing` deterministically chosen points
/// (`O(n m^2)`), so histories of any size stay affordable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogatePolicy {
    /// Histories strictly larger than this fit sparsely.
    pub dense_obs_threshold: usize,
    /// Inducing-point budget for sparse fits.
    pub n_inducing: usize,
    /// Inducing-point selection strategy.
    pub selector: InducingSelector,
}

impl Default for SurrogatePolicy {
    fn default() -> Self {
        SurrogatePolicy {
            dense_obs_threshold: 256,
            n_inducing: 64,
            selector: InducingSelector::GreedyFarthest,
        }
    }
}

/// One stored observation of a historical task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskObservation {
    /// Normalized knob point.
    pub point: Vec<f64>,
    /// Raw resource-objective value.
    pub res: f64,
    /// Raw throughput.
    pub tps: f64,
    /// Raw p99 latency (ms).
    pub lat: f64,
    /// Internal metrics vector (for OtterTune-style mapping).
    pub metrics: Vec<f64>,
}

/// A complete historical tuning task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Unique label, conventionally `workload@instance`.
    pub task_id: String,
    /// Workload name.
    pub workload: String,
    /// Hardware environment.
    pub instance: InstanceType,
    /// Resource the task tuned.
    pub resource: ResourceKind,
    /// Knob names of the native knob space (order = native point order).
    pub knob_names: Vec<String>,
    /// Identity of the search space the points live in
    /// ([`crate::problem::SpaceInfo::id`]): `"native"` for untransformed
    /// tasks, a transform id string otherwise. Meta-transfer requires both
    /// the knob names *and* this id to match — low-dimensional coordinates
    /// from different random projections are not comparable.
    pub space_id: String,
    /// Workload meta-feature (§6.2).
    pub meta_feature: Vec<f64>,
    /// Observation history.
    pub observations: Vec<TaskObservation>,
}

impl TaskRecord {
    /// Collects a fresh task record by LHS-sampling `n` configurations on a
    /// simulated DBMS (how the experiment harnesses bootstrap the repository).
    pub fn collect(
        dbms: &mut SimulatedDbms,
        knob_set: &KnobSet,
        resource: ResourceKind,
        characterizer: &WorkloadCharacterizer,
        n: usize,
        seed: u64,
    ) -> TaskRecord {
        let meta_feature = characterizer.embed_workload(dbms.workload(), seed).probs;
        let workload_name = dbms.workload().name.clone();
        let instance = dbms.instance();
        let base = Configuration::dba_default();
        let mut observations = Vec::with_capacity(n + 1);
        // Always include the default point (it anchors the SLA semantics)
        // plus the full `n` LHS samples: `n + 1` observations total.
        let mut points = vec![knob_set.default_point()];
        points.extend(crate::lhs::latin_hypercube(n, knob_set.dim(), seed));
        for point in points {
            let config = knob_set.to_configuration(&point, &base);
            let obs = dbms.evaluate(&config);
            observations.push(TaskObservation {
                point,
                res: resource.value(&obs),
                tps: obs.tps,
                lat: obs.p99_ms,
                metrics: obs.internal.to_vec(),
            });
        }
        TaskRecord {
            task_id: format!("{}@{}", workload_name, instance.name()),
            workload: workload_name,
            instance,
            resource,
            knob_names: knob_set.names().to_vec(),
            space_id: "native".to_string(),
            meta_feature,
            observations,
        }
    }

    /// Fits this task's frozen base-learner, always densely.
    pub fn to_base_learner(&self, config: &GpConfig) -> Result<BaseLearner, gp::GpError> {
        self.to_base_learner_with_policy(
            config,
            &SurrogatePolicy { dense_obs_threshold: usize::MAX, ..Default::default() },
        )
    }

    /// Fits this task's frozen base-learner, switching to an inducing-point
    /// sparse fit when the history exceeds `policy.dense_obs_threshold`.
    pub fn to_base_learner_with_policy(
        &self,
        config: &GpConfig,
        policy: &SurrogatePolicy,
    ) -> Result<BaseLearner, gp::GpError> {
        let points: Vec<Vec<f64>> = self.observations.iter().map(|o| o.point.clone()).collect();
        let res: Vec<f64> = self.observations.iter().map(|o| o.res).collect();
        let tps: Vec<f64> = self.observations.iter().map(|o| o.tps).collect();
        let lat: Vec<f64> = self.observations.iter().map(|o| o.lat).collect();
        let model = if points.len() > policy.dense_obs_threshold {
            trace::count("repository.fit.sparse", 1);
            let sparse_cfg = SparseGpConfig {
                n_inducing: policy.n_inducing,
                selector: policy.selector,
                gp: config.clone(),
            };
            GpTaskModel::fit_sparse(&points, &res, &tps, &lat, &sparse_cfg)?
        } else {
            trace::count("repository.fit.dense", 1);
            GpTaskModel::fit(&points, &res, &tps, &lat, config)?
        };
        Ok(BaseLearner {
            task_id: self.task_id.clone(),
            workload: self.workload.clone(),
            instance: self.instance,
            meta_feature: self.meta_feature.clone(),
            promising_point: self.promising_point(),
            model,
        })
    }

    /// The best stored point that met this task's own SLA (taken relative to
    /// the first observation, which `collect` pins to the default
    /// configuration), with the usual 5 % tolerance.
    pub fn promising_point(&self) -> Option<Vec<f64>> {
        let first = self.observations.first()?;
        let (tps_floor, lat_ceiling) = (first.tps * 0.95, first.lat * 1.05);
        // Non-finite objectives are filtered and the minimum is taken under a
        // total order: no stored history, however corrupt, panics this
        // ranking (a NaN tps/lat already fails the SLA comparisons).
        self.observations
            .iter()
            .filter(|o| o.res.is_finite() && o.tps >= tps_floor && o.lat <= lat_ceiling)
            .min_by(|a, b| a.res.total_cmp(&b.res))
            .map(|o| o.point.clone())
    }

    /// Mean internal-metrics vector over the task's observations (OtterTune's
    /// workload signature).
    pub fn mean_metrics(&self) -> Vec<f64> {
        if self.observations.is_empty() {
            return Vec::new();
        }
        let dim = self.observations[0].metrics.len();
        let mut acc = vec![0.0; dim];
        for o in &self.observations {
            for (a, v) in acc.iter_mut().zip(&o.metrics) {
                *a += v;
            }
        }
        let n = self.observations.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

/// The repository of historical tasks.
#[derive(Debug, Clone, Default)]
pub struct DataRepository {
    tasks: Vec<TaskRecord>,
}

impl DataRepository {
    /// An empty repository.
    pub fn new() -> Self {
        DataRepository::default()
    }

    /// Adds a completed task.
    pub fn add(&mut self, task: TaskRecord) {
        self.tasks.push(task);
    }

    /// All stored tasks.
    pub fn tasks(&self) -> &[TaskRecord] {
        &self.tasks
    }

    /// Number of stored tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total observations across tasks.
    pub fn n_observations(&self) -> usize {
        self.tasks.iter().map(|t| t.observations.len()).sum()
    }

    /// Builds base-learners for every task matching `keep`.
    ///
    /// The evaluation's three settings map to filters: *original* keeps all,
    /// *varying workloads* drops the target workload's tasks, *varying
    /// hardware* drops tasks from the target's instance.
    pub fn base_learners(
        &self,
        config: &GpConfig,
        keep: impl FnMut(&TaskRecord) -> bool,
    ) -> Vec<BaseLearner> {
        self.base_learners_with_policy(
            config,
            &SurrogatePolicy { dense_obs_threshold: usize::MAX, ..Default::default() },
            keep,
        )
    }

    /// [`DataRepository::base_learners`] with a sparse-fit policy: large
    /// histories become inducing-point sparse learners instead of dense ones.
    pub fn base_learners_with_policy(
        &self,
        config: &GpConfig,
        policy: &SurrogatePolicy,
        mut keep: impl FnMut(&TaskRecord) -> bool,
    ) -> Vec<BaseLearner> {
        self.tasks
            .iter()
            .filter(|t| keep(t))
            .filter_map(|t| t.to_base_learner_with_policy(config, policy).ok())
            .collect()
    }

    /// Serializes to pretty JSON. The output is byte-stable: identical
    /// repositories always render to identical text (insertion-ordered
    /// fields, shortest round-trip floats), which the end-to-end
    /// determinism test relies on.
    pub fn to_json(&self) -> Result<String, minjson::JsonError> {
        minjson::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<Self, minjson::JsonError> {
        minjson::from_str(json)
    }

    /// Saves to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(std::io::Error::other)
    }
}

minjson::json_struct!(TaskObservation { point, res, tps, lat, metrics });
minjson::json_struct!(TaskRecord {
    task_id,
    workload,
    instance,
    resource,
    knob_names,
    space_id,
    meta_feature,
    observations,
});
minjson::json_struct!(DataRepository { tasks });

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::WorkloadSpec;

    fn sample_record() -> TaskRecord {
        let characterizer = WorkloadCharacterizer::train_default(1);
        let mut dbms = SimulatedDbms::new(InstanceType::B, WorkloadSpec::twitter(), 3);
        TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            12,
            5,
        )
    }

    #[test]
    fn collect_produces_default_plus_lhs_points() {
        // "LHS-sampling n configurations" means exactly that: the default
        // anchor plus n LHS points, n + 1 observations total (the historical
        // off-by-one silently dropped one LHS sample).
        let rec = sample_record();
        assert_eq!(rec.observations.len(), 12 + 1);
        assert_eq!(rec.task_id, "Twitter@B");
        assert_eq!(rec.knob_names.len(), 3);
        // First observation is the default point.
        let def = KnobSet::case_study().default_point();
        assert_eq!(rec.observations[0].point, def);
        // The remaining 12 are the LHS samples, none the default.
        assert_eq!(rec.observations.iter().skip(1).filter(|o| o.point != def).count(), 12);
        assert!(!rec.meta_feature.is_empty());
    }

    #[test]
    fn base_learner_fits_from_record() {
        let rec = sample_record();
        let learner = rec.to_base_learner(&GpConfig::fixed()).unwrap();
        assert_eq!(learner.task_id, "Twitter@B");
        assert_eq!(learner.model.n(), 13);
    }

    #[test]
    fn repository_roundtrips_through_json() {
        let mut repo = DataRepository::new();
        repo.add(sample_record());
        let json = repo.to_json().unwrap();
        let back = DataRepository::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.tasks()[0], repo.tasks()[0]);
    }

    #[test]
    fn non_finite_values_are_rejected_at_serialization() {
        // JSON has no NaN/Infinity; the serializer must fail loudly rather
        // than write an unparseable repository.
        let mut rec = sample_record();
        rec.observations[0].tps = f64::NAN;
        let mut repo = DataRepository::new();
        repo.add(rec);
        assert!(repo.to_json().is_err(), "NaN must not serialize");

        let mut rec2 = sample_record();
        rec2.observations[1].res = f64::INFINITY;
        let mut repo2 = DataRepository::new();
        repo2.add(rec2);
        assert!(repo2.to_json().is_err(), "infinity must not serialize");
    }

    #[test]
    fn non_finite_tokens_are_rejected_at_parse() {
        for bad in ["{\"tasks\": [NaN]}", "{\"tasks\": Infinity}", "{\"tasks\": [-Infinity]}"] {
            assert!(DataRepository::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn extreme_floats_roundtrip_exactly() {
        // Knob bounds and observations span many orders of magnitude; the
        // shortest-round-trip float formatting must preserve every bit.
        let mut rec = sample_record();
        rec.observations[0].point = vec![0.1, 2.0 / 3.0, 1e-17, 1.0 - f64::EPSILON, 4e18];
        rec.observations[0].res = f64::MIN_POSITIVE;
        rec.observations[0].tps = 1e308;
        rec.observations[0].lat = 0.000_123_456_789_012_345_6;
        let mut repo = DataRepository::new();
        repo.add(rec);
        let back = DataRepository::from_json(&repo.to_json().unwrap()).unwrap();
        assert_eq!(back.tasks()[0], repo.tasks()[0]);
    }

    #[test]
    fn filters_implement_the_evaluation_settings() {
        let mut repo = DataRepository::new();
        let rec = sample_record();
        repo.add(rec.clone());
        let mut other = rec.clone();
        other.task_id = "Twitter@A".into();
        other.instance = InstanceType::A;
        repo.add(other);

        let all = repo.base_learners(&GpConfig::fixed(), |_| true);
        assert_eq!(all.len(), 2);
        // Varying hardware: exclude instance B.
        let vh = repo.base_learners(&GpConfig::fixed(), |t| t.instance != InstanceType::B);
        assert_eq!(vh.len(), 1);
        // Varying workloads: exclude the Twitter workload entirely.
        let vw = repo.base_learners(&GpConfig::fixed(), |t| t.workload != "Twitter");
        assert_eq!(vw.len(), 0);
    }

    #[test]
    fn mean_metrics_averages_observations() {
        let rec = sample_record();
        let m = rec.mean_metrics();
        assert_eq!(m.len(), dbsim::InternalMetrics::DIM);
        assert!(m.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn promising_point_never_panics_on_any_observation_history() {
        use propcheck::{check, Config};
        // Property: no observation history — including NaN/±inf in any field,
        // empty histories, and all-infeasible histories — panics the ranking.
        // When a finite feasible minimum exists, it is returned.
        check(
            "promising_point_never_panics_on_any_observation_history",
            Config::default().cases(200).seed(0xBAD_F10A7),
            |g| {
                let n = g.usize_in(0, 12);
                let special = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0];
                let value = |g: &mut propcheck::Gen| -> f64 {
                    if g.flag() {
                        special[g.usize_in(0, special.len() - 1)]
                    } else {
                        g.unit() * 200.0
                    }
                };
                let observations: Vec<TaskObservation> = (0..n)
                    .map(|_| TaskObservation {
                        point: vec![g.unit(), g.unit()],
                        res: value(g),
                        tps: value(g),
                        lat: value(g),
                        metrics: vec![value(g); 3],
                    })
                    .collect();
                let rec = TaskRecord {
                    task_id: "fuzz@A".into(),
                    workload: "fuzz".into(),
                    instance: InstanceType::A,
                    resource: ResourceKind::Cpu,
                    knob_names: vec!["a".into(), "b".into()],
                    space_id: "native".into(),
                    meta_feature: vec![0.5],
                    observations,
                };
                let picked = rec.promising_point();
                if let (Some(point), Some(first)) = (&picked, rec.observations.first()) {
                    // The pick satisfies the record's own SLA and has a
                    // finite objective.
                    let chosen = rec
                        .observations
                        .iter()
                        .find(|o| &o.point == point)
                        .expect("picked point comes from the history");
                    propcheck::prop_assert!(chosen.res.is_finite());
                    propcheck::prop_assert!(chosen.tps >= first.tps * 0.95);
                    propcheck::prop_assert!(chosen.lat <= first.lat * 1.05);
                }
                Ok(())
            },
        );
    }
}
