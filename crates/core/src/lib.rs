//! The ResTune tuner: resource-oriented DBMS knob tuning as constrained
//! Bayesian optimization, boosted by meta-learning.
//!
//! Paper: *ResTune: Resource Oriented Tuning Boosted by Meta-Learning for
//! Cloud Databases*, SIGMOD 2021. Module map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §3 problem statement (Eq. 1) | [`problem`] |
//! | §5.1 multi-output GP surrogate | [`surrogate`] |
//! | §5.2 constrained expected improvement (Eqs. 2–5) | [`acquisition`] |
//! | §6.1 scale unification | [`scale`] |
//! | §6.3 meta-learner ensemble (Eqs. 6–7) | [`meta`] |
//! | §6.4.1 static weights (Eq. 8) | [`meta::static_weights`] |
//! | §6.4.2 dynamic ranking-loss weights (Eq. 9) | [`meta::dynamic_weights`] |
//! | §6.4.3 adaptive weight schema | [`tuner`] |
//! | §4 workflow, convergence, data repository | [`tuner`], [`repository`] |
//! | Fig. 5 apply-and-replay evaluator | [`engine`] |
//! | Fig. 5 iteration pipeline (strategy ↔ loop) | [`proposer`], [`driver`] |
//! | §4/§7.5 fleet-scale multi-tenant deployment | [`fleet`] |
//! | §7.3 SHAP knob attribution (Fig. 7) | [`shap`] |
//! | §7.6 TCO analysis (Tables 8–9) | [`tco`] |

// Indexed loops are intentional in the numeric kernels below: they mirror
// the textbook formulations and keep bounds explicit.
#![allow(clippy::needless_range_loop)]

pub mod acquisition;
pub mod advisor;
pub mod diag;
pub mod drift;
pub mod driver;
pub mod engine;
pub mod fleet;
pub mod lhs;
pub mod meta;
pub mod problem;
pub mod proposer;
pub mod repository;
pub mod resilience;
pub mod scale;
pub mod shap;
pub mod space;
pub mod surrogate;
pub mod tco;
pub mod tuner;

pub use acquisition::{AcquisitionKind, ConstrainedExpectedImprovement};
pub use diag::{DriftDiag, FitPath, TunerHealth, HEALTH_EVENT};
pub use drift::{
    DriftConfig, DriftController, DriftEvent, FleetSealSink, LocalSealSink, RestartPolicy,
    SealSink,
};
pub use driver::{BoxProposer, Proposal, ProposalTiming, Proposer, TuningDriver};
pub use engine::{EngineSettings, EvalEngine, HistoryView};
pub use fleet::{
    mix_seed, FleetConfig, FleetOutcome, FleetService, ShardedStore, StoreSnapshot, Tenant,
    TenantResult,
};
pub use meta::{BaseLearner, MetaLearner, WeightStrategy};
pub use problem::{ResourceKind, SlaConstraints, SpaceInfo, TuningProblem};
pub use proposer::RestuneProposer;
pub use repository::{DataRepository, TaskObservation, TaskRecord};
pub use resilience::{FailureCounts, FailureKind, ReplayPolicy};
pub use scale::Standardizer;
pub use space::{IdentityTransform, Projection, RandomProjection, SpacePipeline, SpaceTransform};
pub use surrogate::{SurrogatePrediction, TaskSurrogate};
pub use tuner::{IterationRecord, RestuneConfig, TuningEnvironment, TuningOutcome, TuningSession};
