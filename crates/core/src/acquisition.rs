//! Acquisition functions (§5.2): Expected Improvement and the paper's
//! Constrained Expected Improvement (CEI, Eq. 5), plus the candidate-based
//! optimizer that proposes the next configuration.

use crate::surrogate::SurrogatePrediction;
use gp::{normal_cdf, normal_pdf};
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// Which acquisition the tuner optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquisitionKind {
    /// Plain EI on the objective (iTuned — ignores the SLA).
    ExpectedImprovement,
    /// CEI: EI weighted by the probability of satisfying both constraints.
    ConstrainedExpectedImprovement,
    /// The simple alternative the paper's related work describes (§2):
    /// attach a penalty to the objective when constraints are violated, then
    /// run plain EI on the penalized objective. Used by the acquisition
    /// ablation to show why CEI's probabilistic weighting wins.
    PenalizedExpectedImprovement,
}

/// Closed-form Expected Improvement for *minimization*:
/// `EI(θ) = E[max(0, f_best - f(θ))]` (Eq. 2).
pub fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    (best - mean) * normal_cdf(z) + std * normal_pdf(z)
}

/// The CEI acquisition (Eq. 5): `Pr[tps ≥ λ'_tps] · Pr[lat ≤ λ'_lat] · EI`.
///
/// Thresholds are in the same (standardized) units as the surrogate's
/// predictions.
#[derive(Debug, Clone, Copy)]
pub struct ConstrainedExpectedImprovement {
    /// Best *feasible* objective value observed so far (standardized).
    /// `None` until a feasible point exists — then CEI degenerates to pure
    /// feasibility search.
    pub best_feasible: Option<f64>,
    /// Re-scaled throughput floor λ'_tps.
    pub tps_floor: f64,
    /// Re-scaled latency ceiling λ'_lat.
    pub lat_ceiling: f64,
}

impl ConstrainedExpectedImprovement {
    /// Probability that `point` satisfies both SLA constraints under the
    /// surrogate — the expectation of the feasibility indicator Δ(θ) (Eq. 4).
    pub fn feasibility_probability(&self, pred: &SurrogatePrediction) -> f64 {
        let p_tps = if pred.tps.std_dev() <= 1e-12 {
            if pred.tps.mean >= self.tps_floor {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - normal_cdf((self.tps_floor - pred.tps.mean) / pred.tps.std_dev())
        };
        let p_lat = if pred.lat.std_dev() <= 1e-12 {
            if pred.lat.mean <= self.lat_ceiling {
                1.0
            } else {
                0.0
            }
        } else {
            normal_cdf((self.lat_ceiling - pred.lat.mean) / pred.lat.std_dev())
        };
        p_tps * p_lat
    }

    /// The CEI value at a prediction.
    pub fn value(&self, pred: &SurrogatePrediction) -> f64 {
        let pf = self.feasibility_probability(pred);
        match self.best_feasible {
            Some(best) => pf * expected_improvement(pred.res.mean, pred.res.std_dev(), best),
            // No feasible incumbent yet: maximize the probability of finding
            // one (standard CBO practice when the feasible set is unknown).
            None => pf,
        }
    }
}

/// Configuration for the acquisition optimizer.
#[derive(Debug, Clone, Copy)]
pub struct AcquisitionOptimizer {
    /// Uniform random candidates per round.
    pub n_candidates: usize,
    /// Local-perturbation candidates around each of the top incumbents.
    pub n_local: usize,
    /// Perturbation scale for local candidates.
    pub local_sigma: f64,
}

impl Default for AcquisitionOptimizer {
    fn default() -> Self {
        AcquisitionOptimizer { n_candidates: 1500, n_local: 200, local_sigma: 0.08 }
    }
}

impl AcquisitionOptimizer {
    /// Draws the full candidate set from the seeded RNG: `n_candidates`
    /// uniform points over `[0,1]^d`, then `n_local` Gaussian perturbations
    /// cycling through `anchors`. Generation is serial and consumes the RNG
    /// stream in a fixed order, so scoring — which never touches the RNG —
    /// can be batched or parallelized freely without moving the proposal.
    fn generate_candidates(&self, dim: usize, anchors: &[Vec<f64>], seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_local = if anchors.is_empty() { 0 } else { self.n_local };
        let mut candidates = Vec::with_capacity(self.n_candidates + n_local);
        for _ in 0..self.n_candidates {
            candidates.push((0..dim).map(|_| rng.random::<f64>()).collect());
        }
        for i in 0..n_local {
            let anchor = &anchors[i % anchors.len()];
            candidates.push(
                anchor
                    .iter()
                    .map(|v| {
                        let z = gp::rand_util::standard_normal(&mut rng);
                        (v + self.local_sigma * z).clamp(0.0, 1.0)
                    })
                    .collect(),
            );
        }
        candidates
    }

    /// Argmax over scored candidates with first-index tie-breaking (a strict
    /// `>` scan), matching the incremental best-tracking the serial path
    /// always used.
    fn select(mut candidates: Vec<Vec<f64>>, scores: &[f64]) -> Vec<f64> {
        debug_assert_eq!(candidates.len(), scores.len());
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, &s) in scores.iter().enumerate() {
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        candidates.swap_remove(best)
    }

    /// Maximizes `score` over `[0,1]^d` via random search plus local
    /// refinement around `anchors` (typically the incumbent best points).
    pub fn optimize(
        &self,
        dim: usize,
        anchors: &[Vec<f64>],
        seed: u64,
        mut score: impl FnMut(&[f64]) -> f64,
    ) -> Vec<f64> {
        let candidates = self.generate_candidates(dim, anchors, seed);
        trace::count("acq.candidates_scored", candidates.len() as u64);
        let span = trace::span!("score_candidates", n = candidates.len());
        let scores: Vec<f64> = candidates.iter().map(|p| score(p)).collect();
        let _ = span.finish_s();
        Self::select(candidates, &scores)
    }

    /// [`AcquisitionOptimizer::optimize`] over a *batched* scorer: the
    /// candidate set is pre-generated serially (same RNG stream as
    /// `optimize`), then scored in chunks — on scoped threads when
    /// `parallel` — and the argmax is chosen with index tie-breaking.
    /// Returns the same point as `optimize` for any scorer where
    /// `score_batch(pts)[i] == score(&pts[i])`.
    pub fn optimize_batch(
        &self,
        dim: usize,
        anchors: &[Vec<f64>],
        seed: u64,
        parallel: bool,
        score_batch: impl Fn(&[Vec<f64>]) -> Vec<f64> + Sync,
    ) -> Vec<f64> {
        let candidates = self.generate_candidates(dim, anchors, seed);
        trace::count("acq.candidates_scored", candidates.len() as u64);
        // Chunk-scoring spans re-enter the caller's context so parallel
        // scoring aggregates under the ambient `recommendation` path.
        let trace_ctx = trace::current_context();
        let scores: Vec<f64> = if parallel {
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            let chunk = candidates.len().div_ceil(threads).max(1);
            let score_batch = &score_batch;
            let trace_ctx = &trace_ctx;
            std::thread::scope(|scope| {
                let handles: Vec<_> = candidates
                    .chunks(chunk)
                    .map(|c| {
                        scope.spawn(move || {
                            let _trace_guard = trace_ctx.enter();
                            let span = trace::span!("score_candidates", n = c.len());
                            let scores = score_batch(c);
                            let _ = span.finish_s();
                            scores
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("scoring thread panicked"))
                    .collect()
            })
        } else {
            let span = trace::span!("score_candidates", n = candidates.len());
            let scores = score_batch(&candidates);
            let _ = span.finish_s();
            scores
        };
        assert_eq!(scores.len(), candidates.len(), "scorer must return one score per candidate");
        Self::select(candidates, &scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp::Prediction;

    fn pred(res: (f64, f64), tps: (f64, f64), lat: (f64, f64)) -> SurrogatePrediction {
        SurrogatePrediction {
            res: Prediction { mean: res.0, variance: res.1 * res.1 },
            tps: Prediction { mean: tps.0, variance: tps.1 * tps.1 },
            lat: Prediction { mean: lat.0, variance: lat.1 * lat.1 },
        }
    }

    #[test]
    fn ei_matches_monte_carlo() {
        let (mean, std, best) = (0.2, 0.7, 0.5);
        let analytic = expected_improvement(mean, std, best);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mc: f64 = (0..n)
            .map(|_| {
                let z = gp::rand_util::standard_normal(&mut rng);
                (best - (mean + std * z)).max(0.0)
            })
            .sum::<f64>()
            / n as f64;
        assert!((analytic - mc).abs() < 0.01, "analytic {analytic} mc {mc}");
    }

    #[test]
    fn ei_is_zero_when_certainly_worse() {
        assert_eq!(expected_improvement(5.0, 0.0, 1.0), 0.0);
        assert!(expected_improvement(5.0, 0.1, 1.0) < 1e-6);
    }

    #[test]
    fn cei_is_bounded_by_ei() {
        let cei = ConstrainedExpectedImprovement {
            best_feasible: Some(0.5),
            tps_floor: 0.0,
            lat_ceiling: 0.0,
        };
        for p in [
            pred((0.0, 0.5), (0.5, 0.3), (-0.5, 0.3)),
            pred((-1.0, 0.2), (-2.0, 0.3), (2.0, 0.3)),
            pred((0.4, 0.9), (0.0, 1.0), (0.0, 1.0)),
        ] {
            let ei = expected_improvement(p.res.mean, p.res.std_dev(), 0.5);
            let v = cei.value(&p);
            assert!(v >= -1e-12 && v <= ei + 1e-12, "cei {v} vs ei {ei}");
        }
    }

    #[test]
    fn infeasible_regions_score_near_zero() {
        let cei = ConstrainedExpectedImprovement {
            best_feasible: Some(0.0),
            tps_floor: 0.0,
            lat_ceiling: 0.0,
        };
        // tps far below the floor with small uncertainty.
        let p = pred((-3.0, 0.3), (-4.0, 0.2), (0.0, 0.2));
        assert!(cei.value(&p) < 1e-6);
    }

    #[test]
    fn feasibility_probability_factorizes() {
        let cei = ConstrainedExpectedImprovement {
            best_feasible: None,
            tps_floor: 0.0,
            lat_ceiling: 0.0,
        };
        // Exactly at both bounds with symmetric uncertainty: p = 0.5 * 0.5.
        let p = pred((0.0, 1.0), (0.0, 1.0), (0.0, 1.0));
        assert!((cei.feasibility_probability(&p) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn without_incumbent_cei_seeks_feasibility() {
        let cei = ConstrainedExpectedImprovement {
            best_feasible: None,
            tps_floor: 0.0,
            lat_ceiling: 0.0,
        };
        let likely = pred((0.0, 0.1), (2.0, 0.5), (-2.0, 0.5));
        let unlikely = pred((-5.0, 0.1), (-2.0, 0.5), (2.0, 0.5));
        assert!(cei.value(&likely) > cei.value(&unlikely));
    }

    #[test]
    fn optimizer_finds_a_known_peak() {
        let opt = AcquisitionOptimizer::default();
        // Score peaks at (0.7, 0.3).
        let best = opt.optimize(2, &[], 3, |p| {
            -((p[0] - 0.7) * (p[0] - 0.7) + (p[1] - 0.3) * (p[1] - 0.3))
        });
        assert!((best[0] - 0.7).abs() < 0.08, "{best:?}");
        assert!((best[1] - 0.3).abs() < 0.08, "{best:?}");
    }

    #[test]
    fn optimizer_uses_anchors_for_local_refinement() {
        let opt = AcquisitionOptimizer { n_candidates: 10, n_local: 400, local_sigma: 0.02 };
        // A very narrow peak near the anchor that random search would miss.
        let anchor = vec![0.912, 0.118];
        let best = opt.optimize(2, std::slice::from_ref(&anchor), 5, |p| {
            let d2 = (p[0] - 0.91) * (p[0] - 0.91) + (p[1] - 0.12) * (p[1] - 0.12);
            (-d2 * 2000.0).exp()
        });
        let d = ((best[0] - 0.91).powi(2) + (best[1] - 0.12).powi(2)).sqrt();
        assert!(d < 0.05, "local refinement missed the peak: {best:?}");
    }

    #[test]
    fn batched_optimize_matches_serial_optimize_bitwise() {
        let opt = AcquisitionOptimizer { n_candidates: 250, n_local: 90, local_sigma: 0.05 };
        let score = |p: &[f64]| {
            -((p[0] - 0.42) * (p[0] - 0.42)) - (p[1] - 0.77).abs() + (p[2] * 3.0).sin()
        };
        let anchors = vec![vec![0.4, 0.8, 0.5], vec![0.1, 0.1, 0.9]];
        for seed in [0, 3, 19] {
            let serial = opt.optimize(3, &anchors, seed, score);
            for parallel in [false, true] {
                let batched = opt.optimize_batch(3, &anchors, seed, parallel, |pts| {
                    pts.iter().map(|p| score(p)).collect()
                });
                assert_eq!(
                    serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "seed {seed} parallel {parallel}"
                );
            }
        }
    }

    #[test]
    fn tied_scores_pick_the_first_candidate() {
        // Index tie-breaking is part of the determinism contract: a constant
        // score must select the very first generated candidate on every path.
        let opt = AcquisitionOptimizer { n_candidates: 40, n_local: 20, local_sigma: 0.1 };
        let anchors = vec![vec![0.5, 0.5]];
        let first = opt.generate_candidates(2, &anchors, 8)[0].clone();
        let serial = opt.optimize(2, &anchors, 8, |_| 1.0);
        let batched = opt.optimize_batch(2, &anchors, 8, true, |pts| vec![1.0; pts.len()]);
        assert_eq!(serial, first);
        assert_eq!(batched, first);
    }
}
