//! The tuning run loop: a [`TuningDriver`] repeatedly asks a [`Proposer`]
//! for the next configuration point and hands it to the shared
//! [`EvalEngine`](crate::engine::EvalEngine) to apply, replay, and record.
//!
//! This is the paper's Fig. 5 control flow with the strategy factored out:
//! the *recommendation policy* (ResTune's meta-boosted CEI, OtterTune's
//! workload mapping, CDBTune's DDPG agent, a grid, …) is a `Proposer`;
//! everything that must be identical across methods for a fair §7
//! comparison (replay retries, failure penalties, incumbent/convergence
//! bookkeeping) lives in the engine. The driver owns the `iteration` trace
//! span, so every proposer's phase spans nest under the same root.

use crate::drift::{DriftController, DriftEvent};
use crate::engine::{EvalEngine, HistoryView, IterationRecord, TuningOutcome};

/// Proposal-side wall-clock breakdown (everything up to the replay; the
/// engine fills `replay_s` in). Fields mirror
/// [`IterationTiming`](crate::engine::IterationTiming).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProposalTiming {
    /// Meta-data processing (scale unification, meta-feature handling).
    pub meta_data_processing_s: f64,
    /// Model update (surrogate fits + weight learning, or agent training
    /// attributed pre-replay).
    pub model_update_s: f64,
    /// Subcomponent of `model_update_s`: target GP fits.
    pub gp_fit_s: f64,
    /// Subcomponent of `model_update_s`: ensemble weight learning.
    pub weight_update_s: f64,
    /// Knob recommendation (acquisition optimization / policy action).
    pub recommendation_s: f64,
}

/// One proposed evaluation: the point plus everything the record should
/// remember about how it was chosen.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Normalized point to apply and replay.
    pub point: Vec<f64>,
    /// Ensemble weights at recommendation time, when meta-learning was
    /// active.
    pub weights: Option<Vec<f64>>,
    /// Proposal-side timings.
    pub timing: ProposalTiming,
}

impl Proposal {
    /// A bare point with no weights and zero proposal-side timings (LHS
    /// bootstraps, grid cells).
    pub fn point(point: Vec<f64>) -> Self {
        Proposal { point, weights: None, timing: ProposalTiming::default() }
    }
}

/// A tuning strategy: proposes the next point from the observed history.
///
/// `propose` runs inside the driver's `iteration` span, so any spans it
/// opens (`model_update`, `recommendation`, …) nest under `iteration/…`
/// exactly as the paper's three-phase pipeline reads. `seed` is the
/// driver's per-iteration seed (`driver_seed + iter`, mixed); strategies
/// with their own published seeding schedule may ignore it.
pub trait Proposer {
    /// Picks the next point to evaluate.
    fn propose(&mut self, view: &HistoryView<'_>, iter: usize, seed: u64) -> Proposal;

    /// Hook run after the replay but before the record is committed —
    /// strategies that learn from the outcome (an RL agent's training step)
    /// do so here. Returns the wall-clock seconds of post-replay model
    /// update to *add* to the record's `model_update_s`, so nothing ever
    /// patches committed records in place.
    fn observe(&mut self, _view: &HistoryView<'_>, _record: &IterationRecord) -> f64 {
        0.0
    }

    /// Hook run when the driver's [`DriftController`] executed a warm
    /// restart: the strategy re-initializes whatever it conditions on the
    /// old epoch (ensemble weights, bootstrap plans, cached models). The
    /// default is a no-op — baselines without transfer state simply keep
    /// proposing against the reset engine view.
    fn on_drift(&mut self, _event: &DriftEvent) {}
}

/// A type-erased, sendable strategy: what the fleet scheduler moves between
/// pool workers when tenants run heterogeneous methods.
pub type BoxProposer = Box<dyn Proposer + Send>;

impl Proposer for BoxProposer {
    fn propose(&mut self, view: &HistoryView<'_>, iter: usize, seed: u64) -> Proposal {
        (**self).propose(view, iter, seed)
    }

    fn observe(&mut self, view: &HistoryView<'_>, record: &IterationRecord) -> f64 {
        (**self).observe(view, record)
    }

    fn on_drift(&mut self, event: &DriftEvent) {
        (**self).on_drift(event)
    }
}

/// The run loop tying a [`Proposer`] to an [`EvalEngine`].
pub struct TuningDriver<P> {
    engine: EvalEngine,
    proposer: P,
    seed: u64,
    /// Drift detector for dynamic-workload sessions; `None` (the default)
    /// leaves the loop byte-identical to pre-drift builds.
    drift: Option<DriftController>,
}

impl<P: Proposer> TuningDriver<P> {
    /// Builds a driver over an already-constructed engine.
    pub fn new(engine: EvalEngine, proposer: P, seed: u64) -> Self {
        TuningDriver { engine, proposer, seed, drift: None }
    }

    /// Installs a drift controller: after every committed iteration the
    /// controller may re-characterize the live workload and execute a warm
    /// restart (DESIGN.md §16).
    pub fn set_drift(&mut self, controller: DriftController) {
        self.drift = Some(controller);
    }

    /// The installed drift controller, if any.
    pub fn drift(&self) -> Option<&DriftController> {
        self.drift.as_ref()
    }

    /// Runs one iteration; returns the committed record.
    pub fn step(&mut self) -> IterationRecord {
        let iter = self.engine.iterations();
        let seed = self.seed.wrapping_add(iter as u64).wrapping_mul(0x9E37);
        // All wall-clock fields of `IterationTiming` are the `finish_s()`
        // values of spans opened here and inside the proposer — there is no
        // second stopwatch (DESIGN.md §10). `replay_s` alone stays
        // *simulated* seconds from the DBMS (part of the determinism
        // fingerprint).
        let iteration_span = trace::span!("iteration", iter = iter);
        let proposal = self.proposer.propose(&self.engine.view(), iter, seed);
        let mut record = self.engine.evaluate(proposal);
        record.timing.model_update_s += self.proposer.observe(&self.engine.view(), &record);
        self.engine.commit(record.clone());
        trace::count("loop.iterations", 1);
        // Post-commit drift check: a restart must see the committed record
        // (the sealed task includes it) and reaches the proposer before the
        // next `propose`. Taken out and put back so the controller can
        // borrow the engine and the proposer simultaneously.
        if let Some(mut controller) = self.drift.take() {
            if let Some(event) = controller.check(&mut self.engine, iter) {
                self.proposer.on_drift(&event);
            }
            self.drift = Some(controller);
        }
        let _ = iteration_span.finish_s();
        record
    }

    /// Runs `iterations` steps and summarizes (cheap mid-run snapshot —
    /// clones the history; prefer [`TuningDriver::into_outcome`] at end of
    /// run).
    pub fn run(&mut self, iterations: usize) -> TuningOutcome {
        for _ in 0..iterations {
            self.step();
        }
        self.engine.outcome()
    }

    /// Runs `iterations` steps and consumes the driver into the final
    /// outcome without cloning the history.
    pub fn run_into_outcome(mut self, iterations: usize) -> TuningOutcome {
        for _ in 0..iterations {
            self.step();
        }
        self.engine.into_outcome()
    }

    /// The evaluation engine.
    pub fn engine(&self) -> &EvalEngine {
        &self.engine
    }

    /// Mutable access to the engine (seeding history into the surrogate's
    /// training data).
    pub fn engine_mut(&mut self) -> &mut EvalEngine {
        &mut self.engine
    }

    /// The strategy.
    pub fn proposer(&self) -> &P {
        &self.proposer
    }

    /// Mutable access to the strategy.
    pub fn proposer_mut(&mut self) -> &mut P {
        &mut self.proposer
    }

    /// Consumes the driver into the final outcome without cloning the
    /// history.
    pub fn into_outcome(self) -> TuningOutcome {
        self.engine.into_outcome()
    }

    /// Decomposes the driver into its engine, strategy, and seed — the exact
    /// state [`TuningDriver::new`] reassembles, so callers can re-wrap the
    /// strategy (e.g. box it for a heterogeneous fleet) without perturbing
    /// the seed schedule. Any installed drift controller is dropped; use
    /// [`TuningDriver::boxed`] to type-erase without losing it.
    pub fn into_parts(self) -> (EvalEngine, P, u64) {
        (self.engine, self.proposer, self.seed)
    }
}

impl<P: Proposer + Send + 'static> TuningDriver<P> {
    /// Type-erases the strategy: the same driver, bit-for-bit, behind
    /// [`BoxProposer`] so heterogeneous tenants fit one fleet. The drift
    /// controller (when installed) rides along.
    pub fn boxed(self) -> TuningDriver<BoxProposer> {
        let TuningDriver { engine, proposer, seed, drift } = self;
        TuningDriver { engine, proposer: Box::new(proposer), seed, drift }
    }
}
