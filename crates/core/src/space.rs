//! Search-space transformations between the native knob space and the space
//! proposers actually search (DESIGN.md §14).
//!
//! ResTune tunes a pre-selected ~40-knob subspace, but a real engine exposes
//! hundreds of knobs and a dense GP cannot operate there. LlamaTune showed
//! that three cheap, model-agnostic adapters recover near-full-space quality
//! from a handful of search dimensions:
//!
//! * **Random linear projection** — the proposer searches `[0,1]^d_low`;
//!   candidates are lifted to the native unit hypercube by a seeded random
//!   linear map (sparse HeSBO counting-sketch or dense Gaussian/REMBO),
//!   clipped, and denormalized through the existing [`KnobSet`].
//! * **Quantization** — wide continuous/integer knobs are bucketized onto bin
//!   centers (the same bin-center convention `knobs.rs` uses for enums), so
//!   the surrogate sees a drastically smaller effective value set.
//! * **Hybrid knobs** — numeric knobs with a special sentinel value (e.g.
//!   `innodb_thread_concurrency = 0` meaning *unlimited*) get the sentinel
//!   biased-sampled: a configurable share of the unit interval maps to the
//!   sentinel, the rest rescales over the numeric range (LlamaTune §4.1).
//!
//! Everything downstream of the [`crate::driver::Proposer`] seam is
//! transform-agnostic: the engine lifts points at its evaluate/render seams,
//! history and surrogates live entirely in the low-dimensional space, and the
//! transform's [`SpaceTransform::id`] string becomes part of the task
//! identity so meta-learning never mixes observations from different spaces.
//!
//! Determinism: a transform is fully determined by `(kind, d_low, seed)` plus
//! the knob set, both maps are pure, and the identity transform is a true
//! no-op — same-seed sessions with `space: None` and with
//! [`IdentityTransform`] are bit-identical.

use std::sync::Arc;

use dbsim::{KnobKind, KnobSet};
use linalg::{Cholesky, Matrix};
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// A bidirectional map between the proposer-facing search space
/// `[0,1]^dim()` and the native knob space `[0,1]^native_dim()`.
///
/// `lift` must accept any finite input (projections overshoot; the engine
/// clamps at the [`KnobSet::to_configuration`] seam regardless) and must
/// return native coordinates in `[0,1]`. `restrict` is a pseudo-inverse used
/// to express externally known native points (the DBA default, warm-start
/// observations) in search coordinates; `lift(restrict(x))` is generally an
/// approximation of `x` except for the identity transform, where both maps
/// are exact no-ops.
pub trait SpaceTransform: std::fmt::Debug + Send + Sync {
    /// Search-space dimensionality (what proposers see).
    fn dim(&self) -> usize;

    /// Native knob-space dimensionality (what the `KnobSet` denormalizes).
    fn native_dim(&self) -> usize;

    /// Maps a search point to native unit-hypercube coordinates.
    fn lift(&self, low: &[f64]) -> Vec<f64>;

    /// Maps native unit-hypercube coordinates to a search point.
    fn restrict(&self, native: &[f64]) -> Vec<f64>;

    /// A stable identity string (`"native"`, `"hesbo:d16:s42|q64x109|hyb16b0.2"`, …).
    ///
    /// Task records persist this; meta-learning only transfers between tasks
    /// whose knob names *and* space id match, because a point's coordinates
    /// are meaningless under a different transform.
    fn id(&self) -> String;
}

/// The no-op transform: search space ≡ native space.
#[derive(Debug, Clone)]
pub struct IdentityTransform {
    dim: usize,
}

impl IdentityTransform {
    /// Identity over an `n`-dimensional space.
    pub fn new(dim: usize) -> Self {
        IdentityTransform { dim }
    }
}

impl SpaceTransform for IdentityTransform {
    fn dim(&self) -> usize {
        self.dim
    }

    fn native_dim(&self) -> usize {
        self.dim
    }

    fn lift(&self, low: &[f64]) -> Vec<f64> {
        assert_eq!(low.len(), self.dim, "identity lift dimension mismatch");
        low.to_vec()
    }

    fn restrict(&self, native: &[f64]) -> Vec<f64> {
        assert_eq!(native.len(), self.dim, "identity restrict dimension mismatch");
        native.to_vec()
    }

    fn id(&self) -> String {
        "native".to_string()
    }
}

/// Which random linear embedding to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Projection {
    /// Sparse counting-sketch embedding (HeSBO): every native dimension is a
    /// signed copy of one search dimension. Lifted points never leave the
    /// unit hypercube, so no clipping distortion.
    Hesbo,
    /// Dense Gaussian embedding (REMBO-style): `native = 0.5 + A·(low - 0.5)`
    /// with `A[i][j] ~ N(0, (2/√d)²)`, clipped to the unit hypercube.
    Gaussian,
}

impl Projection {
    fn tag(&self) -> &'static str {
        match self {
            Projection::Hesbo => "hesbo",
            Projection::Gaussian => "gauss",
        }
    }
}

/// A seeded random linear projection `[0,1]^d_low ↔ [0,1]^native`.
#[derive(Debug, Clone)]
pub struct RandomProjection {
    kind: Projection,
    d_low: usize,
    native_dim: usize,
    seed: u64,
    /// HeSBO: `h[i]` = which search dimension native dim `i` copies.
    h: Vec<usize>,
    /// HeSBO: sign per native dimension (+1.0 / -1.0).
    s: Vec<f64>,
    /// Gaussian: the `native_dim × d_low` embedding matrix.
    a: Option<Matrix>,
    /// Gaussian: Cholesky factor of `AᵀA + εI`, for the least-squares
    /// restriction.
    ata: Option<Cholesky>,
}

impl RandomProjection {
    /// Builds the projection. Panics if `d_low` is zero or exceeds
    /// `native_dim` (projecting *up* is never what you want).
    pub fn new(kind: Projection, d_low: usize, native_dim: usize, seed: u64) -> Self {
        assert!(d_low > 0, "projection needs at least one search dimension");
        assert!(
            d_low <= native_dim,
            "d_low ({d_low}) must not exceed the native dimension ({native_dim})"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ACE_5ACE_5ACE_5ACE);
        match kind {
            Projection::Hesbo => {
                let h: Vec<usize> =
                    (0..native_dim).map(|_| rng.random_range(0..d_low)).collect();
                let s: Vec<f64> =
                    (0..native_dim).map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 }).collect();
                RandomProjection { kind, d_low, native_dim, seed, h, s, a: None, ata: None }
            }
            Projection::Gaussian => {
                let sigma = 2.0 / (d_low as f64).sqrt();
                let a = Matrix::from_fn(native_dim, d_low, |_, _| {
                    sigma * xrand::dist::standard_normal(&mut rng)
                });
                let ata = Matrix::from_fn(d_low, d_low, |i, j| {
                    let mut acc = 0.0;
                    for r in 0..native_dim {
                        acc += a[(r, i)] * a[(r, j)];
                    }
                    acc + if i == j { 1e-9 } else { 0.0 }
                });
                let ata = Cholesky::factor_with_jitter(&ata)
                    .expect("AᵀA + εI is positive definite by construction");
                RandomProjection { kind, d_low, native_dim, seed, h: Vec::new(), s: Vec::new(), a: Some(a), ata: Some(ata) }
            }
        }
    }
}

impl SpaceTransform for RandomProjection {
    fn dim(&self) -> usize {
        self.d_low
    }

    fn native_dim(&self) -> usize {
        self.native_dim
    }

    fn lift(&self, low: &[f64]) -> Vec<f64> {
        assert_eq!(low.len(), self.d_low, "projection lift dimension mismatch");
        match self.kind {
            Projection::Hesbo => (0..self.native_dim)
                .map(|i| {
                    let v = low[self.h[i]];
                    let v = if self.s[i] > 0.0 { v } else { 1.0 - v };
                    v.clamp(0.0, 1.0)
                })
                .collect(),
            Projection::Gaussian => {
                let a = self.a.as_ref().expect("gaussian projection has a matrix");
                (0..self.native_dim)
                    .map(|i| {
                        let row = a.row(i);
                        let mut acc = 0.5;
                        for (j, &w) in row.iter().enumerate() {
                            acc += w * (low[j] - 0.5);
                        }
                        acc.clamp(0.0, 1.0)
                    })
                    .collect()
            }
        }
    }

    fn restrict(&self, native: &[f64]) -> Vec<f64> {
        assert_eq!(native.len(), self.native_dim, "projection restrict dimension mismatch");
        match self.kind {
            Projection::Hesbo => {
                // Group-average of the sign-adjusted native coordinates: the
                // least-squares solution for a counting-sketch embedding.
                let mut sum = vec![0.0; self.d_low];
                let mut count = vec![0usize; self.d_low];
                for i in 0..self.native_dim {
                    let v = if self.s[i] > 0.0 { native[i] } else { 1.0 - native[i] };
                    sum[self.h[i]] += v;
                    count[self.h[i]] += 1;
                }
                (0..self.d_low)
                    .map(|j| if count[j] == 0 { 0.5 } else { (sum[j] / count[j] as f64).clamp(0.0, 1.0) })
                    .collect()
            }
            Projection::Gaussian => {
                // Least squares: solve (AᵀA + εI) x = Aᵀ(native - 0.5).
                let a = self.a.as_ref().expect("gaussian projection has a matrix");
                let ata = self.ata.as_ref().expect("gaussian projection has a factor");
                let mut rhs = vec![0.0; self.d_low];
                for i in 0..self.native_dim {
                    let centered = native[i] - 0.5;
                    for (j, &w) in a.row(i).iter().enumerate() {
                        rhs[j] += w * centered;
                    }
                }
                let x = ata.solve(&rhs).expect("SPD solve cannot fail on finite input");
                x.iter().map(|v| (v + 0.5).clamp(0.0, 1.0)).collect()
            }
        }
    }

    fn id(&self) -> String {
        format!("{}:d{}:s{}", self.kind.tag(), self.d_low, self.seed)
    }
}

/// Per-native-dimension value bucketization.
///
/// A quantized dimension snaps its unit coordinate onto one of `bins` bin
/// centers — `(⌊u·b⌋ ∧ b-1 + 0.5) / b` — exactly the convention
/// `KnobKind::Enum` already uses, so denormalization downstream sees a small
/// stable value set. Idempotent: quantizing a bin center returns it.
#[derive(Debug, Clone)]
pub struct Quantization {
    /// `Some(bins)` per native dimension to snap; `None` leaves it alone.
    bins: Vec<Option<usize>>,
}

impl Quantization {
    /// Bucketizes every `Float`/`Integer` knob in `set` whose value count
    /// exceeds `bins` onto `bins` bin centers. Booleans, enums, small integer
    /// ranges, and hybrid knobs (their sentinel slice must stay exact) are
    /// left untouched.
    pub fn for_knob_set(set: &KnobSet, bins: usize) -> Self {
        assert!(bins >= 2, "quantization needs at least two bins");
        let per_dim = set
            .defs()
            .iter()
            .map(|def| {
                if def.special.is_some() {
                    return None;
                }
                match def.kind {
                    KnobKind::Float => Some(bins),
                    KnobKind::Integer => {
                        let values = (def.max - def.min).abs() + 1.0;
                        if values > bins as f64 {
                            Some(bins)
                        } else {
                            None
                        }
                    }
                    KnobKind::Boolean | KnobKind::Enum(_) => None,
                }
            })
            .collect();
        Quantization { bins: per_dim }
    }

    fn apply(&self, native: &mut [f64]) {
        debug_assert_eq!(native.len(), self.bins.len());
        for (v, b) in native.iter_mut().zip(&self.bins) {
            if let Some(b) = b {
                let b = *b as f64;
                let bin = (*v * b).floor().min(b - 1.0).max(0.0);
                *v = (bin + 0.5) / b;
            }
        }
    }

    /// How many dimensions are quantized.
    pub fn n_quantized(&self) -> usize {
        self.bins.iter().filter(|b| b.is_some()).count()
    }
}

/// One hybrid knob: `(native dim, sentinel unit value, bias)`.
///
/// The search coordinate `u` of the dimension is reinterpreted: `u < bias`
/// selects the sentinel exactly; otherwise `(u - bias) / (1 - bias)` rescales
/// over the full numeric range. The restriction maps the sentinel to the
/// center of its slice and everything else into the numeric slice.
#[derive(Debug, Clone, Copy)]
struct HybridDim {
    dim: usize,
    special_unit: f64,
    bias: f64,
}

/// The composed transform the engine installs: optional projection, then
/// hybrid-knob reinterpretation, then quantization, in native space.
///
/// Order matters and is fixed: projection output is clipped to the unit cube,
/// hybrid dims consume their biased slice *before* quantization (a quantized
/// sentinel would drift off the exact special value), and quantization snaps
/// last so the evaluated configuration is exactly a bin-center configuration.
#[derive(Debug, Clone)]
pub struct SpacePipeline {
    native_dim: usize,
    projection: Option<RandomProjection>,
    hybrid: Vec<HybridDim>,
    quantization: Option<Quantization>,
}

impl SpacePipeline {
    /// Composes a pipeline over `set` from the given stages.
    ///
    /// * `projection` — search in `d_low` dimensions instead of `set.dim()`.
    /// * `quantize_bins` — snap wide numeric knobs onto this many bin centers.
    /// * `hybrid_bias` — `Some(p)` reserves a `p` share of each hybrid knob's
    ///   unit interval for its sentinel (`p = 0.2` is LlamaTune's default);
    ///   `None` disables hybrid handling.
    pub fn new(
        set: &KnobSet,
        projection: Option<RandomProjection>,
        quantize_bins: Option<usize>,
        hybrid_bias: Option<f64>,
    ) -> Self {
        if let Some(p) = &projection {
            assert_eq!(
                p.native_dim(),
                set.dim(),
                "projection native dimension must match the knob set"
            );
        }
        let hybrid = match hybrid_bias {
            Some(bias) => {
                assert!((0.0..1.0).contains(&bias), "hybrid bias must be in [0, 1)");
                set.defs()
                    .iter()
                    .enumerate()
                    .filter_map(|(dim, def)| {
                        def.special.map(|s| HybridDim {
                            dim,
                            special_unit: def.normalize(s),
                            bias,
                        })
                    })
                    .collect()
            }
            None => Vec::new(),
        };
        let quantization = quantize_bins.map(|b| Quantization::for_knob_set(set, b));
        SpacePipeline { native_dim: set.dim(), projection, hybrid, quantization }
    }
}

impl SpaceTransform for SpacePipeline {
    fn dim(&self) -> usize {
        self.projection.as_ref().map(|p| p.dim()).unwrap_or(self.native_dim)
    }

    fn native_dim(&self) -> usize {
        self.native_dim
    }

    fn lift(&self, low: &[f64]) -> Vec<f64> {
        let mut native = match &self.projection {
            Some(p) => p.lift(low),
            None => {
                assert_eq!(low.len(), self.native_dim, "pipeline lift dimension mismatch");
                low.iter().map(|v| v.clamp(0.0, 1.0)).collect()
            }
        };
        for h in &self.hybrid {
            let u = native[h.dim];
            native[h.dim] = if u < h.bias {
                h.special_unit
            } else if h.bias < 1.0 {
                ((u - h.bias) / (1.0 - h.bias)).clamp(0.0, 1.0)
            } else {
                h.special_unit
            };
        }
        if let Some(q) = &self.quantization {
            q.apply(&mut native);
        }
        native
    }

    fn restrict(&self, native: &[f64]) -> Vec<f64> {
        assert_eq!(native.len(), self.native_dim, "pipeline restrict dimension mismatch");
        let mut pre: Vec<f64> = native.to_vec();
        for h in &self.hybrid {
            let u = pre[h.dim];
            pre[h.dim] = if (u - h.special_unit).abs() < 1e-12 {
                // The sentinel maps to the middle of its reserved slice.
                h.bias / 2.0
            } else {
                (h.bias + u * (1.0 - h.bias)).clamp(0.0, 1.0)
            };
        }
        match &self.projection {
            Some(p) => p.restrict(&pre),
            None => pre,
        }
    }

    fn id(&self) -> String {
        let mut parts = Vec::new();
        match &self.projection {
            Some(p) => parts.push(p.id()),
            None => parts.push("native".to_string()),
        }
        if let Some(q) = &self.quantization {
            let bins = q.bins.iter().flatten().next().copied().unwrap_or(0);
            parts.push(format!("q{}x{}", bins, q.n_quantized()));
        }
        if !self.hybrid.is_empty() {
            parts.push(format!("hyb{}b{}", self.hybrid.len(), self.hybrid[0].bias));
        }
        parts.join("|")
    }
}

/// Convenience constructor for the common case: a HeSBO projection with
/// quantization and hybrid handling over `set`, as one shared transform.
pub fn projected_space(
    set: &KnobSet,
    kind: Projection,
    d_low: usize,
    seed: u64,
    quantize_bins: Option<usize>,
    hybrid_bias: Option<f64>,
) -> Arc<dyn SpaceTransform> {
    let projection = RandomProjection::new(kind, d_low, set.dim(), seed);
    Arc::new(SpacePipeline::new(set, Some(projection), quantize_bins, hybrid_bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::Configuration;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn identity_is_a_true_noop() {
        let t = IdentityTransform::new(3);
        let p = vec![0.1, 0.5, 0.9];
        assert_eq!(t.lift(&p), p);
        assert_eq!(t.restrict(&p), p);
        assert_eq!(t.id(), "native");
        assert_eq!(t.dim(), 3);
        assert_eq!(t.native_dim(), 3);
    }

    #[test]
    fn hesbo_lift_stays_in_the_unit_cube_and_is_seed_deterministic() {
        let set = KnobSet::extended();
        let a = RandomProjection::new(Projection::Hesbo, 16, set.dim(), 42);
        let b = RandomProjection::new(Projection::Hesbo, 16, set.dim(), 42);
        let c = RandomProjection::new(Projection::Hesbo, 16, set.dim(), 43);
        let low: Vec<f64> = (0..16).map(|i| i as f64 / 15.0).collect();
        let la = a.lift(&low);
        assert_eq!(la.len(), set.dim());
        assert!(la.iter().all(|v| (0.0..=1.0).contains(v)));
        assert_eq!(la, b.lift(&low), "same seed must give the same embedding");
        assert_ne!(la, c.lift(&low), "different seeds must differ");
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn gaussian_lift_clips_and_restrict_recovers_interior_points() {
        let set = KnobSet::extended();
        let t = RandomProjection::new(Projection::Gaussian, 8, set.dim(), 7);
        let low = vec![0.55; 8];
        let native = t.lift(&low);
        assert!(native.iter().all(|v| (0.0..=1.0).contains(v)));
        // A mild point lifts without saturating everywhere, and the
        // least-squares restriction lands near the original search point.
        let back = t.restrict(&native);
        assert!(close(&back, &low, 0.15), "{back:?} vs {low:?}");
    }

    #[test]
    fn hesbo_restrict_inverts_lift_for_interior_points() {
        let set = KnobSet::extended();
        let t = RandomProjection::new(Projection::Hesbo, 12, set.dim(), 5);
        let low: Vec<f64> = (0..12).map(|i| 0.1 + 0.07 * i as f64).collect();
        let native = t.lift(&low);
        // Sign-adjusted group averages recover the exact coordinates (every
        // native copy of a search dim carries the same value).
        let back = t.restrict(&native);
        assert!(close(&back, &low, 1e-12), "{back:?} vs {low:?}");
    }

    #[test]
    fn quantization_snaps_to_bin_centers_and_is_idempotent() {
        let set = KnobSet::extended();
        let q = Quantization::for_knob_set(&set, 64);
        assert!(q.n_quantized() > 100, "most of 200 knobs are wide numerics");
        let mut v: Vec<f64> = (0..set.dim()).map(|i| (i as f64 * 0.37) % 1.0).collect();
        let orig = v.clone();
        q.apply(&mut v);
        let once = v.clone();
        q.apply(&mut v);
        assert_eq!(once, v, "quantization must be idempotent");
        for ((def, o), s) in set.defs().iter().zip(&orig).zip(&once) {
            match def.kind {
                KnobKind::Boolean | KnobKind::Enum(_) => assert_eq!(o, s),
                _ if def.special.is_some() => assert_eq!(o, s),
                _ => assert!((o - s).abs() <= 0.5 / 64.0 + 1e-12),
            }
        }
    }

    #[test]
    fn hybrid_dims_bias_sample_the_sentinel() {
        let set = KnobSet::extended();
        let t = SpacePipeline::new(&set, None, None, Some(0.2));
        let defs = set.defs();
        let itc = defs.iter().position(|d| d.name == "innodb_thread_concurrency").unwrap();
        // Below the bias: the sentinel, exactly.
        let mut low = vec![0.5; set.dim()];
        low[itc] = 0.1;
        let native = t.lift(&low);
        let sentinel_unit = defs[itc].normalize(defs[itc].special.unwrap());
        assert_eq!(native[itc], sentinel_unit);
        // Above the bias: rescaled over the numeric range.
        low[itc] = 0.6;
        let native = t.lift(&low);
        assert!((native[itc] - 0.5).abs() < 1e-12, "0.6 rescales to (0.6-0.2)/0.8 = 0.5");
        // The evaluated configuration honours the sentinel end to end.
        low[itc] = 0.0;
        let config = set.to_configuration(&t.lift(&low), &Configuration::dba_default());
        assert_eq!(config.get("innodb_thread_concurrency"), 0.0);
    }

    #[test]
    fn pipeline_restrict_expresses_the_default_in_search_coordinates() {
        let set = KnobSet::extended();
        let t = projected_space(&set, Projection::Hesbo, 16, 42, Some(64), Some(0.2));
        assert_eq!(t.dim(), 16);
        assert_eq!(t.native_dim(), 200);
        let default_native = set.default_point();
        let low = t.restrict(&default_native);
        assert_eq!(low.len(), 16);
        assert!(low.iter().all(|v| (0.0..=1.0).contains(v)));
        // Lifting the restriction lands near the default for most dims: the
        // projection is lossy, but the pipeline must stay in range and keep
        // hybrid sentinels representable.
        let lifted = t.lift(&low);
        assert_eq!(lifted.len(), 200);
        assert!(lifted.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn pipeline_id_captures_every_stage() {
        let set = KnobSet::extended();
        let full = projected_space(&set, Projection::Hesbo, 16, 42, Some(64), Some(0.2));
        let id = full.id();
        assert!(id.starts_with("hesbo:d16:s42|q64x"), "{id}");
        assert!(id.contains("hyb"), "{id}");
        let plain = SpacePipeline::new(&set, None, None, None);
        assert_eq!(plain.id(), "native");
        // Different seeds or dims give different identities.
        let other = projected_space(&set, Projection::Hesbo, 16, 43, Some(64), Some(0.2));
        assert_ne!(full.id(), other.id());
    }

    #[test]
    fn out_of_cube_lift_inputs_are_tolerated() {
        // Proposers are trusted to stay in [0,1], but acquisition local
        // refinement can step epsilon outside; lifting must not panic and
        // must still produce in-cube native points.
        let set = KnobSet::extended();
        let t = projected_space(&set, Projection::Gaussian, 8, 1, Some(32), Some(0.2));
        let low = vec![-0.1, 1.1, 0.5, 0.0, 1.0, 0.3, 0.7, 2.0];
        let native = t.lift(&low);
        assert!(native.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}
