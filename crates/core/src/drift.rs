//! Workload-drift detection and warm-restart re-tuning (DESIGN.md §16).
//!
//! A deployed tuner's workload is not static: traffic mixes shift, reporting
//! jobs arrive, read/write ratios drift. ResTune's machinery already contains
//! the right response — the paper's meta-learning treats every *finished*
//! tuning task as a base learner — so a drifted session should not start
//! over: it should **seal** its pre-drift history as one more base task and
//! warm-restart with that task (and the rest of the repository) as transfer
//! sources.
//!
//! The pieces:
//!
//! - [`DriftController`] periodically re-runs the §6.2 TF-IDF/random-forest
//!   workload characterization against the *live* workload (which a
//!   [`dbsim::WorkloadSchedule`] may be evolving) and compares the class
//!   distribution with the session's reference profile by total-variation
//!   distance.
//! - On a threshold crossing it drives [`EvalEngine::warm_restart`]: the
//!   pre-drift epoch becomes a [`TaskRecord`] (with its `space_id`), handed
//!   to a [`SealSink`] which commits it and returns the refitted
//!   base-learners for the new epoch.
//! - The resulting [`DriftEvent`] reaches the
//!   [`Proposer`](crate::driver::Proposer) through its `on_drift` hook, which
//!   re-initializes ensemble weights, the LHS bootstrap, and the target-model
//!   cache.
//!
//! Sessions without a controller take none of these paths: the driver's
//! drift hook is `None`, no counter or span fires, and static-session traces
//! stay bit-identical to pre-drift builds (`tests/golden_methods.rs`).

use std::sync::Arc;

use crate::engine::EvalEngine;
use crate::fleet::store::ShardedStore;
use crate::meta::BaseLearner;
use crate::repository::{DataRepository, TaskRecord};
use gp::GpConfig;
use workload::WorkloadCharacterizer;

/// What a restart re-initializes the learner ensemble from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Seal the pre-drift epoch and transfer from the updated repository
    /// (full ResTune behavior).
    Warm,
    /// Seal the epoch but restart without transfer — the from-scratch
    /// control arm of the `drift_sweep` bench.
    Cold,
}

/// Drift-detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Re-characterize the live workload every `check_every` committed
    /// iterations of the current epoch.
    pub check_every: usize,
    /// Total-variation distance between the live class distribution and the
    /// reference profile at which drift is declared (both are probability
    /// vectors, so the score lives in `[0, 1]`).
    pub threshold: f64,
    /// Iterations an epoch must accumulate before checks begin — a restart
    /// storm on a slow ramp would shred every epoch's history into
    /// unusably small base tasks.
    pub min_epoch_iters: usize,
    /// Settle tolerance: after a threshold crossing, the restart is deferred
    /// until two consecutive checks see the *same* drifted profile (their
    /// total-variation distance is at most `settle_tol`). Restarting
    /// mid-ramp would re-anchor the SLA on transient blended traffic that
    /// the settled workload can never meet, leaving the whole new epoch
    /// infeasible.
    pub settle_tol: f64,
    /// Seed for the characterizer's query sampling (the profile, like the
    /// embedding it compares against, must be a pure function of the spec).
    pub embed_seed: u64,
    /// Warm (transfer) or cold (no transfer) restarts.
    pub policy: RestartPolicy,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            check_every: 4,
            threshold: 0.25,
            min_epoch_iters: 6,
            settle_tol: 0.05,
            embed_seed: 0,
            policy: RestartPolicy::Warm,
        }
    }
}

/// Everything a [`Proposer`](crate::driver::Proposer) needs to re-initialize
/// after a warm restart.
#[derive(Debug, Clone)]
pub struct DriftEvent {
    /// The new epoch's number (1 after the first restart).
    pub epoch: usize,
    /// Absolute iteration at which the drift was detected.
    pub iteration: usize,
    /// The engine's new `epoch_start` (proposers rebase their iteration
    /// clocks here).
    pub epoch_start: usize,
    /// The total-variation score that crossed the threshold.
    pub score: f64,
    /// The new reference profile (the drifted workload's class
    /// distribution) — the restarted session's target meta-feature.
    pub meta_feature: Vec<f64>,
    /// Base-learners for the new epoch, refitted from the updated
    /// repository. Empty under [`RestartPolicy::Cold`].
    pub learners: Vec<BaseLearner>,
    /// Task id under which the pre-drift epoch was sealed.
    pub sealed_task_id: String,
}

/// Where sealed pre-drift epochs go, and where the restarted session's
/// base-learners come from.
pub trait SealSink: Send {
    /// Commits `record` and returns the base-learners the restarted epoch
    /// should transfer from (typically every stored task whose knob space
    /// matches the sealed record's).
    fn seal(&mut self, record: TaskRecord) -> Vec<BaseLearner>;
}

/// Fits base-learners from every record matching the target's search space:
/// meta-transfer requires the knob names *and* the `space_id` to agree.
fn matching_learners<'a>(
    records: impl Iterator<Item = &'a TaskRecord>,
    target: &TaskRecord,
    gp: &GpConfig,
) -> Vec<BaseLearner> {
    records
        .filter(|t| t.knob_names == target.knob_names && t.space_id == target.space_id)
        .filter_map(|t| t.to_base_learner(gp).ok())
        .collect()
}

/// The single-session sink: an in-process [`DataRepository`]. Each sealed
/// epoch joins the repository and the whole matching set is refit.
pub struct LocalSealSink {
    repo: DataRepository,
    gp: GpConfig,
}

impl LocalSealSink {
    /// A sink over `repo` (possibly pre-loaded with historical tasks).
    pub fn new(repo: DataRepository, gp: GpConfig) -> Self {
        LocalSealSink { repo, gp }
    }

    /// The accumulated repository (historical tasks plus sealed epochs).
    pub fn repository(&self) -> &DataRepository {
        &self.repo
    }
}

impl SealSink for LocalSealSink {
    fn seal(&mut self, record: TaskRecord) -> Vec<BaseLearner> {
        self.repo.add(record.clone());
        matching_learners(self.repo.tasks().iter(), &record, &self.gp)
    }
}

/// The fleet sink: sealed epochs are committed to the shared
/// [`ShardedStore`] (visible to later fleet generations), but the restarted
/// tenant refits only from its **pinned pre-start snapshot plus its own
/// sealed epochs** — never from siblings' live commits, so a tenant's trace
/// stays a pure function of its own state and the fleet is bit-identical at
/// any worker count (DESIGN.md §12).
pub struct FleetSealSink {
    tenant: u64,
    store: Arc<ShardedStore>,
    pinned: DataRepository,
    own: Vec<TaskRecord>,
    gp: GpConfig,
}

impl FleetSealSink {
    /// A sink for `tenant` over `store`, pinning the store's current
    /// contents as the transfer base. Pin **before** the fleet starts: the
    /// snapshot is what keeps restarts schedule-independent.
    pub fn new(tenant: u64, store: Arc<ShardedStore>, gp: GpConfig) -> Self {
        let pinned = store.snapshot().to_repository();
        FleetSealSink { tenant, store, pinned, own: Vec::new(), gp }
    }

    /// Epochs this tenant has sealed so far.
    pub fn sealed(&self) -> usize {
        self.own.len()
    }
}

impl SealSink for FleetSealSink {
    fn seal(&mut self, record: TaskRecord) -> Vec<BaseLearner> {
        self.store.commit_shared(self.tenant, Arc::new(record.clone()));
        self.own.push(record.clone());
        matching_learners(self.pinned.tasks().iter().chain(self.own.iter()), &record, &self.gp)
    }
}

/// The per-session drift detector and warm-restart driver. Owned by a
/// [`TuningDriver`](crate::driver::TuningDriver) (`None` for static
/// sessions) and consulted after every committed iteration.
pub struct DriftController {
    config: DriftConfig,
    characterizer: Arc<WorkloadCharacterizer>,
    /// The class-probability profile drift is measured against — the base
    /// workload's at construction, the drifted workload's after a restart.
    reference: Vec<f64>,
    sink: Box<dyn SealSink>,
    /// Sealed-task label prefix (conventionally `workload@instance`).
    task_prefix: String,
    /// A drifted profile seen by the previous check, awaiting confirmation
    /// that the workload has settled (see [`DriftConfig::settle_tol`]).
    pending: Option<Vec<f64>>,
    epoch: usize,
    restarts: u64,
    sealed: usize,
    last_score: f64,
}

/// Total-variation distance between two discrete distributions.
fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

impl DriftController {
    /// A controller whose reference profile is `reference` (the base
    /// workload's class distribution, from the same characterizer and
    /// `embed_seed` the checks will use).
    pub fn new(
        config: DriftConfig,
        characterizer: Arc<WorkloadCharacterizer>,
        reference: Vec<f64>,
        task_prefix: impl Into<String>,
        sink: Box<dyn SealSink>,
    ) -> Self {
        DriftController {
            config,
            characterizer,
            reference,
            sink,
            task_prefix: task_prefix.into(),
            pending: None,
            epoch: 0,
            restarts: 0,
            sealed: 0,
            last_score: 0.0,
        }
    }

    /// A controller that derives its reference profile from `spec` — the
    /// common construction (the session's base workload).
    pub fn for_workload(
        config: DriftConfig,
        characterizer: Arc<WorkloadCharacterizer>,
        spec: &dbsim::WorkloadSpec,
        task_prefix: impl Into<String>,
        sink: Box<dyn SealSink>,
    ) -> Self {
        let reference = characterizer.embed_workload(spec, config.embed_seed).probs;
        Self::new(config, characterizer, reference, task_prefix, sink)
    }

    /// Warm restarts executed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Epochs sealed into the repository so far.
    pub fn sealed_tasks(&self) -> usize {
        self.sealed
    }

    /// The current epoch number (0 until the first restart).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The most recent check's total-variation score.
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Runs the drift check after iteration `iter` was committed; on a
    /// threshold crossing, executes the warm restart against `engine` and
    /// returns the [`DriftEvent`] the proposer must apply. The schedule is a
    /// pure function of the epoch clock, so same-seed sessions check — and
    /// restart — at identical iterations.
    pub fn check(&mut self, engine: &mut EvalEngine, iter: usize) -> Option<DriftEvent> {
        let epoch_iters = engine.iterations() - engine.epoch_start();
        if epoch_iters < self.config.min_epoch_iters
            || !epoch_iters.is_multiple_of(self.config.check_every.max(1))
        {
            return None;
        }
        let check_span = trace::span!("drift_check", iter = iter);
        trace::count("drift.checks", 1);
        let live = self
            .characterizer
            .embed_workload(engine.environment().dbms.workload(), self.config.embed_seed)
            .probs;
        let score = total_variation(&live, &self.reference);
        self.last_score = score;
        let _ = check_span.finish_s();
        if score < self.config.threshold {
            // Back under the threshold: a transient blip, not a drift.
            self.pending = None;
            return None;
        }
        trace::count("drift.detected", 1);
        // Debounce: restart only once the drifted profile holds still
        // across two consecutive checks. Mid-ramp traffic keeps moving, so
        // the profile seen now disagrees with the previous check's — sealing
        // there would anchor the new epoch's SLA on a mix that no longer
        // exists by its first iteration.
        let settled = match &self.pending {
            Some(prior) => total_variation(&live, prior) <= self.config.settle_tol,
            None => false,
        };
        if !settled {
            trace::count("drift.pending", 1);
            self.pending = Some(live);
            return None;
        }
        self.pending = None;
        let restart_span = trace::span!("drift_restart", iter = iter, epoch = self.epoch);
        let sealed_task_id = format!("{}#epoch{}", self.task_prefix, self.epoch);
        let sealed = engine.warm_restart(&sealed_task_id, self.reference.clone());
        let observations = sealed.observations.len();
        let learners = match self.config.policy {
            RestartPolicy::Warm => self.sink.seal(sealed),
            RestartPolicy::Cold => {
                // The epoch is still sealed (the repository keeps growing);
                // only the transfer into the new epoch is suppressed.
                let _ = self.sink.seal(sealed);
                Vec::new()
            }
        };
        self.sealed += 1;
        self.epoch += 1;
        self.restarts += 1;
        trace::count("drift.restarts", 1);
        let fields: Vec<(&str, trace::FieldValue)> = vec![
            ("iter", iter.into()),
            ("epoch", self.epoch.into()),
            ("score", score.into()),
            ("sealed", sealed_task_id.as_str().into()),
            ("sealed_obs", observations.into()),
            ("learners", learners.len().into()),
        ];
        trace::event("drift.restart", fields);
        let event = DriftEvent {
            epoch: self.epoch,
            iteration: iter,
            epoch_start: engine.epoch_start(),
            score,
            meta_feature: live.clone(),
            learners,
            sealed_task_id,
        };
        self.reference = live;
        let _ = restart_span.finish_s();
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_variation_is_a_metric_on_distributions() {
        let a = [0.5, 0.5, 0.0];
        let b = [0.0, 0.5, 0.5];
        assert_eq!(total_variation(&a, &a), 0.0);
        assert!((total_variation(&a, &b) - 0.5).abs() < 1e-12);
        // Disjoint supports are maximally distant.
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_config_checks_sparsely_and_restarts_warm() {
        let c = DriftConfig::default();
        assert!(c.min_epoch_iters >= c.check_every);
        assert!(c.threshold > 0.0 && c.threshold < 1.0);
        // Settling must be strictly tighter than detection, or the debounce
        // could confirm a profile that is still mid-ramp.
        assert!(c.settle_tol > 0.0 && c.settle_tol < c.threshold);
        assert_eq!(c.policy, RestartPolicy::Warm);
    }
}
