//! The ResTune tuning session (§4): evaluate the default to fix the SLA,
//! then iterate *recommend → apply → replay → observe*, with the adaptive
//! weight schema of §6.4.3 (meta-feature static weights for the first
//! iterations, ranking-loss dynamic weights afterwards).

use crate::acquisition::{
    AcquisitionKind, AcquisitionOptimizer, ConstrainedExpectedImprovement, expected_improvement,
};
use crate::meta::{
    static_weights, BaseLearner, MetaLearner, TargetObservations,
};
use crate::problem::{ResourceKind, SlaConstraints, TuningProblem};
use crate::resilience::{
    evaluate_with_retry, penalty_observation, FailureCounts, FailureKind, ReplayPolicy,
};
use crate::surrogate::{GpTaskModel, SurrogatePrediction, TaskSurrogate};
use dbsim::{
    Configuration, EvalOutcome, FaultPlan, InstanceType, KnobSet, Observation, SimulatedDbms,
    WorkloadSpec,
};
use gp::GpConfig;
use xrand::{RngExt, SeedableRng};

/// The target DBMS copy plus the search space and objective.
#[derive(Debug, Clone)]
pub struct TuningEnvironment {
    /// The simulated DBMS copy under test.
    pub dbms: SimulatedDbms,
    /// The knob subspace being tuned.
    pub knob_set: KnobSet,
    /// The resource objective.
    pub resource: ResourceKind,
}

impl TuningEnvironment {
    /// Starts a builder.
    pub fn builder() -> TuningEnvironmentBuilder {
        TuningEnvironmentBuilder::default()
    }
}

/// Builder for [`TuningEnvironment`].
#[derive(Debug, Clone)]
pub struct TuningEnvironmentBuilder {
    instance: InstanceType,
    workload: WorkloadSpec,
    resource: ResourceKind,
    knob_set: Option<KnobSet>,
    seed: u64,
    noise: Option<f64>,
    fault_plan: Option<FaultPlan>,
}

impl Default for TuningEnvironmentBuilder {
    fn default() -> Self {
        TuningEnvironmentBuilder {
            instance: InstanceType::A,
            workload: WorkloadSpec::sysbench(),
            resource: ResourceKind::Cpu,
            knob_set: None,
            seed: 0,
            noise: None,
            fault_plan: None,
        }
    }
}

impl TuningEnvironmentBuilder {
    /// Hardware environment (Table 1).
    pub fn instance(mut self, instance: InstanceType) -> Self {
        self.instance = instance;
        self
    }

    /// Target workload (Table 2).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Resource objective; also selects the default knob set.
    pub fn resource(mut self, resource: ResourceKind) -> Self {
        self.resource = resource;
        self
    }

    /// Overrides the knob set (e.g. the 3-knob case study).
    pub fn knob_set(mut self, set: KnobSet) -> Self {
        self.knob_set = Some(set);
        self
    }

    /// Simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Observation noise override (`0.0` = deterministic).
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Fault schedule for the replays (default: no faults).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the environment.
    pub fn build(self) -> TuningEnvironment {
        let mut dbms = SimulatedDbms::new(self.instance, self.workload, self.seed);
        if let Some(n) = self.noise {
            dbms = dbms.with_noise(n);
        }
        if let Some(plan) = self.fault_plan {
            dbms = dbms.with_fault_plan(plan);
        }
        let knob_set = self.knob_set.unwrap_or_else(|| self.resource.default_knob_set());
        TuningEnvironment { dbms, knob_set, resource: self.resource }
    }
}

/// How the first `init_iters` iterations pick points when meta-learning is
/// active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Suggestions from the static-weight (meta-feature) ensemble — full
    /// ResTune.
    StaticWeights,
    /// Latin hypercube samples — the ResTune-w/o-Workload ablation of
    /// Figure 6(b).
    Lhs,
}

/// ResTune configuration (defaults follow §7 "Setting").
#[derive(Debug, Clone)]
pub struct RestuneConfig {
    /// Initialization iterations before switching to dynamic weights / after
    /// which LHS bootstrapping ends (paper: 10).
    pub init_iters: usize,
    /// Initialization point source when meta-learning is active.
    pub init_strategy: InitStrategy,
    /// GP fitting configuration.
    pub gp: GpConfig,
    /// Refit GP hyperparameters every `k` iterations once > 40 observations.
    pub refit_hypers_every: usize,
    /// Acquisition function (CEI for ResTune; EI reproduces iTuned).
    pub acquisition: AcquisitionKind,
    /// Acquisition optimizer budget.
    pub optimizer: AcquisitionOptimizer,
    /// Epanechnikov bandwidth ρ for static weights.
    pub static_bandwidth: f64,
    /// Posterior samples for dynamic weights (§6.4.2).
    pub dynamic_samples: usize,
    /// Cap on target observations entering the O(n²) ranking loss.
    pub max_rank_points: usize,
    /// Convergence window: no metric moves more than `convergence_epsilon`
    /// for this many consecutive iterations (§4: 0.5 % over 10 iterations).
    pub convergence_window: usize,
    /// Relative convergence threshold.
    pub convergence_epsilon: f64,
    /// RGPE weight-dilution guard (drop base-learners whose median ranking
    /// loss exceeds the target's 95th percentile). On by default; the
    /// ablation harness turns it off.
    pub dilution_guard: bool,
    /// During the static-weight bootstrap, source constraint predictions
    /// from the target learner only (see DESIGN.md §5b). On by default.
    pub static_constraints_from_target: bool,
    /// Run the recommend-side of each iteration parallel and batched: the
    /// three metric GPs fit on scoped threads, dynamic-weight posterior
    /// draws fan out one thread per learner, and acquisition candidates are
    /// scored in parallel chunks over batched predictions. Same-seed runs
    /// are bit-identical with this on or off (see DESIGN.md §8); off keeps
    /// the legacy serial per-point path for benchmarking.
    pub parallel: bool,
    /// Retry budget for transient replay failures (DESIGN.md §9).
    pub max_retries: usize,
    /// Initial retry backoff in simulated seconds (doubles per retry).
    pub retry_backoff_s: f64,
    /// Turn on the global trace collector (DESIGN.md §10) when the session
    /// is built. Off by default: the no-op sink costs one atomic load per
    /// instrumentation site. `trace::init_from_env()` / `RESTUNE_TRACE=1`
    /// offers the same switch without a config edit. Tracing reads clocks
    /// only — never RNG streams or observations — so enabling it cannot
    /// change tuning output.
    pub trace: bool,
    /// Algorithm seed (acquisition optimizer, weight sampling).
    pub seed: u64,
}

impl Default for RestuneConfig {
    fn default() -> Self {
        RestuneConfig {
            init_iters: 10,
            init_strategy: InitStrategy::StaticWeights,
            gp: GpConfig::default(),
            refit_hypers_every: 5,
            acquisition: AcquisitionKind::ConstrainedExpectedImprovement,
            optimizer: AcquisitionOptimizer::default(),
            static_bandwidth: 0.2,
            dynamic_samples: 30,
            max_rank_points: 50,
            convergence_window: 10,
            convergence_epsilon: 0.005,
            dilution_guard: true,
            static_constraints_from_target: true,
            parallel: true,
            max_retries: 2,
            retry_backoff_s: 5.0,
            trace: false,
            seed: 0,
        }
    }
}

/// Wall-clock breakdown of a single iteration (Table 3's rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationTiming {
    /// Meta-data processing (scale unification, meta-feature handling).
    pub meta_data_processing_s: f64,
    /// Model update (GP fits + weight learning).
    pub model_update_s: f64,
    /// Subcomponent of `model_update_s`: fitting the target's three metric
    /// GPs.
    pub gp_fit_s: f64,
    /// Subcomponent of `model_update_s`: ensemble weight learning (static
    /// kernel weights or ranking-loss posterior sampling).
    pub weight_update_s: f64,
    /// Knob recommendation (acquisition optimization).
    pub recommendation_s: f64,
    /// Target workload replay (simulated seconds).
    pub replay_s: f64,
}

impl IterationTiming {
    /// Total iteration time. `gp_fit_s` and `weight_update_s` are already
    /// inside `model_update_s` and do not count again.
    pub fn total_s(&self) -> f64 {
        self.meta_data_processing_s + self.model_update_s + self.recommendation_s + self.replay_s
    }
}

/// One tuning iteration's record.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Normalized point that was evaluated.
    pub point: Vec<f64>,
    /// Raw observation.
    pub observation: Observation,
    /// Raw objective value.
    pub objective: f64,
    /// Whether the observation met the SLA.
    pub feasible: bool,
    /// Running best feasible objective (includes the default as incumbent).
    pub best_feasible_objective: f64,
    /// Ensemble weights at recommendation time (base learners..., target),
    /// when meta-learning was active.
    pub weights: Option<Vec<f64>>,
    /// How the replay failed, if it did. `Crash`/`Timeout` iterations carry a
    /// synthetic penalized observation; `Partial` carries the truncated one.
    pub failure: Option<FailureKind>,
    /// Transient-failure retries this iteration consumed.
    pub retries: usize,
    /// Timing breakdown.
    pub timing: IterationTiming,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Per-iteration records.
    pub history: Vec<IterationRecord>,
    /// The default-configuration observation that fixed the SLA.
    pub default_observation: Observation,
    /// The SLA constraints.
    pub sla: SlaConstraints,
    /// Best feasible configuration found (the default if nothing better).
    pub best_config: Configuration,
    /// Best feasible objective value.
    pub best_objective: Option<f64>,
    /// Iteration (0-based) at which the best was found; `None` if the default
    /// was never improved.
    pub best_iteration: Option<usize>,
    /// Iteration at which the §4 convergence criterion first held.
    pub converged_at: Option<usize>,
    /// The default configuration's objective value (the tuning baseline).
    pub default_obj_value: f64,
    /// Replay-failure tally across the run.
    pub failures: FailureCounts,
}

impl TuningOutcome {
    /// The best-feasible-objective curve per iteration (what Figures 3–5
    /// plot).
    pub fn best_curve(&self) -> Vec<f64> {
        self.history.iter().map(|r| r.best_feasible_objective).collect()
    }

    /// Relative improvement of the best feasible objective over the default.
    pub fn improvement(&self) -> f64 {
        let default = self.default_obj_value.max(1e-12);
        match self.best_objective {
            Some(best) => (default - best) / default,
            None => 0.0,
        }
    }

    /// The default configuration's objective value.
    pub fn default_objective(&self) -> f64 {
        self.default_obj_value
    }
}

/// A running ResTune tuning session.
///
/// # Examples
///
/// ```
/// use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
/// use restune_core::problem::ResourceKind;
/// use restune_core::acquisition::AcquisitionOptimizer;
/// use dbsim::{InstanceType, KnobSet, WorkloadSpec};
///
/// let env = TuningEnvironment::builder()
///     .instance(InstanceType::A)
///     .workload(WorkloadSpec::twitter())
///     .resource(ResourceKind::Cpu)
///     .knob_set(KnobSet::case_study())
///     .seed(1)
///     .build();
/// let config = RestuneConfig {
///     optimizer: AcquisitionOptimizer { n_candidates: 200, n_local: 40, local_sigma: 0.1 },
///     ..Default::default()
/// };
/// let mut session = TuningSession::new(env, config);
/// let outcome = session.run(8);
/// assert_eq!(outcome.history.len(), 8);
/// // The incumbent is always SLA-feasible (the default until improved).
/// assert!(outcome.best_objective.unwrap() <= outcome.default_obj_value);
/// ```
pub struct TuningSession {
    env: TuningEnvironment,
    config: RestuneConfig,
    base_learners: Vec<BaseLearner>,
    target_meta_feature: Vec<f64>,
    problem: TuningProblem,
    default_observation: Observation,
    default_point: Vec<f64>,
    /// All observed points (default first).
    points: Vec<Vec<f64>>,
    res: Vec<f64>,
    tps: Vec<f64>,
    lat: Vec<f64>,
    history: Vec<IterationRecord>,
    best: Option<(usize, f64, Vec<f64>)>,
    lhs_plan: Vec<Vec<f64>>,
    converged_at: Option<usize>,
    use_meta: bool,
    last_improvement: usize,
    failures: FailureCounts,
    /// Worst/best objective over *full* (non-synthetic) observations — the
    /// basis for the failure penalty, kept separate from `res` so penalty
    /// values never compound on each other.
    obs_worst: f64,
    obs_best: f64,
}

impl TuningSession {
    /// A session without meta-learning (ResTune-w/o-ML): LHS bootstrap, then
    /// CEI over the target-only surrogate.
    pub fn new(env: TuningEnvironment, config: RestuneConfig) -> Self {
        Self::build(env, config, Vec::new(), Vec::new(), false)
    }

    /// A session boosted by historical base-learners (full ResTune).
    ///
    /// # Panics
    ///
    /// If any base learner was fitted on a knob space whose dimensionality
    /// differs from the environment's: mismatched learners are rejected at
    /// construction (with the offending task named) rather than producing
    /// dimensional nonsense at prediction time.
    pub fn with_base_learners(
        env: TuningEnvironment,
        config: RestuneConfig,
        base_learners: Vec<BaseLearner>,
        target_meta_feature: Vec<f64>,
    ) -> Self {
        let dim = env.knob_set.dim();
        for b in &base_learners {
            assert_eq!(
                b.model.res.dim(),
                dim,
                "base learner {:?} was fitted on a {}-dim knob space; the target space is {}-dim",
                b.task_id,
                b.model.res.dim(),
                dim
            );
        }
        Self::build(env, config, base_learners, target_meta_feature, true)
    }

    fn build(
        mut env: TuningEnvironment,
        config: RestuneConfig,
        base_learners: Vec<BaseLearner>,
        target_meta_feature: Vec<f64>,
        use_meta: bool,
    ) -> Self {
        if config.trace {
            trace::enable();
        }
        let default_observation = env.dbms.evaluate(&Configuration::dba_default());
        let sla = SlaConstraints::from_default_observation(&default_observation);
        let problem = TuningProblem {
            knob_set: env.knob_set.clone(),
            resource: env.resource,
            constraints: sla,
        };
        let default_point = env.knob_set.default_point();
        let default_objective = env.resource.value(&default_observation);
        let lhs_plan =
            crate::lhs::latin_hypercube(config.init_iters, env.knob_set.dim(), config.seed ^ 0x5A);
        let mut session = TuningSession {
            env,
            config,
            base_learners,
            target_meta_feature,
            problem,
            default_observation: default_observation.clone(),
            default_point: default_point.clone(),
            points: Vec::new(),
            res: Vec::new(),
            tps: Vec::new(),
            lat: Vec::new(),
            history: Vec::new(),
            best: None,
            lhs_plan,
            converged_at: None,
            use_meta,
            last_improvement: 0,
            failures: FailureCounts::default(),
            obs_worst: default_objective,
            obs_best: default_objective,
        };
        // The default observation seeds the model and the incumbent.
        session.record_data(default_point, &default_observation);
        session.best = Some((0, default_objective, session.default_point.clone()));
        session
    }

    fn record_data(&mut self, point: Vec<f64>, obs: &Observation) {
        self.points.push(point);
        self.res.push(self.env.resource.value(obs));
        self.tps.push(obs.tps);
        self.lat.push(obs.p99_ms);
    }

    /// Appends an externally collected observation tuple to the surrogate's
    /// training data without consuming a replay — warm-starting a session
    /// from measurements gathered outside it. Values enter the model
    /// verbatim; a degenerate tuple (NaN/inf) does not abort the session but
    /// degrades the next recommendations to uniform exploration until enough
    /// clean data accumulates (see DESIGN.md §9).
    pub fn seed_history(&mut self, point: Vec<f64>, res: f64, tps: f64, lat: f64) {
        self.points.push(point);
        self.res.push(res);
        self.tps.push(tps);
        self.lat.push(lat);
    }

    /// Replay-failure tally so far.
    pub fn failures(&self) -> FailureCounts {
        self.failures
    }

    /// The objective value a crashed/timed-out replay records: safely above
    /// the worst *genuinely observed* value, scaled by the observed spread.
    /// Computed over full observations only, so penalties never compound.
    fn failure_penalty(&self) -> f64 {
        self.obs_worst + 0.3 * (self.obs_worst - self.obs_best).max(1.0)
    }

    /// The SLA in force.
    pub fn sla(&self) -> SlaConstraints {
        self.problem.constraints
    }

    /// The default observation.
    pub fn default_observation(&self) -> &Observation {
        &self.default_observation
    }

    /// Completed iterations.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    fn fit_target(
        &self,
        res: &[f64],
        scalers: crate::scale::TaskScalers,
    ) -> Result<GpTaskModel, gp::GpError> {
        let n = self.points.len();
        let iter = self.history.len();
        let mut gp_config = self.config.gp.clone();
        gp_config.optimize_hypers = self.config.gp.optimize_hypers
            && (n <= 40 || iter.is_multiple_of(self.config.refit_hypers_every));
        gp_config.seed = self.config.seed;
        // Cache-style tally of the hyperparameter-refit schedule: a "miss"
        // pays the full marginal-likelihood optimization, a "hit" reuses the
        // previous hyperparameters.
        if gp_config.optimize_hypers {
            trace::count("gp.hypers.refit", 1);
        } else {
            trace::count("gp.hypers.reuse", 1);
        }
        GpTaskModel::fit_with_scalers(
            &self.points,
            res,
            &self.tps,
            &self.lat,
            scalers,
            &gp_config,
            self.config.parallel,
        )
    }

    fn penalized_res(&self) -> Vec<f64> {
        let sla = self.problem.constraints;
        let worst = self.res.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let best = self.res.iter().cloned().fold(f64::INFINITY, f64::min);
        let penalty = worst + 0.3 * (worst - best).max(1.0);
        self.res
            .iter()
            .zip(self.tps.iter().zip(&self.lat))
            .map(|(r, (t, l))| {
                if *t >= sla.tps_floor() && *l <= sla.lat_ceiling() {
                    *r
                } else {
                    penalty
                }
            })
            .collect()
    }

    /// Runs one iteration; returns the new record.
    pub fn step(&mut self) -> IterationRecord {
        let iter = self.history.len();
        let seed = self.config.seed.wrapping_add(iter as u64).wrapping_mul(0x9E37);
        // All wall-clock fields of `IterationTiming` are the `finish_s()`
        // values of the spans below — there is no second stopwatch
        // (DESIGN.md §10). `replay_s` alone stays *simulated* seconds from
        // the DBMS (it is part of the determinism fingerprint).
        let iteration_span = trace::span!("iteration", iter = iter);

        // ---- meta-data processing: scale unification ----------------------
        // Builds the objective column the surrogate trains on (penalized for
        // the penalty-EI ablation) and fits the standardizers the model
        // update below *uses* — not a throwaway probe.
        let meta_span = trace::span!("meta_data_processing");
        let res_col = match self.config.acquisition {
            // Penalty-based constrained BO (§2's simple alternative): the
            // surrogate is fit on a *penalized* objective — infeasible
            // observations are pushed above the worst feasible value, so
            // plain EI steers away from them.
            AcquisitionKind::PenalizedExpectedImprovement => self.penalized_res(),
            _ => self.res.clone(),
        };
        let scalers = crate::scale::TaskScalers::fit(&res_col, &self.tps, &self.lat);
        let meta_data_processing_s = meta_span.finish_s();

        // ---- model update: surrogate fit + weights + ensemble ---------------
        let model_span = trace::span!("model_update");
        let fit_span = trace::span!("gp_fit", n_obs = self.points.len());
        let fit = self.fit_target(&res_col, scalers);
        let gp_fit_s = fit_span.finish_s();
        let (point, weights, model_update_s, weight_update_s, recommendation_s) = match fit {
            Ok(target) => {
                let weight_span = trace::span!("weight_update");
                let (surrogate, weights): (MetaLearner, Option<Vec<f64>>) = if self.use_meta
                    && !self.base_learners.is_empty()
                {
                    let w = if iter < self.config.init_iters {
                        static_weights(
                            &self.base_learners,
                            &self.target_meta_feature,
                            self.config.static_bandwidth,
                        )
                    } else {
                        let res_std = target.scalers.res.transform_all(&self.res);
                        let tps_std = target.scalers.tps.transform_all(&self.tps);
                        let lat_std = target.scalers.lat.transform_all(&self.lat);
                        let obs = TargetObservations {
                            points: &self.points,
                            res: &res_std,
                            tps: &tps_std,
                            lat: &lat_std,
                        };
                        crate::meta::dynamic_weights_with_options(
                            &self.base_learners,
                            &target,
                            &obs,
                            self.config.dynamic_samples,
                            self.config.max_rank_points,
                            self.config.dilution_guard,
                            self.config.parallel,
                            seed,
                        )
                    };
                    let learner = MetaLearner::new(self.base_learners.clone(), target, w.clone());
                    (learner, Some(w))
                } else {
                    (MetaLearner::target_only(target), None)
                };
                let weight_update_s = weight_span.finish_s();
                let model_update_s = model_span.finish_s();

                // ---- knob recommendation ---------------------------------
                let recommendation_span = trace::span!("recommendation");
                let lhs_init = iter < self.config.init_iters
                    && (!self.use_meta || self.config.init_strategy == InitStrategy::Lhs);
                // During the static bootstrap the ensemble mixes base-learners from
                // heterogeneous hardware whose *feasibility* surfaces can disagree
                // with the target instance (a small machine's optimal concurrency
                // throttles a big one). Constraint predictions therefore come from
                // the target learner until dynamic (ranking-loss) weights take over —
                // ranking loss scores tps/lat orderings explicitly, so the dynamic
                // ensemble is safe for constraints.
                let constraints_from_target = self.use_meta
                    && iter < self.config.init_iters
                    && self.config.static_constraints_from_target;
                // Stagnation safeguard: when the incumbent has not moved for a long
                // stretch (a misled ensemble or a degenerate surrogate can pin the
                // acquisition in a dead region), interleave a uniform exploration
                // point every few iterations — standard ε-greedy insurance in BO
                // implementations.
                let stagnated = iter >= self.config.init_iters
                    && iter.saturating_sub(self.last_improvement) >= 8
                    && iter.is_multiple_of(4);
                let point = if lhs_init {
                    // Non-meta methods (and the w/o-Workload ablation) bootstrap with
                    // LHS (§7 Setting).
                    self.lhs_plan[iter].clone()
                } else if stagnated {
                    let mut rng = xrand::rngs::StdRng::seed_from_u64(seed ^ 0xE5C4);
                    (0..self.problem.dim()).map(|_| rng.random::<f64>()).collect()
                } else {
                    self.optimize_acquisition(&surrogate, constraints_from_target, seed)
                };
                let recommendation_s = recommendation_span.finish_s();
                (point, weights, model_update_s, weight_update_s, recommendation_s)
            }
            Err(_) => {
                // A degenerate observation set (non-finite values, pathological
                // kernel) must not abort the session: degrade to a seeded
                // uniform exploration point — the next full observation both
                // makes progress and feeds the surrogate fresh, usable data.
                let mut rng = xrand::rngs::StdRng::seed_from_u64(seed ^ 0xFA11);
                let point: Vec<f64> =
                    (0..self.problem.dim()).map(|_| rng.random::<f64>()).collect();
                let model_update_s = model_span.finish_s();
                (point, None, model_update_s, 0.0, 0.0)
            }
        };

        // ---- apply + replay ---------------------------------------------------
        let config =
            self.problem.knob_set.to_configuration(&point, &Configuration::dba_default());
        let policy = ReplayPolicy {
            max_retries: self.config.max_retries,
            backoff_s: self.config.retry_backoff_s,
        };
        let replay = evaluate_with_retry(&mut self.env.dbms, &config, &policy);
        let replay_s = replay.replay_s;
        let retries = replay.retries;
        let failure = FailureKind::from_outcome(&replay.outcome);
        let observation = match replay.outcome {
            EvalOutcome::Ok(obs) => obs,
            EvalOutcome::Partial { observation, .. } => observation,
            // Crash/timeout: no sample came back. Record a finite synthetic
            // observation that is infeasible by construction and penalized
            // above the worst genuine value, so CEI steers away from the
            // region (the penalty encoding of §2, applied to failures).
            EvalOutcome::Crashed { .. } | EvalOutcome::TimedOut { .. } => penalty_observation(
                config.clone(),
                self.env.resource,
                self.failure_penalty(),
                self.problem.constraints.lat_ceiling(),
                replay_s,
            ),
        };

        let objective = self.env.resource.value(&observation);
        let feasible = self.problem.constraints.is_feasible(&observation);
        self.record_data(point.clone(), &observation);
        if failure.is_none() {
            // Only full replays update the penalty basis and may certify a
            // new incumbent; a truncated sample's SLA reading is not trusted.
            self.obs_worst = self.obs_worst.max(objective);
            self.obs_best = self.obs_best.min(objective);
            if feasible && objective < self.best.as_ref().map(|b| b.1).unwrap_or(f64::INFINITY) {
                self.best = Some((iter, objective, point.clone()));
                self.last_improvement = iter;
            }
        }
        self.failures.record(failure, retries);

        let record = IterationRecord {
            iteration: iter,
            point,
            observation,
            objective,
            feasible,
            best_feasible_objective: self.best.as_ref().map(|b| b.1).unwrap(),
            weights,
            failure,
            retries,
            timing: IterationTiming {
                meta_data_processing_s,
                model_update_s,
                gp_fit_s,
                weight_update_s,
                recommendation_s,
                replay_s,
            },
        };
        self.history.push(record.clone());
        self.check_convergence();
        trace::count("loop.iterations", 1);
        let _ = iteration_span.finish_s();
        record
    }

    fn optimize_acquisition(
        &self,
        surrogate: &MetaLearner,
        constraints_from_target: bool,
        seed: u64,
    ) -> Vec<f64> {
        // Joint prediction with constraints optionally sourced from the
        // target learner alone.
        let predict = |p: &[f64]| {
            let mut pred = surrogate.predict(p);
            if constraints_from_target {
                let t = surrogate.target();
                pred.tps = t.tps.predict(p).expect("dim");
                pred.lat = t.lat.predict(p).expect("dim");
            }
            pred
        };
        // Re-scaled constraint bounds λ' = L_M(θ_d) (§6.1), widened by the
        // 5 % tolerance expressed in target-σ units.
        let default_pred = predict(&self.default_point);
        let scalers = surrogate.target().scalers;
        let tol = self.problem.constraints.tolerance;
        let tps_floor =
            default_pred.tps.mean - tol * self.problem.constraints.min_tps / scalers.tps.std;
        let lat_ceiling =
            default_pred.lat.mean + tol * self.problem.constraints.max_p99_ms / scalers.lat.std;

        let (best_feasible, mut anchors) = match &self.best {
            Some((_, _, point)) => {
                let incumbent = predict(point).res.mean;
                (Some(incumbent), vec![point.clone()])
            }
            None => (None, Vec::new()),
        };
        // Seed local refinement with the best observed points of the
        // highest-weight base-learners: "suggest knobs that are promising
        // according to similar historical tasks" (§6.4.3).
        let weights = surrogate.weights();
        let mut ranked: Vec<(usize, f64)> = surrogate
            .base_learners()
            .iter()
            .enumerate()
            .map(|(i, _)| (i, weights[i]))
            .collect();
        // Total order, not `partial_cmp(..).unwrap()`: a NaN weight (e.g. a
        // degenerate ranking-loss posterior) must not panic the ranking. NaN
        // sorts below every real weight and the positivity gate drops it.
        ranked.sort_by(|a, b| {
            let key = |w: f64| if w.is_nan() { f64::NEG_INFINITY } else { w };
            key(b.1).total_cmp(&key(a.1))
        });
        for (i, w) in ranked.into_iter().take(3) {
            if !(w > 0.0) {
                break;
            }
            // Anchor on the learner's best point that met its own task's SLA
            // — the raw resource minimum is usually a throttled violator.
            if let Some(p) = &surrogate.base_learners()[i].promising_point {
                anchors.push(p.clone());
            }
        }

        // Per-prediction acquisition value. Resolving the incumbent up front
        // keeps the scoring closure pure (no RNG, no per-call setup), which
        // is what allows batched/parallel candidate scoring below.
        enum Scorer {
            Cei(ConstrainedExpectedImprovement),
            Ei { incumbent: f64 },
        }
        let scorer = match self.config.acquisition {
            AcquisitionKind::ConstrainedExpectedImprovement => {
                Scorer::Cei(ConstrainedExpectedImprovement { best_feasible, tps_floor, lat_ceiling })
            }
            AcquisitionKind::PenalizedExpectedImprovement => {
                // Plain EI on the penalized surrogate; the penalty encoded at
                // fit time does the constraint handling.
                let incumbent = self
                    .best
                    .as_ref()
                    .map(|(_, _, p)| predict(p).res.mean)
                    .unwrap_or_else(|| predict(&self.default_point).res.mean);
                Scorer::Ei { incumbent }
            }
            AcquisitionKind::ExpectedImprovement => {
                // Unconstrained EI over the *overall* best (iTuned's behavior
                // after the objective swap): ignores the SLA entirely.
                // Filter non-finite objectives before taking the minimum: a
                // seeded-in NaN observation must degrade, not panic.
                let best_overall = self
                    .points
                    .iter()
                    .zip(&self.res)
                    .filter(|(_, r)| r.is_finite())
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(p, _)| predict(p).res.mean);
                Scorer::Ei { incumbent: best_overall.unwrap_or(0.0) }
            }
        };
        let value = |pred: &SurrogatePrediction| -> f64 {
            match &scorer {
                Scorer::Cei(cei) => cei.value(pred),
                Scorer::Ei { incumbent } => {
                    expected_improvement(pred.res.mean, pred.res.std_dev(), *incumbent)
                }
            }
        };

        if self.config.parallel {
            // Joint *batched* prediction with the same constraint override as
            // `predict`; each batch is one blocked solve per metric GP.
            let predict_batch = |pts: &[Vec<f64>]| -> Vec<SurrogatePrediction> {
                let mut preds = surrogate.predict_batch(pts);
                if constraints_from_target {
                    let t = surrogate.target();
                    let tps = t.tps.predict_batch(pts).expect("dim");
                    let lat = t.lat.predict_batch(pts).expect("dim");
                    for ((pred, tps), lat) in preds.iter_mut().zip(tps).zip(lat) {
                        pred.tps = tps;
                        pred.lat = lat;
                    }
                }
                preds
            };
            self.config.optimizer.optimize_batch(self.problem.dim(), &anchors, seed, true, |pts| {
                predict_batch(pts).iter().map(&value).collect()
            })
        } else {
            self.config.optimizer.optimize(self.problem.dim(), &anchors, seed, |p| {
                value(&predict(p))
            })
        }
    }

    fn check_convergence(&mut self) {
        if self.converged_at.is_some() {
            return;
        }
        let w = self.config.convergence_window;
        if self.history.len() < w + 1 {
            return;
        }
        let eps = self.config.convergence_epsilon;
        let tail = &self.history[self.history.len() - w - 1..];
        let within = |get: fn(&IterationRecord) -> f64| {
            let base = get(&tail[0]).abs().max(1e-12);
            tail.iter().all(|r| (get(r) - get(&tail[0])).abs() / base <= eps)
        };
        // §4: resource utilization, throughput and latency all stable.
        if within(|r| r.best_feasible_objective)
            && within(|r| r.observation.tps)
            && within(|r| r.observation.p99_ms)
        {
            self.converged_at = Some(self.history.len() - 1);
        }
    }

    /// Runs `iterations` steps and summarizes.
    pub fn run(&mut self, iterations: usize) -> TuningOutcome {
        for _ in 0..iterations {
            self.step();
        }
        self.outcome()
    }

    /// Summarizes what has been observed so far.
    pub fn outcome(&self) -> TuningOutcome {
        let (best_iteration, best_objective, best_config) = match &self.best {
            Some((it, obj, point)) => {
                let config = self
                    .problem
                    .knob_set
                    .to_configuration(point, &Configuration::dba_default());
                // Iteration 0 in `best` means "the default"; report None then.
                let default_obj = self.env.resource.value(&self.default_observation);
                if (obj - default_obj).abs() < 1e-12 && point == &self.default_point {
                    (None, Some(*obj), config)
                } else {
                    (Some(*it), Some(*obj), config)
                }
            }
            None => (None, None, Configuration::dba_default()),
        };
        TuningOutcome {
            history: self.history.clone(),
            default_observation: self.default_observation.clone(),
            sla: self.problem.constraints,
            best_config,
            best_objective,
            best_iteration,
            converged_at: self.converged_at,
            default_obj_value: self.env.resource.value(&self.default_observation),
            failures: self.failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> RestuneConfig {
        RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 60, local_sigma: 0.08 },
            gp: GpConfig { restarts: 1, adam_iters: 20, ..GpConfig::default() },
            dynamic_samples: 10,
            seed,
            ..Default::default()
        }
    }

    fn twitter_env(seed: u64) -> TuningEnvironment {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(seed)
            .build()
    }

    #[test]
    fn tuning_reduces_cpu_within_sla() {
        let mut session = TuningSession::new(twitter_env(1), quick_config(1));
        let outcome = session.run(25);
        let default = outcome.default_objective();
        let best = outcome.best_objective.unwrap();
        assert!(
            best < 0.6 * default,
            "expected a large CPU reduction: default {default:.1}%, best {best:.1}%"
        );
        // The incumbent is always feasible.
        for r in &outcome.history {
            if Some(r.iteration) == outcome.best_iteration {
                assert!(r.feasible);
            }
        }
    }

    #[test]
    fn incumbent_curve_is_monotone_nonincreasing() {
        let mut session = TuningSession::new(twitter_env(2), quick_config(2));
        let outcome = session.run(15);
        let curve = outcome.best_curve();
        for pair in curve.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9);
        }
    }

    #[test]
    fn default_observation_fixes_the_sla() {
        let session = TuningSession::new(twitter_env(3), quick_config(3));
        let sla = session.sla();
        assert_eq!(sla.min_tps, session.default_observation().tps);
        assert_eq!(sla.max_p99_ms, session.default_observation().p99_ms);
    }

    #[test]
    fn non_meta_sessions_bootstrap_with_lhs() {
        let mut session = TuningSession::new(twitter_env(4), quick_config(4));
        let r0 = session.step();
        let r1 = session.step();
        // LHS points differ and are not the default point.
        assert_ne!(r0.point, r1.point);
        assert!(r0.weights.is_none());
    }

    #[test]
    fn penalized_ei_respects_the_sla_indirectly() {
        let mut config = quick_config(8);
        config.acquisition = AcquisitionKind::PenalizedExpectedImprovement;
        let mut session = TuningSession::new(twitter_env(8), config);
        let outcome = session.run(20);
        // The penalty steers the search back to feasible space: the best is
        // feasible and beats the default.
        assert!(outcome.best_objective.unwrap() < outcome.default_obj_value);
        // After the bootstrap, most evaluations should be feasible (the
        // penalty discourages revisiting violating regions).
        let post = &outcome.history[10..];
        let feasible = post.iter().filter(|r| r.feasible).count();
        assert!(feasible * 2 >= post.len(), "only {feasible}/{} feasible", post.len());
    }

    #[test]
    fn dilution_guard_flag_is_respected() {
        // Smoke check: both settings run and produce identical history
        // lengths (behavioral differences are exercised by the ablation
        // harness; here we pin the plumbing).
        for guard in [true, false] {
            let mut config = quick_config(9);
            config.dilution_guard = guard;
            let outcome = TuningSession::new(twitter_env(9), config).run(6);
            assert_eq!(outcome.history.len(), 6);
        }
    }

    #[test]
    fn timing_breakdown_is_populated() {
        let mut session = TuningSession::new(twitter_env(5), quick_config(5));
        let r = session.step();
        assert!(r.timing.replay_s > 100.0, "replay dominates (simulated)");
        assert!(r.timing.model_update_s >= 0.0);
        assert!(r.timing.total_s() > r.timing.replay_s);
        // The new subcomponents are populated and nest inside model update.
        assert!(r.timing.gp_fit_s >= 0.0 && r.timing.weight_update_s >= 0.0);
        assert!(r.timing.gp_fit_s <= r.timing.model_update_s + 1e-9);
    }

    fn toy_learner(seed: u64) -> BaseLearner {
        let mut rng = xrand::rngs::StdRng::seed_from_u64(seed);
        let points: Vec<Vec<f64>> =
            (0..12).map(|_| (0..3).map(|_| rng.random::<f64>()).collect()).collect();
        let res: Vec<f64> = points.iter().map(|p| 30.0 + 40.0 * p[0] + 10.0 * p[1]).collect();
        let tps: Vec<f64> = points.iter().map(|p| 150.0 - 30.0 * p[2]).collect();
        let lat: Vec<f64> = points.iter().map(|p| 8.0 + 4.0 * p[1]).collect();
        let model = GpTaskModel::fit(&points, &res, &tps, &lat, &GpConfig::fixed()).unwrap();
        BaseLearner {
            task_id: format!("toy-{seed}"),
            workload: "toy".into(),
            instance: InstanceType::A,
            meta_feature: vec![0.2, 0.3, 0.5],
            promising_point: Some(points[0].clone()),
            model,
        }
    }

    #[test]
    fn degenerate_observations_degrade_to_exploration_not_panic() {
        // Regression: `fit_target(..).expect("target surrogate fit")` used to
        // abort the whole session when the observation set was degenerate.
        // A seeded NaN tuple must instead degrade to uniform exploration.
        let mut session = TuningSession::new(twitter_env(6), quick_config(6));
        session.seed_history(vec![0.5, 0.5, 0.5], f64::NAN, f64::NAN, f64::NAN);
        let r0 = session.step();
        assert!(r0.weights.is_none());
        assert!(r0.point.iter().all(|v| (0.0..=1.0).contains(v)));
        // Still degenerate on the next step; still no panic, and the session
        // keeps collecting real observations.
        let r1 = session.step();
        assert_ne!(r0.point, r1.point, "exploration points are re-seeded per iteration");
        assert!(session.iterations() == 2);
        // The outcome renders without panicking and the incumbent stays the
        // (feasible) default.
        let outcome = session.outcome();
        assert!(outcome.best_objective.unwrap().is_finite());
    }

    #[test]
    fn degenerate_fallback_is_deterministic() {
        let run = || {
            let mut s = TuningSession::new(twitter_env(11), quick_config(11));
            s.seed_history(vec![0.1, 0.2, 0.3], f64::INFINITY, 1.0, 1.0);
            (s.step().point, s.step().point)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_iterations_record_penalized_infeasible_observations() {
        use dbsim::FaultPlan;
        // Transients at a heavy rate with no retries: failures must surface
        // as records, never as panics, and never move the incumbent.
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(13)
            .fault_plan(FaultPlan::none().with_transient_rate(0.5).with_seed(3))
            .build();
        let mut config = quick_config(13);
        config.max_retries = 0;
        let mut session = TuningSession::new(env, config);
        let outcome = session.run(12);
        let failures = outcome.failures;
        assert!(failures.failed_iterations() > 0, "a 50% rate over 12 iters must fail some");
        for r in &outcome.history {
            match r.failure {
                Some(FailureKind::Crash) | Some(FailureKind::Timeout) => {
                    assert!(!r.feasible, "synthetic failure observations are infeasible");
                    assert!(r.objective.is_finite());
                    assert!(r.objective > outcome.default_obj_value, "penalty sits above default");
                    assert!(Some(r.iteration) != outcome.best_iteration);
                }
                _ => {}
            }
            assert!(r.observation.tps.is_finite() && r.observation.p99_ms.is_finite());
        }
    }

    #[test]
    fn retries_resolve_most_transients_and_are_counted() {
        use dbsim::FaultPlan;
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(14)
            .fault_plan(FaultPlan::none().with_transient_rate(0.3).with_seed(5))
            .build();
        let outcome = TuningSession::new(env, quick_config(14)).run(15);
        assert!(outcome.failures.retries > 0, "a 30% rate must consume retries");
        // With 2 retries, only ~2.7% of iterations hard-fail on average.
        assert!(
            outcome.failures.crashes + outcome.failures.timeouts <= 4,
            "retries should absorb most transients: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn parallel_and_serial_step_paths_are_bit_identical() {
        // The determinism contract of `RestuneConfig::parallel`: flipping it
        // changes thread fan-out and batching only, never a single bit of
        // the algorithmic trace — through the static bootstrap, the dynamic
        // weight switch, and batched acquisition scoring.
        let fingerprint = |o: &TuningOutcome| -> Vec<String> {
            o.history
                .iter()
                .map(|r| {
                    format!(
                        "{} {:?} {:?} {:?} {:?} {:?} {:?} {}",
                        r.iteration,
                        r.point,
                        r.objective,
                        r.feasible,
                        r.weights,
                        r.timing.replay_s,
                        r.failure,
                        r.retries
                    )
                })
                .collect()
        };
        let run = |parallel: bool| {
            let mut config = quick_config(21);
            config.init_iters = 3;
            config.parallel = parallel;
            let base = vec![toy_learner(1), toy_learner(2)];
            TuningSession::with_base_learners(twitter_env(21), config, base, vec![0.2, 0.3, 0.5])
                .run(8)
        };
        let par = run(true);
        let ser = run(false);
        assert_eq!(fingerprint(&par), fingerprint(&ser));
        assert_eq!(par.best_objective, ser.best_objective);
        assert_eq!(format!("{:?}", par.best_config), format!("{:?}", ser.best_config));
    }
}
