//! The ResTune tuning session (§4): evaluate the default to fix the SLA,
//! then iterate *recommend → apply → replay → observe*, with the adaptive
//! weight schema of §6.4.3 (meta-feature static weights for the first
//! iterations, ranking-loss dynamic weights afterwards).
//!
//! [`TuningSession`] is a thin facade: the run loop is
//! [`crate::driver::TuningDriver`], the recommendation policy is
//! [`crate::proposer::RestuneProposer`], and the apply/replay/record side is
//! [`crate::engine::EvalEngine`] (see DESIGN.md §11). This module keeps the
//! environment builder, the configuration, and the session API the rest of
//! the workspace programs against.

use crate::acquisition::{AcquisitionKind, AcquisitionOptimizer};
use crate::driver::TuningDriver;
use crate::engine::{EngineSettings, EvalEngine};
use crate::meta::BaseLearner;
use crate::problem::{ResourceKind, SlaConstraints};
use crate::proposer::RestuneProposer;
use crate::resilience::{FailureCounts, ReplayPolicy};
use crate::space::SpaceTransform;
use dbsim::{
    FaultPlan, InstanceType, KnobSet, Observation, SimulatedDbms, WorkloadSchedule, WorkloadSpec,
};
use gp::GpConfig;
use std::sync::Arc;

pub use crate::engine::{IterationRecord, IterationTiming, TuningOutcome};

/// The target DBMS copy plus the search space and objective.
#[derive(Debug, Clone)]
pub struct TuningEnvironment {
    /// The simulated DBMS copy under test.
    pub dbms: SimulatedDbms,
    /// The knob subspace being tuned.
    pub knob_set: KnobSet,
    /// The resource objective.
    pub resource: ResourceKind,
    /// Optional search-space transform (DESIGN.md §14). `None` tunes the
    /// native knob space; `Some` makes every proposer search the transform's
    /// low-dimensional space, with the engine lifting candidates at its
    /// evaluate/render seams.
    pub space: Option<Arc<dyn SpaceTransform>>,
}

impl TuningEnvironment {
    /// Starts a builder.
    pub fn builder() -> TuningEnvironmentBuilder {
        TuningEnvironmentBuilder::default()
    }

    /// The proposer-facing search dimensionality: the transform's `dim()`
    /// when one is installed, the knob set's otherwise.
    pub fn search_dim(&self) -> usize {
        self.space.as_ref().map(|t| t.dim()).unwrap_or_else(|| self.knob_set.dim())
    }
}

/// Builder for [`TuningEnvironment`].
#[derive(Debug, Clone)]
pub struct TuningEnvironmentBuilder {
    instance: InstanceType,
    workload: WorkloadSpec,
    resource: ResourceKind,
    knob_set: Option<KnobSet>,
    seed: u64,
    noise: Option<f64>,
    fault_plan: Option<FaultPlan>,
    space: Option<Arc<dyn SpaceTransform>>,
    schedule: Option<WorkloadSchedule>,
}

impl Default for TuningEnvironmentBuilder {
    fn default() -> Self {
        TuningEnvironmentBuilder {
            instance: InstanceType::A,
            workload: WorkloadSpec::sysbench(),
            resource: ResourceKind::Cpu,
            knob_set: None,
            seed: 0,
            noise: None,
            fault_plan: None,
            space: None,
            schedule: None,
        }
    }
}

impl TuningEnvironmentBuilder {
    /// Hardware environment (Table 1).
    pub fn instance(mut self, instance: InstanceType) -> Self {
        self.instance = instance;
        self
    }

    /// Target workload (Table 2).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Resource objective; also selects the default knob set.
    pub fn resource(mut self, resource: ResourceKind) -> Self {
        self.resource = resource;
        self
    }

    /// Overrides the knob set (e.g. the 3-knob case study).
    pub fn knob_set(mut self, set: KnobSet) -> Self {
        self.knob_set = Some(set);
        self
    }

    /// Simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Observation noise override (`0.0` = deterministic).
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Fault schedule for the replays (default: no faults).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs a search-space transform (DESIGN.md §14): proposers search
    /// the transform's low-dimensional space and the engine lifts candidates
    /// into the knob set's native space at evaluation time.
    pub fn space(mut self, transform: Arc<dyn SpaceTransform>) -> Self {
        self.space = Some(transform);
        self
    }

    /// Installs a workload schedule (DESIGN.md §16): the builder's workload
    /// becomes the schedule's base spec and the simulated DBMS evolves it
    /// deterministically by evaluation index. No schedule — or a static one
    /// — leaves the environment bit-identical to pre-schedule builds.
    pub fn schedule(mut self, schedule: WorkloadSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Builds the environment.
    pub fn build(self) -> TuningEnvironment {
        let mut dbms = SimulatedDbms::new(self.instance, self.workload, self.seed);
        if let Some(n) = self.noise {
            dbms = dbms.with_noise(n);
        }
        if let Some(plan) = self.fault_plan {
            dbms = dbms.with_fault_plan(plan);
        }
        if let Some(schedule) = self.schedule {
            dbms = dbms.with_schedule(schedule);
        }
        let knob_set = self.knob_set.unwrap_or_else(|| self.resource.default_knob_set());
        if let Some(t) = &self.space {
            assert_eq!(
                t.native_dim(),
                knob_set.dim(),
                "space transform native dimension must match the knob set"
            );
        }
        TuningEnvironment { dbms, knob_set, resource: self.resource, space: self.space }
    }
}

/// How the first `init_iters` iterations pick points when meta-learning is
/// active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Suggestions from the static-weight (meta-feature) ensemble — full
    /// ResTune.
    StaticWeights,
    /// Latin hypercube samples — the ResTune-w/o-Workload ablation of
    /// Figure 6(b).
    Lhs,
}

/// ResTune configuration (defaults follow §7 "Setting").
#[derive(Debug, Clone)]
pub struct RestuneConfig {
    /// Initialization iterations before switching to dynamic weights / after
    /// which LHS bootstrapping ends (paper: 10).
    pub init_iters: usize,
    /// Initialization point source when meta-learning is active.
    pub init_strategy: InitStrategy,
    /// GP fitting configuration.
    pub gp: GpConfig,
    /// Refit GP hyperparameters every `k` iterations once > 40 observations.
    pub refit_hypers_every: usize,
    /// On iterations that skip the hyperparameter refit, grow the target GPs
    /// by a rank-1 Cholesky append (`O(n^2)`) instead of refactoring from
    /// scratch (`O(n^3)`). The extended model keeps the hyperparameters of
    /// the last refit; the fallback cases (history prefix mismatch, jittered
    /// factor, sparse model) silently pay the full refit. Same-seed runs are
    /// deterministic either way (see DESIGN.md §13).
    pub incremental_refit: bool,
    /// Acquisition function (CEI for ResTune; EI reproduces iTuned).
    pub acquisition: AcquisitionKind,
    /// Acquisition optimizer budget.
    pub optimizer: AcquisitionOptimizer,
    /// Epanechnikov bandwidth ρ for static weights.
    pub static_bandwidth: f64,
    /// Posterior samples for dynamic weights (§6.4.2).
    pub dynamic_samples: usize,
    /// Cap on target observations entering the O(n²) ranking loss.
    pub max_rank_points: usize,
    /// Convergence window: no metric moves more than `convergence_epsilon`
    /// for this many consecutive iterations (§4: 0.5 % over 10 iterations).
    pub convergence_window: usize,
    /// Relative convergence threshold.
    pub convergence_epsilon: f64,
    /// RGPE weight-dilution guard (drop base-learners whose median ranking
    /// loss exceeds the target's 95th percentile). On by default; the
    /// ablation harness turns it off.
    pub dilution_guard: bool,
    /// During the static-weight bootstrap, source constraint predictions
    /// from the target learner only (see DESIGN.md §5b). On by default.
    pub static_constraints_from_target: bool,
    /// Run the recommend-side of each iteration parallel and batched: the
    /// three metric GPs fit on scoped threads, dynamic-weight posterior
    /// draws fan out one thread per learner, and acquisition candidates are
    /// scored in parallel chunks over batched predictions. Same-seed runs
    /// are bit-identical with this on or off (see DESIGN.md §8); off keeps
    /// the legacy serial per-point path for benchmarking.
    pub parallel: bool,
    /// Retry budget for transient replay failures (DESIGN.md §9).
    pub max_retries: usize,
    /// Initial retry backoff in simulated seconds (doubles per retry).
    pub retry_backoff_s: f64,
    /// Turn on the global trace collector (DESIGN.md §10) when the session
    /// is built. Off by default: the no-op sink costs one atomic load per
    /// instrumentation site. `trace::init_from_env()` / `RESTUNE_TRACE=1`
    /// offers the same switch without a config edit. Tracing reads clocks
    /// only — never RNG streams or observations — so enabling it cannot
    /// change tuning output.
    pub trace: bool,
    /// Emit a per-iteration `tuner.health` diagnostics event (DESIGN.md §15):
    /// GP calibration, ensemble weights + entropy, incumbent regret, the
    /// surrogate fit path, and failure tallies. Off by default; events only
    /// reach the collector while tracing is enabled. Like tracing itself the
    /// diagnostics are read-only over closed-form quantities — no RNG streams
    /// — so flipping this cannot change tuning output
    /// (`tests/determinism.rs` pins it).
    pub diag: bool,
    /// Algorithm seed (acquisition optimizer, weight sampling).
    pub seed: u64,
}

impl Default for RestuneConfig {
    fn default() -> Self {
        RestuneConfig {
            init_iters: 10,
            init_strategy: InitStrategy::StaticWeights,
            gp: GpConfig::default(),
            refit_hypers_every: 5,
            incremental_refit: true,
            acquisition: AcquisitionKind::ConstrainedExpectedImprovement,
            optimizer: AcquisitionOptimizer::default(),
            static_bandwidth: 0.2,
            dynamic_samples: 30,
            max_rank_points: 50,
            convergence_window: 10,
            convergence_epsilon: 0.005,
            dilution_guard: true,
            static_constraints_from_target: true,
            parallel: true,
            max_retries: 2,
            retry_backoff_s: 5.0,
            trace: false,
            diag: false,
            seed: 0,
        }
    }
}

/// A running ResTune tuning session.
///
/// A facade over the shared [`TuningDriver`] run loop: the session owns a
/// driver whose strategy is [`RestuneProposer`] and whose evaluation side is
/// the [`EvalEngine`] every method shares (DESIGN.md §11).
///
/// # Examples
///
/// ```
/// use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
/// use restune_core::problem::ResourceKind;
/// use restune_core::acquisition::AcquisitionOptimizer;
/// use dbsim::{InstanceType, KnobSet, WorkloadSpec};
///
/// let env = TuningEnvironment::builder()
///     .instance(InstanceType::A)
///     .workload(WorkloadSpec::twitter())
///     .resource(ResourceKind::Cpu)
///     .knob_set(KnobSet::case_study())
///     .seed(1)
///     .build();
/// let config = RestuneConfig {
///     optimizer: AcquisitionOptimizer { n_candidates: 200, n_local: 40, local_sigma: 0.1 },
///     ..Default::default()
/// };
/// let mut session = TuningSession::new(env, config);
/// let outcome = session.run(8);
/// assert_eq!(outcome.history.len(), 8);
/// // The incumbent is always SLA-feasible (the default until improved).
/// assert!(outcome.best_objective.unwrap() <= outcome.default_obj_value);
/// ```
pub struct TuningSession {
    driver: TuningDriver<RestuneProposer>,
}

impl TuningSession {
    /// A session without meta-learning (ResTune-w/o-ML): LHS bootstrap, then
    /// CEI over the target-only surrogate.
    pub fn new(env: TuningEnvironment, config: RestuneConfig) -> Self {
        Self::build(env, config, Vec::new(), Vec::new(), false)
    }

    /// A session boosted by historical base-learners (full ResTune).
    ///
    /// # Panics
    ///
    /// If any base learner was fitted on a knob space whose dimensionality
    /// differs from the environment's: mismatched learners are rejected at
    /// construction (with the offending task named) rather than producing
    /// dimensional nonsense at prediction time.
    pub fn with_base_learners(
        env: TuningEnvironment,
        config: RestuneConfig,
        base_learners: Vec<BaseLearner>,
        target_meta_feature: Vec<f64>,
    ) -> Self {
        let dim = env.search_dim();
        for b in &base_learners {
            assert_eq!(
                b.model.res.dim(),
                dim,
                "base learner {:?} was fitted on a {}-dim search space; the target space is {}-dim",
                b.task_id,
                b.model.res.dim(),
                dim
            );
        }
        Self::build(env, config, base_learners, target_meta_feature, true)
    }

    fn build(
        env: TuningEnvironment,
        config: RestuneConfig,
        base_learners: Vec<BaseLearner>,
        target_meta_feature: Vec<f64>,
        use_meta: bool,
    ) -> Self {
        if config.trace {
            trace::enable();
        }
        let dim = env.search_dim();
        let engine = EvalEngine::new(
            env,
            EngineSettings {
                policy: ReplayPolicy {
                    max_retries: config.max_retries,
                    backoff_s: config.retry_backoff_s,
                },
                convergence_window: config.convergence_window,
                convergence_epsilon: config.convergence_epsilon,
                // The default observation seeds the model and the incumbent.
                seed_default_observation: true,
            },
        );
        let seed = config.seed;
        let proposer =
            RestuneProposer::new(config, base_learners, target_meta_feature, use_meta, dim);
        TuningSession { driver: TuningDriver::new(engine, proposer, seed) }
    }

    /// Appends an externally collected observation tuple to the surrogate's
    /// training data without consuming a replay — warm-starting a session
    /// from measurements gathered outside it. Values enter the model
    /// verbatim; a degenerate tuple (NaN/inf) does not abort the session but
    /// degrades the next recommendations to uniform exploration until enough
    /// clean data accumulates (see DESIGN.md §9).
    pub fn seed_history(&mut self, point: Vec<f64>, res: f64, tps: f64, lat: f64) {
        self.driver.engine_mut().seed_history(point, res, tps, lat);
    }

    /// Installs a drift controller (DESIGN.md §16): after every committed
    /// iteration the controller may re-characterize the live workload and
    /// execute a warm restart. Builder-style so it chains onto construction.
    pub fn with_drift(mut self, controller: crate::drift::DriftController) -> Self {
        self.driver.set_drift(controller);
        self
    }

    /// The installed drift controller, if any (restart/seal tallies).
    pub fn drift(&self) -> Option<&crate::drift::DriftController> {
        self.driver.drift()
    }

    /// Replay-failure tally so far.
    pub fn failures(&self) -> FailureCounts {
        self.driver.engine().failures()
    }

    /// The SLA in force.
    pub fn sla(&self) -> SlaConstraints {
        self.driver.engine().sla()
    }

    /// The default observation.
    pub fn default_observation(&self) -> &Observation {
        self.driver.engine().default_observation()
    }

    /// Completed iterations.
    pub fn iterations(&self) -> usize {
        self.driver.engine().iterations()
    }

    /// Runs one iteration; returns the new record.
    pub fn step(&mut self) -> IterationRecord {
        self.driver.step()
    }

    /// Runs `iterations` steps and summarizes.
    pub fn run(&mut self, iterations: usize) -> TuningOutcome {
        self.driver.run(iterations)
    }

    /// Runs `iterations` steps and consumes the session into the final
    /// outcome without cloning the history.
    pub fn run_into_outcome(self, iterations: usize) -> TuningOutcome {
        self.driver.run_into_outcome(iterations)
    }

    /// Summarizes what has been observed so far (clones the history — prefer
    /// [`TuningSession::into_outcome`] at end of run).
    pub fn outcome(&self) -> TuningOutcome {
        self.driver.engine().outcome()
    }

    /// Consumes the session into its final outcome without cloning the
    /// history.
    pub fn into_outcome(self) -> TuningOutcome {
        self.driver.into_outcome()
    }

    /// Unwraps the session into the underlying driver — the same loop state,
    /// bit-for-bit, for callers (the fleet service) that schedule drivers
    /// directly instead of running the facade to completion.
    pub fn into_driver(self) -> TuningDriver<RestuneProposer> {
        self.driver
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::FailureKind;
    use crate::surrogate::GpTaskModel;
    use xrand::{RngExt, SeedableRng};

    fn quick_config(seed: u64) -> RestuneConfig {
        RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 60, local_sigma: 0.08 },
            gp: GpConfig { restarts: 1, adam_iters: 20, ..GpConfig::default() },
            dynamic_samples: 10,
            seed,
            ..Default::default()
        }
    }

    fn twitter_env(seed: u64) -> TuningEnvironment {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(seed)
            .build()
    }

    #[test]
    fn tuning_reduces_cpu_within_sla() {
        let mut session = TuningSession::new(twitter_env(1), quick_config(1));
        let outcome = session.run(25);
        let default = outcome.default_objective();
        let best = outcome.best_objective.unwrap();
        assert!(
            best < 0.6 * default,
            "expected a large CPU reduction: default {default:.1}%, best {best:.1}%"
        );
        // The incumbent is always feasible.
        for r in &outcome.history {
            if Some(r.iteration) == outcome.best_iteration {
                assert!(r.feasible);
            }
        }
    }

    #[test]
    fn incumbent_curve_is_monotone_nonincreasing() {
        let mut session = TuningSession::new(twitter_env(2), quick_config(2));
        let outcome = session.run(15);
        let curve = outcome.best_curve();
        for pair in curve.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9);
        }
    }

    #[test]
    fn default_observation_fixes_the_sla() {
        let session = TuningSession::new(twitter_env(3), quick_config(3));
        let sla = session.sla();
        assert_eq!(sla.min_tps, session.default_observation().tps);
        assert_eq!(sla.max_p99_ms, session.default_observation().p99_ms);
    }

    #[test]
    fn non_meta_sessions_bootstrap_with_lhs() {
        let mut session = TuningSession::new(twitter_env(4), quick_config(4));
        let r0 = session.step();
        let r1 = session.step();
        // LHS points differ and are not the default point.
        assert_ne!(r0.point, r1.point);
        assert!(r0.weights.is_none());
    }

    #[test]
    fn penalized_ei_respects_the_sla_indirectly() {
        let mut config = quick_config(8);
        config.acquisition = AcquisitionKind::PenalizedExpectedImprovement;
        let mut session = TuningSession::new(twitter_env(8), config);
        let outcome = session.run(20);
        // The penalty steers the search back to feasible space: the best is
        // feasible and beats the default.
        assert!(outcome.best_objective.unwrap() < outcome.default_obj_value);
        // After the bootstrap, most evaluations should be feasible (the
        // penalty discourages revisiting violating regions).
        let post = &outcome.history[10..];
        let feasible = post.iter().filter(|r| r.feasible).count();
        assert!(feasible * 2 >= post.len(), "only {feasible}/{} feasible", post.len());
    }

    #[test]
    fn dilution_guard_flag_is_respected() {
        // Smoke check: both settings run and produce identical history
        // lengths (behavioral differences are exercised by the ablation
        // harness; here we pin the plumbing).
        for guard in [true, false] {
            let mut config = quick_config(9);
            config.dilution_guard = guard;
            let outcome = TuningSession::new(twitter_env(9), config).run(6);
            assert_eq!(outcome.history.len(), 6);
        }
    }

    #[test]
    fn timing_breakdown_is_populated() {
        let mut session = TuningSession::new(twitter_env(5), quick_config(5));
        let r = session.step();
        assert!(r.timing.replay_s > 100.0, "replay dominates (simulated)");
        assert!(r.timing.model_update_s >= 0.0);
        assert!(r.timing.total_s() > r.timing.replay_s);
        // The new subcomponents are populated and nest inside model update.
        assert!(r.timing.gp_fit_s >= 0.0 && r.timing.weight_update_s >= 0.0);
        assert!(r.timing.gp_fit_s <= r.timing.model_update_s + 1e-9);
    }

    fn toy_learner(seed: u64) -> BaseLearner {
        let mut rng = xrand::rngs::StdRng::seed_from_u64(seed);
        let points: Vec<Vec<f64>> =
            (0..12).map(|_| (0..3).map(|_| rng.random::<f64>()).collect()).collect();
        let res: Vec<f64> = points.iter().map(|p| 30.0 + 40.0 * p[0] + 10.0 * p[1]).collect();
        let tps: Vec<f64> = points.iter().map(|p| 150.0 - 30.0 * p[2]).collect();
        let lat: Vec<f64> = points.iter().map(|p| 8.0 + 4.0 * p[1]).collect();
        let model = GpTaskModel::fit(&points, &res, &tps, &lat, &GpConfig::fixed()).unwrap();
        BaseLearner {
            task_id: format!("toy-{seed}"),
            workload: "toy".into(),
            instance: InstanceType::A,
            meta_feature: vec![0.2, 0.3, 0.5],
            promising_point: Some(points[0].clone()),
            model,
        }
    }

    #[test]
    fn degenerate_observations_degrade_to_exploration_not_panic() {
        // Regression: `fit_target(..).expect("target surrogate fit")` used to
        // abort the whole session when the observation set was degenerate.
        // A seeded NaN tuple must instead degrade to uniform exploration.
        let mut session = TuningSession::new(twitter_env(6), quick_config(6));
        session.seed_history(vec![0.5, 0.5, 0.5], f64::NAN, f64::NAN, f64::NAN);
        let r0 = session.step();
        assert!(r0.weights.is_none());
        assert!(r0.point.iter().all(|v| (0.0..=1.0).contains(v)));
        // Still degenerate on the next step; still no panic, and the session
        // keeps collecting real observations.
        let r1 = session.step();
        assert_ne!(r0.point, r1.point, "exploration points are re-seeded per iteration");
        assert!(session.iterations() == 2);
        // The outcome renders without panicking and the incumbent stays the
        // (feasible) default.
        let outcome = session.outcome();
        assert!(outcome.best_objective.unwrap().is_finite());
    }

    #[test]
    fn degenerate_fallback_is_deterministic() {
        let run = || {
            let mut s = TuningSession::new(twitter_env(11), quick_config(11));
            s.seed_history(vec![0.1, 0.2, 0.3], f64::INFINITY, 1.0, 1.0);
            (s.step().point, s.step().point)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_iterations_record_penalized_infeasible_observations() {
        use dbsim::FaultPlan;
        // Transients at a heavy rate with no retries: failures must surface
        // as records, never as panics, and never move the incumbent.
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(13)
            .fault_plan(FaultPlan::none().with_transient_rate(0.5).with_seed(3))
            .build();
        let mut config = quick_config(13);
        config.max_retries = 0;
        let mut session = TuningSession::new(env, config);
        let outcome = session.run(12);
        let failures = outcome.failures;
        assert!(failures.failed_iterations() > 0, "a 50% rate over 12 iters must fail some");
        for r in &outcome.history {
            match r.failure {
                Some(FailureKind::Crash) | Some(FailureKind::Timeout) => {
                    assert!(!r.feasible, "synthetic failure observations are infeasible");
                    assert!(r.objective.is_finite());
                    assert!(r.objective > outcome.default_obj_value, "penalty sits above default");
                    assert!(Some(r.iteration) != outcome.best_iteration);
                }
                _ => {}
            }
            assert!(r.observation.tps.is_finite() && r.observation.p99_ms.is_finite());
        }
    }

    #[test]
    fn retries_resolve_most_transients_and_are_counted() {
        use dbsim::FaultPlan;
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(14)
            .fault_plan(FaultPlan::none().with_transient_rate(0.3).with_seed(5))
            .build();
        let outcome = TuningSession::new(env, quick_config(14)).run(15);
        assert!(outcome.failures.retries > 0, "a 30% rate must consume retries");
        // With 2 retries, only ~2.7% of iterations hard-fail on average.
        assert!(
            outcome.failures.crashes + outcome.failures.timeouts <= 4,
            "retries should absorb most transients: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn parallel_and_serial_step_paths_are_bit_identical() {
        // The determinism contract of `RestuneConfig::parallel`: flipping it
        // changes thread fan-out and batching only, never a single bit of
        // the algorithmic trace — through the static bootstrap, the dynamic
        // weight switch, and batched acquisition scoring.
        let fingerprint = |o: &TuningOutcome| -> Vec<String> {
            o.history
                .iter()
                .map(|r| {
                    format!(
                        "{} {:?} {:?} {:?} {:?} {:?} {:?} {}",
                        r.iteration,
                        r.point,
                        r.objective,
                        r.feasible,
                        r.weights,
                        r.timing.replay_s,
                        r.failure,
                        r.retries
                    )
                })
                .collect()
        };
        let run = |parallel: bool| {
            let mut config = quick_config(21);
            config.init_iters = 3;
            config.parallel = parallel;
            let base = vec![toy_learner(1), toy_learner(2)];
            TuningSession::with_base_learners(twitter_env(21), config, base, vec![0.2, 0.3, 0.5])
                .run(8)
        };
        let par = run(true);
        let ser = run(false);
        assert_eq!(fingerprint(&par), fingerprint(&ser));
        assert_eq!(par.best_objective, ser.best_objective);
        assert_eq!(format!("{:?}", par.best_config), format!("{:?}", ser.best_config));
    }
}
