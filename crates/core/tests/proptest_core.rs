//! Property-based tests on ResTune's algorithmic invariants.

use proptest::prelude::*;
use restune_core::acquisition::{expected_improvement, ConstrainedExpectedImprovement};
use restune_core::lhs::latin_hypercube;
use restune_core::meta::{epanechnikov, ranking_loss};
use restune_core::scale::Standardizer;
use restune_core::surrogate::SurrogatePrediction;
use gp::Prediction;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- scale unification (§6.1) ----------------------------------------

    #[test]
    fn standardization_preserves_order(values in prop::collection::vec(-1e5..1e5f64, 2..40)) {
        let s = Standardizer::fit(&values);
        let z = s.transform_all(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                prop_assert_eq!(values[i] <= values[j], z[i] <= z[j]);
            }
        }
    }

    #[test]
    fn standardization_roundtrips(values in prop::collection::vec(-1e5..1e5f64, 2..40), probe in -1e5..1e5f64) {
        let s = Standardizer::fit(&values);
        let back = s.inverse(s.transform(probe));
        prop_assert!((back - probe).abs() <= 1e-6 * (1.0 + probe.abs()));
    }

    // ---- ranking loss (Eq. 9) ---------------------------------------------

    #[test]
    fn ranking_loss_bounds(pred in prop::collection::vec(-10.0..10.0f64, 2..20),
                           actual_seed in 0u64..100) {
        let n = pred.len();
        let actual: Vec<f64> =
            (0..n).map(|i| ((i as u64 * 31 + actual_seed) % 17) as f64).collect();
        let loss = ranking_loss(&pred, &actual);
        prop_assert!(loss <= n * (n - 1), "loss {} exceeds pair count", loss);
    }

    #[test]
    fn ranking_loss_zero_iff_order_preserving(values in prop::collection::vec(-10.0..10.0f64, 2..20)) {
        // A strictly increasing transform of the actual values has zero loss.
        let transformed: Vec<f64> = values.iter().map(|v| v * 3.0 + 7.0).collect();
        prop_assert_eq!(ranking_loss(&transformed, &values), 0);
        let exp: Vec<f64> = values.iter().map(|v| (v / 10.0).exp()).collect();
        prop_assert_eq!(ranking_loss(&exp, &values), 0);
    }

    #[test]
    fn ranking_loss_is_permutation_consistent(
        values in prop::collection::vec(-10.0..10.0f64, 3..12),
        swap_a in 0usize..12,
        swap_b in 0usize..12,
    ) {
        // Applying the same permutation to both pred and actual leaves the
        // loss unchanged.
        let n = values.len();
        let (a, b) = (swap_a % n, swap_b % n);
        let pred: Vec<f64> = values.iter().map(|v| v * 2.0).collect();
        let noisy_pred: Vec<f64> = values.iter().rev().cloned().collect();
        for p in [pred, noisy_pred] {
            let base = ranking_loss(&p, &values);
            let mut p2 = p.clone();
            let mut v2 = values.clone();
            p2.swap(a, b);
            v2.swap(a, b);
            prop_assert_eq!(ranking_loss(&p2, &v2), base);
        }
    }

    // ---- acquisition (Eqs. 2–5) --------------------------------------------

    #[test]
    fn ei_is_nonnegative_and_bounded(mean in -5.0..5.0f64, std in 0.0..3.0f64, best in -5.0..5.0f64) {
        let ei = expected_improvement(mean, std, best);
        prop_assert!(ei >= 0.0);
        // EI <= E|best - f| <= |best - mean| + std * sqrt(2/pi) + margin.
        prop_assert!(ei <= (best - mean).abs() + std + 1e-9);
    }

    #[test]
    fn ei_increases_with_uncertainty_when_mean_is_worse(
        mean in 0.5..3.0f64, s1 in 0.01..1.0f64, extra in 0.1..2.0f64,
    ) {
        // With mean above the incumbent (no certain improvement), more
        // variance means more EI.
        let best = 0.0;
        prop_assert!(expected_improvement(mean, s1 + extra, best)
            >= expected_improvement(mean, s1, best) - 1e-12);
    }

    #[test]
    fn cei_is_sandwiched(
        rmean in -3.0..3.0f64, rstd in 0.0..2.0f64,
        tmean in -3.0..3.0f64, tstd in 0.01..2.0f64,
        lmean in -3.0..3.0f64, lstd in 0.01..2.0f64,
        best in -3.0..3.0f64,
    ) {
        let cei = ConstrainedExpectedImprovement {
            best_feasible: Some(best),
            tps_floor: 0.0,
            lat_ceiling: 0.0,
        };
        let pred = SurrogatePrediction {
            res: Prediction { mean: rmean, variance: rstd * rstd },
            tps: Prediction { mean: tmean, variance: tstd * tstd },
            lat: Prediction { mean: lmean, variance: lstd * lstd },
        };
        let v = cei.value(&pred);
        let ei = expected_improvement(rmean, rstd, best);
        prop_assert!(v >= -1e-12);
        prop_assert!(v <= ei + 1e-12);
        let pf = cei.feasibility_probability(&pred);
        prop_assert!((0.0..=1.0).contains(&pf));
    }

    // ---- Epanechnikov kernel (Eq. 8) ----------------------------------------

    #[test]
    fn epanechnikov_properties(t in -3.0..3.0f64) {
        let v = epanechnikov(t);
        prop_assert!((0.0..=0.75).contains(&v));
        prop_assert_eq!(v, epanechnikov(-t));
        if t.abs() > 1.0 {
            prop_assert_eq!(v, 0.0);
        }
    }

    // ---- LHS --------------------------------------------------------------

    #[test]
    fn lhs_stratification_holds(n in 2usize..40, d in 1usize..8, seed in 0u64..50) {
        let samples = latin_hypercube(n, d, seed);
        prop_assert_eq!(samples.len(), n);
        for dim in 0..d {
            let mut strata: Vec<usize> =
                samples.iter().map(|s| ((s[dim] * n as f64).floor() as usize).min(n - 1)).collect();
            strata.sort_unstable();
            prop_assert_eq!(&strata, &(0..n).collect::<Vec<_>>());
        }
    }
}
