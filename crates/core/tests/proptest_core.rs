//! Property-based tests on ResTune's algorithmic invariants, on the in-tree
//! `propcheck` harness with fixed suite seeds.

use gp::Prediction;
use propcheck::{check, Config};
use restune_core::acquisition::{expected_improvement, ConstrainedExpectedImprovement};
use restune_core::lhs::latin_hypercube;
use restune_core::meta::{epanechnikov, ranking_loss};
use restune_core::scale::Standardizer;
use restune_core::surrogate::SurrogatePrediction;

// ---- scale unification (§6.1) ----------------------------------------------

#[test]
fn standardization_preserves_order() {
    check("standardization_preserves_order", Config::default().cases(128).seed(0x2E_0001), |g| {
        let n = g.usize_in(2, 39);
        let values = g.vec_f64(n, -1e5, 1e5);
        let s = Standardizer::fit(&values);
        let z = s.transform_all(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                propcheck::prop_assert_eq!(values[i] <= values[j], z[i] <= z[j]);
            }
        }
        Ok(())
    });
}

#[test]
fn standardization_roundtrips() {
    check("standardization_roundtrips", Config::default().cases(128).seed(0x2E_0002), |g| {
        let n = g.usize_in(2, 39);
        let values = g.vec_f64(n, -1e5, 1e5);
        let probe = g.f64_in(-1e5, 1e5);
        let s = Standardizer::fit(&values);
        let back = s.inverse(s.transform(probe));
        propcheck::prop_assert!((back - probe).abs() <= 1e-6 * (1.0 + probe.abs()));
        Ok(())
    });
}

// ---- ranking loss (Eq. 9) ---------------------------------------------------

#[test]
fn ranking_loss_bounds() {
    check("ranking_loss_bounds", Config::default().cases(128).seed(0x2E_0003), |g| {
        let n = g.usize_in(2, 19);
        let pred = g.vec_f64(n, -10.0, 10.0);
        let actual_seed = g.i64_in(0, 99) as u64;
        let actual: Vec<f64> =
            (0..n).map(|i| ((i as u64 * 31 + actual_seed) % 17) as f64).collect();
        let loss = ranking_loss(&pred, &actual);
        propcheck::prop_assert!(loss <= n * (n - 1), "loss {} exceeds pair count", loss);
        Ok(())
    });
}

#[test]
fn ranking_loss_zero_iff_order_preserving() {
    check(
        "ranking_loss_zero_iff_order_preserving",
        Config::default().cases(128).seed(0x2E_0004),
        |g| {
            // A strictly increasing transform of the actual values has zero loss.
            let n = g.usize_in(2, 19);
            let values = g.vec_f64(n, -10.0, 10.0);
            let transformed: Vec<f64> = values.iter().map(|v| v * 3.0 + 7.0).collect();
            propcheck::prop_assert_eq!(ranking_loss(&transformed, &values), 0);
            let exp: Vec<f64> = values.iter().map(|v| (v / 10.0).exp()).collect();
            propcheck::prop_assert_eq!(ranking_loss(&exp, &values), 0);
            Ok(())
        },
    );
}

#[test]
fn ranking_loss_is_permutation_consistent() {
    check(
        "ranking_loss_is_permutation_consistent",
        Config::default().cases(128).seed(0x2E_0005),
        |g| {
            // Applying the same permutation to both pred and actual leaves the
            // loss unchanged.
            let n = g.usize_in(3, 11);
            let values = g.vec_f64(n, -10.0, 10.0);
            let (a, b) = (g.usize_in(0, 11) % n, g.usize_in(0, 11) % n);
            let pred: Vec<f64> = values.iter().map(|v| v * 2.0).collect();
            let noisy_pred: Vec<f64> = values.iter().rev().cloned().collect();
            for p in [pred, noisy_pred] {
                let base = ranking_loss(&p, &values);
                let mut p2 = p.clone();
                let mut v2 = values.clone();
                p2.swap(a, b);
                v2.swap(a, b);
                propcheck::prop_assert_eq!(ranking_loss(&p2, &v2), base);
            }
            Ok(())
        },
    );
}

// ---- acquisition (Eqs. 2–5) -------------------------------------------------

#[test]
fn ei_is_nonnegative_and_bounded() {
    check("ei_is_nonnegative_and_bounded", Config::default().cases(128).seed(0x2E_0006), |g| {
        let mean = g.f64_in(-5.0, 5.0);
        let std = g.f64_in(0.0, 3.0);
        let best = g.f64_in(-5.0, 5.0);
        let ei = expected_improvement(mean, std, best);
        propcheck::prop_assert!(ei >= 0.0);
        // EI <= E|best - f| <= |best - mean| + std * sqrt(2/pi) + margin.
        propcheck::prop_assert!(ei <= (best - mean).abs() + std + 1e-9);
        Ok(())
    });
}

#[test]
fn ei_increases_with_uncertainty_when_mean_is_worse() {
    check(
        "ei_increases_with_uncertainty_when_mean_is_worse",
        Config::default().cases(128).seed(0x2E_0007),
        |g| {
            // With mean above the incumbent (no certain improvement), more
            // variance means more EI.
            let mean = g.f64_in(0.5, 3.0);
            let s1 = g.f64_in(0.01, 1.0);
            let extra = g.f64_in(0.1, 2.0);
            let best = 0.0;
            propcheck::prop_assert!(
                expected_improvement(mean, s1 + extra, best)
                    >= expected_improvement(mean, s1, best) - 1e-12
            );
            Ok(())
        },
    );
}

#[test]
fn cei_is_sandwiched() {
    check("cei_is_sandwiched", Config::default().cases(128).seed(0x2E_0008), |g| {
        let rmean = g.f64_in(-3.0, 3.0);
        let rstd = g.f64_in(0.0, 2.0);
        let tmean = g.f64_in(-3.0, 3.0);
        let tstd = g.f64_in(0.01, 2.0);
        let lmean = g.f64_in(-3.0, 3.0);
        let lstd = g.f64_in(0.01, 2.0);
        let best = g.f64_in(-3.0, 3.0);
        let cei = ConstrainedExpectedImprovement {
            best_feasible: Some(best),
            tps_floor: 0.0,
            lat_ceiling: 0.0,
        };
        let pred = SurrogatePrediction {
            res: Prediction { mean: rmean, variance: rstd * rstd },
            tps: Prediction { mean: tmean, variance: tstd * tstd },
            lat: Prediction { mean: lmean, variance: lstd * lstd },
        };
        let v = cei.value(&pred);
        let ei = expected_improvement(rmean, rstd, best);
        propcheck::prop_assert!(v >= -1e-12);
        propcheck::prop_assert!(v <= ei + 1e-12);
        let pf = cei.feasibility_probability(&pred);
        propcheck::prop_assert!((0.0..=1.0).contains(&pf));
        Ok(())
    });
}

// ---- Epanechnikov kernel (Eq. 8) --------------------------------------------

#[test]
fn epanechnikov_properties() {
    check("epanechnikov_properties", Config::default().cases(128).seed(0x2E_0009), |g| {
        let t = g.f64_in(-3.0, 3.0);
        let v = epanechnikov(t);
        propcheck::prop_assert!((0.0..=0.75).contains(&v));
        propcheck::prop_assert_eq!(v, epanechnikov(-t));
        if t.abs() > 1.0 {
            propcheck::prop_assert_eq!(v, 0.0);
        }
        Ok(())
    });
}

// ---- LHS --------------------------------------------------------------------

#[test]
fn lhs_stratification_holds() {
    check("lhs_stratification_holds", Config::default().cases(128).seed(0x2E_000A), |g| {
        let n = g.usize_in(2, 39);
        let d = g.usize_in(1, 7);
        let seed = g.i64_in(0, 49) as u64;
        let samples = latin_hypercube(n, d, seed);
        propcheck::prop_assert_eq!(samples.len(), n);
        for dim in 0..d {
            // `.min(n - 1)` is deliberate closed-downstream tolerance: even
            // with coordinates strictly below 1, `v * n` can round up to `n`
            // (e.g. (1 - 2⁻⁵³)·2 rounds to 2.0), so index consumers must
            // clamp — exactly as the quantization adapter does.
            let mut strata: Vec<usize> = samples
                .iter()
                .map(|s| ((s[dim] * n as f64).floor() as usize).min(n - 1))
                .collect();
            strata.sort_unstable();
            propcheck::prop_assert_eq!(&strata, &(0..n).collect::<Vec<_>>());
        }
        Ok(())
    });
}

#[test]
fn lhs_samples_stay_strictly_inside_the_half_open_cube() {
    // The sampler's contract is half-open [0,1): every coordinate must be
    // ≥ 0 and *strictly* below 1, across sizes that stress the top stratum
    // (small n makes the rounding-to-1.0 hazard most likely).
    check(
        "lhs_samples_stay_strictly_inside_the_half_open_cube",
        Config::default().cases(256).seed(0x2E_000B),
        |g| {
            let n = g.usize_in(1, 64);
            let d = g.usize_in(1, 12);
            let seed = g.i64_in(0, 9999) as u64;
            for s in latin_hypercube(n, d, seed) {
                for &v in &s {
                    propcheck::prop_assert!(v >= 0.0, "coordinate {v} below 0");
                    propcheck::prop_assert!(v < 1.0, "coordinate {v} reached the closed bound");
                }
            }
            Ok(())
        },
    );
}
