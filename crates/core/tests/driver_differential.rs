//! Differential test for the shared tuning loop: a scripted proposer feeds a
//! fixed point sequence through [`TuningDriver`]/[`EvalEngine`], and every
//! field of the resulting records is checked against expectations computed
//! independently from the simulator primitives (noiseless replays, the SLA
//! rule, and a hand-rolled running-incumbent fold) — none of which go through
//! the engine. Any drift in the engine's apply/replay/bookkeeping path shows
//! up as a field-level mismatch here before it can silently shift the golden
//! digests.

use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_core::driver::{Proposal, ProposalTiming, Proposer, TuningDriver};
use restune_core::engine::{EngineSettings, EvalEngine, HistoryView};
use restune_core::problem::{ResourceKind, SlaConstraints};
use restune_core::resilience::ReplayPolicy;
use restune_core::tuner::TuningEnvironment;

/// Replays a fixed script of points, logging what the driver hands it.
struct ScriptedProposer {
    script: Vec<Vec<f64>>,
    /// `(iter, seed, columns_at_propose, history_at_propose)` per propose.
    propose_log: Vec<(usize, u64, usize, usize)>,
    /// `(columns_at_observe, history_at_observe)` per observe.
    observe_log: Vec<(usize, usize)>,
    /// Model seconds attributed after each replay (an RL-style train step).
    post_replay_model_s: f64,
}

impl Proposer for ScriptedProposer {
    fn propose(&mut self, view: &HistoryView<'_>, iter: usize, seed: u64) -> Proposal {
        self.propose_log.push((iter, seed, view.points.len(), view.history.len()));
        Proposal {
            point: self.script[iter].clone(),
            weights: None,
            timing: ProposalTiming {
                meta_data_processing_s: 0.5,
                model_update_s: 1.0,
                gp_fit_s: 0.25,
                weight_update_s: 0.125,
                recommendation_s: 2.0,
            },
        }
    }

    fn observe(
        &mut self,
        view: &HistoryView<'_>,
        _record: &restune_core::tuner::IterationRecord,
    ) -> f64 {
        self.observe_log.push((view.points.len(), view.history.len()));
        self.post_replay_model_s
    }
}

fn scripted_points() -> Vec<Vec<f64>> {
    vec![
        vec![0.25, 0.25, 0.25],
        vec![1.0, 1.0, 1.0],
        vec![0.1, 0.6, 0.3],
        KnobSet::case_study().default_point(),
        vec![0.0, 0.0, 0.0],
    ]
}

fn noiseless_env(seed: u64) -> TuningEnvironment {
    TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        .noise(0.0)
        .build()
}

#[test]
fn scripted_sequence_matches_hand_computed_records() {
    let script = scripted_points();
    let engine = EvalEngine::new(
        noiseless_env(9),
        EngineSettings {
            policy: ReplayPolicy::default(),
            convergence_window: 10,
            convergence_epsilon: 0.005,
            seed_default_observation: false,
        },
    );
    let proposer = ScriptedProposer {
        script: script.clone(),
        propose_log: Vec::new(),
        observe_log: Vec::new(),
        post_replay_model_s: 0.75,
    };
    let mut driver = TuningDriver::new(engine, proposer, 9);
    for _ in 0..script.len() {
        driver.step();
    }

    // Independent reference: a second noiseless simulator at the same seed,
    // the SLA rule applied directly, and a hand-rolled incumbent fold.
    let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 9).with_noise(0.0);
    let knob_set = KnobSet::case_study();
    let base = Configuration::dba_default();
    let default_obs = dbms.evaluate_noiseless(&base);
    let sla = SlaConstraints::from_default_observation(&default_obs);
    let default_objective = default_obs.resources.cpu_pct;

    let outcome = driver.into_outcome();
    assert_eq!(outcome.history.len(), script.len());
    assert_eq!(outcome.default_obj_value, default_objective);

    let mut best: Option<(usize, f64, Vec<f64>)> = None;
    for (iter, point) in script.iter().enumerate() {
        let obs = dbms.evaluate_noiseless(&knob_set.to_configuration(point, &base));
        let objective = obs.resources.cpu_pct;
        let feasible = sla.is_feasible(&obs);
        if feasible && objective < best.as_ref().map(|b| b.1).unwrap_or(default_objective) {
            best = Some((iter, objective, point.clone()));
        }

        let r = &outcome.history[iter];
        assert_eq!(r.iteration, iter);
        assert_eq!(&r.point, point, "iter {iter}");
        assert_eq!(r.objective, objective, "iter {iter}: objective drifted");
        assert_eq!(r.observation.tps, obs.tps, "iter {iter}: tps drifted");
        assert_eq!(r.observation.p99_ms, obs.p99_ms, "iter {iter}: latency drifted");
        assert_eq!(r.feasible, feasible, "iter {iter}: SLA verdict drifted");
        assert_eq!(
            r.best_feasible_objective,
            best.as_ref().map(|b| b.1).unwrap_or(default_objective),
            "iter {iter}: incumbent fold drifted"
        );
        assert!(r.failure.is_none(), "noiseless replay must not fail");
        assert_eq!(r.retries, 0);
        assert!(r.weights.is_none());
    }

    // The rendered outcome agrees with the reference fold.
    match best {
        Some((iter, objective, ref point)) => {
            assert_eq!(outcome.best_iteration, Some(iter));
            assert_eq!(outcome.best_objective, Some(objective));
            assert_eq!(outcome.best_config, knob_set.to_configuration(point, &base));
        }
        None => {
            assert_eq!(outcome.best_iteration, None);
            assert_eq!(outcome.best_objective, Some(default_objective));
            assert_eq!(outcome.best_config, Configuration::dba_default());
        }
    }
    // The script deliberately contains improving points, so the reference
    // fold must have found one — otherwise this test vacuously passes.
    assert!(best.is_some(), "script never improved on the default");
}

#[test]
fn driver_hands_proposers_the_documented_seeds_and_views() {
    let script = scripted_points();
    let n = script.len();
    let engine = EvalEngine::new(
        noiseless_env(3),
        EngineSettings {
            policy: ReplayPolicy::default(),
            convergence_window: 10,
            convergence_epsilon: 0.005,
            seed_default_observation: true,
        },
    );
    let proposer = ScriptedProposer {
        script,
        propose_log: Vec::new(),
        observe_log: Vec::new(),
        post_replay_model_s: 0.75,
    };
    let driver_seed = 41u64;
    let mut driver = TuningDriver::new(engine, proposer, driver_seed);
    for _ in 0..n {
        driver.step();
    }

    let proposer = driver.proposer();
    assert_eq!(proposer.propose_log.len(), n);
    assert_eq!(proposer.observe_log.len(), n);
    for iter in 0..n {
        let (logged_iter, seed, columns, history) = proposer.propose_log[iter];
        assert_eq!(logged_iter, iter);
        // The per-iteration seed schedule is part of the driver's contract:
        // bit-identity of every ported method depends on it.
        assert_eq!(seed, driver_seed.wrapping_add(iter as u64).wrapping_mul(0x9E37));
        // At propose time the seeded default is the extra column and the
        // iteration itself is not yet visible.
        assert_eq!(columns, iter + 1);
        assert_eq!(history, iter);
        // At observe time the replay's column is in, but the record is not
        // yet committed — post-replay timing still lands in it.
        assert_eq!(proposer.observe_log[iter], (iter + 2, iter));
    }

    // Proposal-side timings pass through verbatim; observe()'s seconds are
    // folded into the committed record's model_update_s.
    let outcome = driver.into_outcome();
    for r in &outcome.history {
        assert_eq!(r.timing.meta_data_processing_s, 0.5);
        assert_eq!(r.timing.model_update_s, 1.0 + 0.75);
        assert_eq!(r.timing.gp_fit_s, 0.25);
        assert_eq!(r.timing.weight_update_s, 0.125);
        assert_eq!(r.timing.recommendation_s, 2.0);
        assert!(r.timing.replay_s > 0.0);
        assert_eq!(
            r.timing.total_s(),
            0.5 + 1.75 + 2.0 + r.timing.replay_s,
            "gp_fit/weight_update must not double-count"
        );
    }
}
