//! Property-based snapshot-isolation suite for the fleet's sharded
//! copy-on-write store (DESIGN.md §12): under randomly interleaved
//! concurrent commits and snapshots, every snapshot must be a
//! prefix-consistent view — no torn reads, no lost or reordered
//! observations — and rendering must be independent of the commit schedule.

use std::sync::Arc;

use propcheck::{check, Config};
use restune_core::fleet::{ShardedStore, StoreSnapshot};
use restune_core::problem::ResourceKind;
use restune_core::repository::TaskRecord;
use dbsim::InstanceType;

/// A tiny record labelled by committing tenant and per-tenant sequence
/// number, so any reordering or loss is visible in the task id.
fn record(tenant: u64, seq: usize) -> TaskRecord {
    TaskRecord {
        task_id: format!("t{tenant}#{seq}"),
        workload: format!("w{tenant}"),
        instance: InstanceType::A,
        resource: ResourceKind::Cpu,
        knob_names: vec!["k".into()],
        space_id: "native".into(),
        meta_feature: vec![tenant as f64, seq as f64],
        observations: Vec::new(),
    }
}

/// Every tenant's entries in `snap` must be exactly `t#0..t#j` in order —
/// a gapless prefix of that tenant's commit sequence (the "no torn reads,
/// no lost observations" half of the isolation contract).
fn assert_tenant_prefixes(snap: &StoreSnapshot) -> Result<(), String> {
    let mut per_tenant: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    for shard in snap.shards() {
        for e in shard.entries() {
            per_tenant.entry(e.tenant).or_default().push(e.record.task_id.clone());
        }
    }
    for (tenant, ids) in per_tenant {
        for (i, id) in ids.iter().enumerate() {
            let want = format!("t{tenant}#{i}");
            if *id != want {
                return Err(format!(
                    "tenant {tenant} snapshot is not a gapless prefix: \
                     position {i} holds {id}, want {want}"
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn concurrent_snapshots_are_prefix_consistent_and_nothing_is_lost() {
    check(
        "concurrent_snapshots_are_prefix_consistent_and_nothing_is_lost",
        Config::default().cases(24).seed(0xF1EE70001),
        |g| {
            let n_shards = g.usize_in(1, 8);
            let n_tenants = g.usize_in(1, 6) as u64;
            let commits_per_tenant = g.usize_in(1, 8);
            let n_snapshotters = g.usize_in(1, 3);
            let snaps_per_reader = g.usize_in(2, 6);

            let store = Arc::new(ShardedStore::new(n_shards));
            // Committers and snapshotters race freely; the properties below
            // must hold for every interleaving the OS produces.
            let observed: Vec<Vec<StoreSnapshot>> = std::thread::scope(|scope| {
                for tenant in 0..n_tenants {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        for seq in 0..commits_per_tenant {
                            store.commit(tenant, record(tenant, seq));
                        }
                    });
                }
                let readers: Vec<_> = (0..n_snapshotters)
                    .map(|_| {
                        let store = Arc::clone(&store);
                        scope.spawn(move || {
                            (0..snaps_per_reader)
                                .map(|_| {
                                    std::thread::yield_now();
                                    store.snapshot()
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                readers.into_iter().map(|h| h.join().expect("snapshotter")).collect()
            });

            // Nothing lost: the final state holds every commit, each tenant's
            // sequence complete and in order.
            let fin = store.snapshot();
            propcheck::prop_assert_eq!(
                fin.n_records(),
                n_tenants as usize * commits_per_tenant
            );
            assert_tenant_prefixes(&fin)?;

            for snaps in &observed {
                for snap in snaps {
                    // Prefix-consistent: pointer-equal per-shard prefix of
                    // the final state (no torn or half-applied commits)...
                    propcheck::prop_assert!(
                        snap.is_prefix_of(&fin),
                        "an observed snapshot is not a prefix of the final state"
                    );
                    // ...and internally gapless per tenant.
                    assert_tenant_prefixes(snap)?;
                }
                // One reader's successive snapshots are monotone.
                for pair in snaps.windows(2) {
                    propcheck::prop_assert!(
                        pair[0].is_prefix_of(&pair[1]),
                        "snapshots taken by one reader went backwards"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn rendering_is_independent_of_commit_interleaving() {
    check(
        "rendering_is_independent_of_commit_interleaving",
        Config::default().cases(32).seed(0xF1EE70002),
        |g| {
            let n_shards = g.usize_in(1, 6);
            let n_tenants = g.usize_in(1, 5) as u64;
            let commits_per_tenant = g.usize_in(1, 6);

            // Two random interleavings of the same per-tenant sequences:
            // repeatedly pick a tenant with commits remaining.
            let interleave = |gen: &mut propcheck::Gen| {
                let store = ShardedStore::new(n_shards);
                let mut next_seq = vec![0usize; n_tenants as usize];
                let mut remaining = n_tenants as usize * commits_per_tenant;
                while remaining > 0 {
                    let t = gen.usize_in(0, n_tenants as usize - 1);
                    if next_seq[t] < commits_per_tenant {
                        store.commit(t as u64, record(t as u64, next_seq[t]));
                        next_seq[t] += 1;
                        remaining -= 1;
                    }
                }
                store.snapshot().to_repository().to_json().expect("render")
            };
            let a = interleave(g);
            let b = interleave(g);
            propcheck::prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

#[test]
fn snapshots_pinned_before_commits_never_move() {
    check(
        "snapshots_pinned_before_commits_never_move",
        Config::default().cases(16).seed(0xF1EE70003),
        |g| {
            let store = ShardedStore::new(g.usize_in(1, 8));
            let before_commits = g.usize_in(0, 5);
            for seq in 0..before_commits {
                store.commit(1, record(1, seq));
            }
            let pinned = store.snapshot();
            let frozen_json = pinned.to_repository().to_json().expect("render");
            // Commits from other tenants (and tenant 1 itself) land after
            // the pin; the pinned view must not see any of them.
            for seq in before_commits..before_commits + g.usize_in(1, 6) {
                store.commit(1, record(1, seq));
                store.commit(2, record(2, seq - before_commits));
            }
            propcheck::prop_assert_eq!(pinned.n_records(), before_commits);
            propcheck::prop_assert_eq!(
                pinned.to_repository().to_json().expect("render"),
                frozen_json
            );
            propcheck::prop_assert!(pinned.is_prefix_of(&store.snapshot()));
            Ok(())
        },
    );
}
