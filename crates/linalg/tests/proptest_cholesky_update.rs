//! Property-based tests for the rank-1 Cholesky update/downdate/append
//! operations the incremental GP-refit path builds on.
//!
//! Runs on the in-tree `propcheck` harness with fixed suite seeds, so the
//! exact case sequence is reproducible offline.

use linalg::{Cholesky, LinalgError, Matrix};
use propcheck::{check, Config, Gen};

/// Builds a random SPD matrix `A = B B^T + n*I` from a flat coefficient vector.
fn spd_from_coeffs(n: usize, coeffs: &[f64]) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| coeffs[i * n + j]);
    let mut a = b.matmul(&b.transpose()).unwrap();
    a.add_diagonal(n as f64);
    a
}

/// Draws a dimension in `2..8` and a matching SPD matrix.
fn draw_spd(g: &mut Gen) -> (usize, Matrix) {
    let n = g.usize_in(2, 7);
    let coeffs = g.vec_f64(n * n, -3.0, 3.0);
    (n, spd_from_coeffs(n, &coeffs))
}

#[test]
fn update_reconstructs_a_plus_vvt() {
    check("update_reconstructs_a_plus_vvt", Config::default().cases(64).seed(0xC0DE_0011), |g| {
        let (n, a) = draw_spd(g);
        let v = g.vec_f64(n, -2.0, 2.0);
        let mut c = Cholesky::factor(&a).unwrap();
        c.update(&v).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        let scale = a.max_abs().max(1.0);
        for i in 0..n {
            for j in 0..n {
                let want = a[(i, j)] + v[i] * v[j];
                propcheck::prop_assert!((recon[(i, j)] - want).abs() <= 1e-8 * scale);
            }
        }
        // The updated factor stays a valid lower-triangular Cholesky factor.
        for i in 0..n {
            propcheck::prop_assert!(c.l()[(i, i)] > 0.0);
            for j in (i + 1)..n {
                propcheck::prop_assert!(c.l()[(i, j)] == 0.0);
            }
        }
        Ok(())
    });
}

#[test]
fn downdate_round_trips_update() {
    check("downdate_round_trips_update", Config::default().cases(64).seed(0xC0DE_0012), |g| {
        let (n, a) = draw_spd(g);
        let v = g.vec_f64(n, -2.0, 2.0);
        let base = Cholesky::factor(&a).unwrap();
        let mut c = base.clone();
        c.update(&v).unwrap();
        c.downdate(&v).unwrap();
        let scale = a.max_abs().max(1.0);
        for i in 0..n {
            for j in 0..=i {
                propcheck::prop_assert!(
                    (c.l()[(i, j)] - base.l()[(i, j)]).abs() <= 1e-7 * scale
                );
            }
        }
        Ok(())
    });
}

#[test]
fn append_row_matches_from_scratch_factor_bitwise() {
    check(
        "append_row_matches_from_scratch_factor_bitwise",
        Config::default().cases(64).seed(0xC0DE_0013),
        |g| {
            // Draw an (n+1)-dimensional SPD matrix, factor its leading n x n
            // block, then append the final row/column. The grown factor must
            // be bit-identical to factoring the whole matrix from scratch —
            // the contract the incremental GP refit path relies on.
            let m = g.usize_in(3, 8);
            let coeffs = g.vec_f64(m * m, -3.0, 3.0);
            let a = spd_from_coeffs(m, &coeffs);
            let n = m - 1;
            let lead = Matrix::from_fn(n, n, |i, j| a[(i, j)]);
            let mut c = Cholesky::factor(&lead).unwrap();
            let cross: Vec<f64> = (0..n).map(|j| a[(n, j)]).collect();
            c.append_row(&cross, a[(n, n)]).unwrap();
            let full = Cholesky::factor(&a).unwrap();
            propcheck::prop_assert!(c.dim() == m);
            for i in 0..m {
                for j in 0..=i {
                    propcheck::prop_assert!(
                        c.l()[(i, j)].to_bits() == full.l()[(i, j)].to_bits()
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn non_spd_downdates_are_rejected_cleanly() {
    check(
        "non_spd_downdates_are_rejected_cleanly",
        Config::default().cases(64).seed(0xC0DE_0014),
        |g| {
            let (n, a) = draw_spd(g);
            let mut c = Cholesky::factor(&a).unwrap();
            let before = c.l().clone();
            // Scale a random direction until vᵀv far exceeds the largest
            // diagonal entry: A - vvᵀ then has a negative eigenvalue.
            let mut v = g.vec_f64(n, 0.5, 2.0);
            let max_diag = (0..n).map(|i| a[(i, i)]).fold(0.0_f64, f64::max);
            let norm2: f64 = v.iter().map(|x| x * x).sum();
            let blow_up = (4.0 * n as f64 * max_diag / norm2).sqrt();
            for x in &mut v {
                *x *= blow_up;
            }
            let err = c.downdate(&v).unwrap_err();
            propcheck::prop_assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
            // The factor is untouched bit-for-bit after the rejection.
            for i in 0..n {
                for j in 0..n {
                    propcheck::prop_assert!(c.l()[(i, j)].to_bits() == before[(i, j)].to_bits());
                }
            }
            // And it is still usable: a benign update succeeds afterwards.
            let w = vec![0.1; n];
            propcheck::prop_assert!(c.update(&w).is_ok());
            Ok(())
        },
    );
}

#[test]
fn update_then_append_keeps_solves_consistent() {
    check(
        "update_then_append_keeps_solves_consistent",
        Config::default().cases(32).seed(0xC0DE_0015),
        |g| {
            // Mixed workload: update then append, verifying solves against
            // the explicitly assembled matrix.
            let (n, a) = draw_spd(g);
            let v = g.vec_f64(n, -1.0, 1.0);
            let mut c = Cholesky::factor(&a).unwrap();
            c.update(&v).unwrap();
            // Extend A + vvᵀ by a diagonally dominant row.
            let cross = g.vec_f64(n, -0.5, 0.5);
            let diag = 2.0 * n as f64;
            c.append_row(&cross, diag).unwrap();
            let mut big = Matrix::zeros(n + 1, n + 1);
            for i in 0..n {
                for j in 0..n {
                    big[(i, j)] = a[(i, j)] + v[i] * v[j];
                }
                big[(i, n)] = cross[i];
                big[(n, i)] = cross[i];
            }
            big[(n, n)] = diag;
            let x = g.vec_f64(n + 1, -3.0, 3.0);
            let b = big.matvec(&x).unwrap();
            let solved = c.solve(&b).unwrap();
            for i in 0..=n {
                propcheck::prop_assert!((solved[i] - x[i]).abs() <= 1e-5 * (1.0 + x[i].abs()));
            }
            Ok(())
        },
    );
}
