//! Property-based tests for the Cholesky factorization and solves.
//!
//! Runs on the in-tree `propcheck` harness with fixed suite seeds, so the
//! exact case sequence is reproducible offline.

use linalg::{Cholesky, Matrix};
use propcheck::{check, Config, Gen};

/// Builds a random SPD matrix `A = B B^T + n*I` from a flat coefficient vector.
fn spd_from_coeffs(n: usize, coeffs: &[f64]) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| coeffs[i * n + j]);
    let mut a = b.matmul(&b.transpose()).unwrap();
    a.add_diagonal(n as f64);
    a
}

/// Draws the `(n, coeffs)` pair the old proptest strategy produced: a
/// dimension in `2..8` and `n*n` coefficients in `[-3, 3)`.
fn draw_spd(g: &mut Gen) -> (usize, Matrix) {
    let n = g.usize_in(2, 7);
    let coeffs = g.vec_f64(n * n, -3.0, 3.0);
    (n, spd_from_coeffs(n, &coeffs))
}

#[test]
fn factor_reconstructs_spd() {
    check("factor_reconstructs_spd", Config::default().cases(64).seed(0xC0DE_0001), |g| {
        let (n, a) = draw_spd(g);
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        let scale = a.max_abs().max(1.0);
        for i in 0..n {
            for j in 0..n {
                propcheck::prop_assert!((recon[(i, j)] - a[(i, j)]).abs() <= 1e-8 * scale);
            }
        }
        Ok(())
    });
}

#[test]
fn solve_residual_is_small() {
    check("solve_residual_is_small", Config::default().cases(64).seed(0xC0DE_0002), |g| {
        let (n, a) = draw_spd(g);
        let x = g.vec_f64(n, -5.0, 5.0);
        let b = a.matvec(&x).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        let solved = c.solve(&b).unwrap();
        for i in 0..n {
            propcheck::prop_assert!((solved[i] - x[i]).abs() <= 1e-6 * (1.0 + x[i].abs()));
        }
        Ok(())
    });
}

#[test]
fn quadratic_form_is_nonnegative() {
    check("quadratic_form_is_nonnegative", Config::default().cases(64).seed(0xC0DE_0003), |g| {
        let (n, a) = draw_spd(g);
        let b = g.vec_f64(n, -5.0, 5.0);
        let c = Cholesky::factor(&a).unwrap();
        propcheck::prop_assert!(c.quadratic_form(&b).unwrap() >= -1e-12);
        Ok(())
    });
}

#[test]
fn log_determinant_is_finite_for_spd() {
    check("log_determinant_is_finite_for_spd", Config::default().cases(64).seed(0xC0DE_0004), |g| {
        let (_, a) = draw_spd(g);
        let c = Cholesky::factor(&a).unwrap();
        propcheck::prop_assert!(c.log_determinant().is_finite());
        Ok(())
    });
}

#[test]
fn matvec_linearity() {
    check("matvec_linearity", Config::default().cases(64).seed(0xC0DE_0005), |g| {
        let n = g.usize_in(2, 5);
        let coeffs = g.vec_f64(n * n, -3.0, 3.0);
        let a = spd_from_coeffs(n, &coeffs);
        let x = g.vec_f64(n, -5.0, 5.0);
        let y = g.vec_f64(n, -5.0, 5.0);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + q).collect();
        let lhs = a.matvec(&sum).unwrap();
        let ax = a.matvec(&x).unwrap();
        let ay = a.matvec(&y).unwrap();
        for i in 0..n {
            propcheck::prop_assert!((lhs[i] - (ax[i] + ay[i])).abs() <= 1e-8 * (1.0 + lhs[i].abs()));
        }
        Ok(())
    });
}
