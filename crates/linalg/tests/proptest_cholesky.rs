//! Property-based tests for the Cholesky factorization and solves.

use linalg::{Cholesky, Matrix};
use proptest::prelude::*;

/// Builds a random SPD matrix `A = B B^T + n*I` from a flat coefficient vector.
fn spd_from_coeffs(n: usize, coeffs: &[f64]) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| coeffs[i * n + j]);
    let mut a = b.matmul(&b.transpose()).unwrap();
    a.add_diagonal(n as f64);
    a
}

fn coeff_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0..3.0f64, n * n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn factor_reconstructs_spd((n, coeffs) in (2usize..8).prop_flat_map(|n| (Just(n), coeff_vec(n)))) {
        let a = spd_from_coeffs(n, &coeffs);
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        let scale = a.max_abs().max(1.0);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((recon[(i, j)] - a[(i, j)]).abs() <= 1e-8 * scale);
            }
        }
    }

    #[test]
    fn solve_residual_is_small((n, coeffs, x) in (2usize..8).prop_flat_map(|n| {
        (Just(n), coeff_vec(n), prop::collection::vec(-5.0..5.0f64, n))
    })) {
        let a = spd_from_coeffs(n, &coeffs);
        let b = a.matvec(&x).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        let solved = c.solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((solved[i] - x[i]).abs() <= 1e-6 * (1.0 + x[i].abs()));
        }
    }

    #[test]
    fn quadratic_form_is_nonnegative((n, coeffs, b) in (2usize..8).prop_flat_map(|n| {
        (Just(n), coeff_vec(n), prop::collection::vec(-5.0..5.0f64, n))
    })) {
        let a = spd_from_coeffs(n, &coeffs);
        let c = Cholesky::factor(&a).unwrap();
        prop_assert!(c.quadratic_form(&b).unwrap() >= -1e-12);
    }

    #[test]
    fn log_determinant_is_finite_for_spd((n, coeffs) in (2usize..8).prop_flat_map(|n| (Just(n), coeff_vec(n)))) {
        let a = spd_from_coeffs(n, &coeffs);
        let c = Cholesky::factor(&a).unwrap();
        prop_assert!(c.log_determinant().is_finite());
    }

    #[test]
    fn matvec_linearity((n, coeffs, x, y) in (2usize..6).prop_flat_map(|n| {
        (Just(n), coeff_vec(n),
         prop::collection::vec(-5.0..5.0f64, n),
         prop::collection::vec(-5.0..5.0f64, n))
    })) {
        let a = spd_from_coeffs(n, &coeffs);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + q).collect();
        let lhs = a.matvec(&sum).unwrap();
        let ax = a.matvec(&x).unwrap();
        let ay = a.matvec(&y).unwrap();
        for i in 0..n {
            prop_assert!((lhs[i] - (ax[i] + ay[i])).abs() <= 1e-8 * (1.0 + lhs[i].abs()));
        }
    }
}
