//! Cholesky factorization of symmetric positive-definite matrices, and the
//! solves the Gaussian-process stack builds on.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L L^T`.
///
/// Produced by [`Cholesky::factor`] (strict) or
/// [`Cholesky::factor_with_jitter`] (adds an escalating diagonal jitter, the
/// standard trick for kernel matrices that are positive definite only up to
/// floating-point error).
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that was added to the diagonal before the factorization
    /// succeeded (0.0 for a strict factorization).
    jitter: f64,
}

impl Cholesky {
    /// Factors `a` without jitter. Fails on non-square, non-finite, or
    /// non-positive-definite input.
    pub fn factor(a: &Matrix) -> Result<Self> {
        Self::factor_impl(a, 0.0)
    }

    /// Factors `a`, escalating diagonal jitter from `1e-10 * mean(diag)` by
    /// factors of 10 until the factorization succeeds or the jitter exceeds
    /// `1e-2 * mean(diag)`.
    ///
    /// Jitter can only rescue a matrix that is positive definite up to
    /// floating-point error; a non-square or non-finite input fails
    /// identically at every jitter level and is rejected after the first
    /// attempt instead of paying up to 9 more O(n³) factorizations.
    pub fn factor_with_jitter(a: &Matrix) -> Result<Self> {
        Self::factor_with_jitter_counted(a).0
    }

    /// [`Cholesky::factor_with_jitter`] exposing how many `factor_impl`
    /// attempts were spent — the unit that pins the early-return contract.
    fn factor_with_jitter_counted(a: &Matrix) -> (Result<Self>, usize) {
        let mut attempts = 1;
        match Self::factor_impl(a, 0.0) {
            Ok(c) => return (Ok(c), attempts),
            Err(e @ (LinalgError::NonFinite | LinalgError::NotSquare { .. })) => {
                return (Err(e), attempts)
            }
            Err(_) => {}
        }
        let n = a.rows();
        let mean_diag =
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>().max(f64::MIN_POSITIVE) / n as f64;
        let mut jitter = 1e-10 * mean_diag;
        let max_jitter = 1e-2 * mean_diag;
        loop {
            attempts += 1;
            match Self::factor_impl(a, jitter) {
                Ok(c) => return (Ok(c), attempts),
                Err(e) => {
                    if jitter >= max_jitter {
                        return (Err(e), attempts);
                    }
                    jitter *= 10.0;
                }
            }
        }
    }

    fn factor_impl(a: &Matrix, jitter: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        if !a.all_finite() {
            return Err(LinalgError::NonFinite);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // Row prefixes of `l` are contiguous: the dot is sequential.
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                let (li, lj) = (l.row(i), l.row(j));
                let mut acc = 0.0;
                for k in 0..j {
                    acc += li[k] * lj[k];
                }
                sum -= acc;
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: sum });
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        trace::count("linalg.cholesky.factor", 1);
        Ok(Cholesky { l, jitter })
    }

    /// Wraps an existing lower-triangular factor `L` (as produced by a prior
    /// factorization) so the solve routines can be reused without refactoring.
    ///
    /// The caller is responsible for `l` actually being a valid lower
    /// Cholesky factor (square, positive diagonal); this is checked with a
    /// debug assertion only.
    pub fn from_factor(l: Matrix) -> Self {
        debug_assert!(l.is_square());
        debug_assert!((0..l.rows()).all(|i| l[(i, i)] > 0.0));
        Cholesky { l, jitter: 0.0 }
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Consumes the factorization, yielding the factor without a copy (used
    /// by the incremental GP refit to hand the grown factor back to storage).
    pub fn into_factor(self) -> Matrix {
        self.l
    }

    /// Jitter added to succeed (0.0 if none).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch { expected: n, found: b.len() });
        }
        trace::count("linalg.cholesky.solve", 1);
        let mut y = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let mut acc = 0.0;
            for k in 0..i {
                acc += row[k] * y[k];
            }
            y[i] = (y[i] - acc) / row[i];
        }
        Ok(y)
    }

    /// Solves `L^T x = b` (backward substitution).
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch { expected: n, found: b.len() });
        }
        trace::count("linalg.cholesky.solve", 1);
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut acc = 0.0;
            for k in (i + 1)..n {
                acc += self.l[(k, i)] * x[k];
            }
            x[i] = (x[i] - acc) / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_upper(&self.solve_lower(b)?)
    }

    /// Solves `L Y = B` for a whole right-hand-side matrix in one blocked
    /// forward substitution (rows of `Y` computed across all columns at
    /// once, streaming over contiguous rows).
    ///
    /// Bit-compatibility contract: every column of the result is exactly
    /// what [`Cholesky::solve_lower`] returns for that column — the per-row
    /// accumulator sums terms in the same `k` order and subtracts once — so
    /// batched GP prediction can replace per-point solves without changing
    /// a single bit of output.
    pub fn solve_lower_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch { expected: n, found: b.rows() });
        }
        // One blocked pass stands in for `cols` per-column forward solves;
        // count it as such so batched and per-point paths tally comparably.
        trace::count("linalg.cholesky.solve", b.cols() as u64);
        let m = b.cols();
        let mut y = b.clone();
        let mut acc = vec![0.0; m];
        for i in 0..n {
            acc.fill(0.0);
            let lrow = self.l.row(i);
            for k in 0..i {
                let lik = lrow[k];
                let yrow = y.row(k);
                for c in 0..m {
                    acc[c] += lik * yrow[c];
                }
            }
            let diag = lrow[i];
            let yrow_i = y.row_mut(i);
            for c in 0..m {
                yrow_i[c] = (yrow_i[c] - acc[c]) / diag;
            }
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch { expected: n, found: b.rows() });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// The inverse `A^{-1}` (used by leave-one-out formulas; O(n^3)).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// `log |A| = 2 * sum_i log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `b^T A^{-1} b` computed stably as `||L^{-1} b||^2`.
    pub fn quadratic_form(&self, b: &[f64]) -> Result<f64> {
        let y = self.solve_lower(b)?;
        Ok(crate::vector::dot(&y, &y))
    }

    // ---- rank-1 updates --------------------------------------------------

    /// Rank-1 *update*: replaces this factor of `A` with the factor of
    /// `A + v vᵀ` in O(n²) via a sweep of Givens-style rotations
    /// (Golub & Van Loan §6.5.4), instead of an O(n³) refactorization.
    ///
    /// Adding `v vᵀ` to an SPD matrix keeps it SPD, so this cannot fail for
    /// finite `v` of the right length.
    pub fn update(&mut self, v: &[f64]) -> Result<()> {
        let n = self.dim();
        if v.len() != n {
            return Err(LinalgError::DimensionMismatch { expected: n, found: v.len() });
        }
        if v.iter().any(|x| !x.is_finite()) {
            return Err(LinalgError::NonFinite);
        }
        trace::count("linalg.cholesky.update", 1);
        let mut w = v.to_vec();
        for k in 0..n {
            let lkk = self.l[(k, k)];
            let r = (lkk * lkk + w[k] * w[k]).sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            self.l[(k, k)] = r;
            for i in (k + 1)..n {
                self.l[(i, k)] = (self.l[(i, k)] + s * w[i]) / c;
                w[i] = c * w[i] - s * self.l[(i, k)];
            }
        }
        Ok(())
    }

    /// Rank-1 *downdate*: replaces this factor of `A` with the factor of
    /// `A - v vᵀ` in O(n²). Fails with [`LinalgError::NotPositiveDefinite`]
    /// when the downdated matrix is no longer SPD; the stored factor is left
    /// untouched on any failure.
    pub fn downdate(&mut self, v: &[f64]) -> Result<()> {
        let n = self.dim();
        if v.len() != n {
            return Err(LinalgError::DimensionMismatch { expected: n, found: v.len() });
        }
        if v.iter().any(|x| !x.is_finite()) {
            return Err(LinalgError::NonFinite);
        }
        trace::count("linalg.cholesky.update", 1);
        // Work on a copy and commit only on success: a rejected downdate must
        // not leave a half-rotated (invalid) factor behind.
        let mut l = self.l.clone();
        let mut w = v.to_vec();
        for k in 0..n {
            let lkk = l[(k, k)];
            let r2 = lkk * lkk - w[k] * w[k];
            if r2 <= 0.0 || !r2.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: k, value: r2 });
            }
            let r = r2.sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            l[(k, k)] = r;
            for i in (k + 1)..n {
                l[(i, k)] = (l[(i, k)] - s * w[i]) / c;
                w[i] = c * w[i] - s * l[(i, k)];
            }
        }
        self.l = l;
        Ok(())
    }

    /// Grows the factor of an `n x n` matrix `A` to the factor of the
    /// `(n+1) x (n+1)` extension whose new off-diagonal row is `cross` and
    /// whose new diagonal entry is `diag`, in O(n²): one forward solve for
    /// the new row `l₁₂ = L⁻¹ cross` plus `l₂₂ = sqrt(diag - l₁₂ᵀl₁₂)`.
    ///
    /// Bit-compatibility contract: because row `i` of a Cholesky factor
    /// depends only on rows `0..=i` of the input, the grown factor is
    /// *bit-identical* to a from-scratch [`Cholesky::factor`] of the extended
    /// matrix — the forward solve and the final diagonal accumulate terms in
    /// exactly `factor`'s order (pinned by a property test). The caller is
    /// responsible for folding any jitter into `diag` themselves; the stored
    /// jitter is preserved unchanged.
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when the extension is
    /// not SPD (the Schur complement `diag - l₁₂ᵀl₁₂` is non-positive),
    /// leaving the factor untouched.
    pub fn append_row(&mut self, cross: &[f64], diag: f64) -> Result<()> {
        let n = self.dim();
        if cross.len() != n {
            return Err(LinalgError::DimensionMismatch { expected: n, found: cross.len() });
        }
        if cross.iter().any(|x| !x.is_finite()) || !diag.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        trace::count("linalg.cholesky.update", 1);
        // Forward solve, inlined rather than via `solve_lower` so the
        // accumulation order matches `factor_impl`'s inner loop exactly
        // (sequential k, one subtraction of the accumulated sum).
        let mut l12 = cross.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let mut acc = 0.0;
            for k in 0..i {
                acc += l12[k] * row[k];
            }
            let sum = l12[i] - acc;
            l12[i] = sum / row[i];
        }
        let mut acc = 0.0;
        for k in 0..n {
            acc += l12[k] * l12[k];
        }
        let schur = diag - acc;
        if schur <= 0.0 || !schur.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: n, value: schur });
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            let (dst, src) = (grown.row_mut(i), self.l.row(i));
            dst[..n].copy_from_slice(src);
        }
        let last = grown.row_mut(n);
        last[..n].copy_from_slice(&l12);
        last[n] = schur.sqrt();
        self.l = grown;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B B^T + I for B = [[1,2],[3,4],[5,6]] is SPD.
        Matrix::from_vec(3, 3, vec![6.0, 11.0, 17.0, 11.0, 26.0, 39.0, 17.0, 39.0, 62.0])
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}]={} vs {}", x[i], x_true[i]);
        }
    }

    #[test]
    fn log_determinant_matches_2x2_formula() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let c = Cholesky::factor(&a).unwrap();
        // det = 4*3 - 2*2 = 8
        assert!((c.log_determinant() - 8.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(Cholesky::factor(&a), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn jitter_rescues_semidefinite_matrix() {
        // Rank-1 matrix: strictly semidefinite, strict factorization fails.
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        assert!(Cholesky::factor(&a).is_err());
        let c = Cholesky::factor_with_jitter(&a).unwrap();
        assert!(c.jitter() > 0.0);
    }

    #[test]
    fn non_finite_is_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, f64::NAN, f64::NAN, 1.0]);
        assert!(matches!(Cholesky::factor(&a), Err(LinalgError::NonFinite)));
    }

    #[test]
    fn solve_lower_matrix_matches_per_column_solves_bitwise() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(3, 4, |i, j| (i as f64 + 1.3) * (j as f64 - 0.7));
        let y = c.solve_lower_matrix(&b).unwrap();
        for j in 0..4 {
            let col = c.solve_lower(&b.col(j)).unwrap();
            for i in 0..3 {
                assert_eq!(y[(i, j)].to_bits(), col[i].to_bits(), "entry ({i}, {j})");
            }
        }
    }

    #[test]
    fn solve_lower_matrix_rejects_wrong_height() {
        let c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.solve_lower_matrix(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn jitter_escalation_stops_immediately_on_non_finite_input() {
        // Regression: jitter cannot fix a NaN/Inf matrix, so the escalation
        // loop must not burn up to 9 more O(n³) factorizations on one.
        let a = Matrix::from_vec(2, 2, vec![1.0, f64::NAN, f64::NAN, 1.0]);
        let (res, attempts) = Cholesky::factor_with_jitter_counted(&a);
        assert!(matches!(res, Err(LinalgError::NonFinite)));
        assert_eq!(attempts, 1, "non-finite input must fail on the first attempt");

        let inf = Matrix::from_vec(2, 2, vec![1.0, f64::INFINITY, f64::INFINITY, 1.0]);
        let (res, attempts) = Cholesky::factor_with_jitter_counted(&inf);
        assert!(matches!(res, Err(LinalgError::NonFinite)));
        assert_eq!(attempts, 1);

        // A genuinely semidefinite matrix still goes through the escalation.
        let semi = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let (res, attempts) = Cholesky::factor_with_jitter_counted(&semi);
        assert!(res.is_ok());
        assert!(attempts > 1, "jitter escalation should have been exercised");
    }

    #[test]
    fn rank1_update_reconstructs_a_plus_vvt() {
        let a = spd3();
        let mut c = Cholesky::factor(&a).unwrap();
        let v = vec![0.7, -1.2, 0.4];
        c.update(&v).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let want = a[(i, j)] + v[i] * v[j];
                assert!((recon[(i, j)] - want).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn downdate_inverts_update() {
        let a = spd3();
        let base = Cholesky::factor(&a).unwrap();
        let v = vec![0.3, 0.9, -0.5];
        let mut c = base.clone();
        c.update(&v).unwrap();
        c.downdate(&v).unwrap();
        for i in 0..3 {
            for j in 0..=i {
                assert!(
                    (c.l()[(i, j)] - base.l()[(i, j)]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    c.l()[(i, j)],
                    base.l()[(i, j)]
                );
            }
        }
    }

    #[test]
    fn non_spd_downdate_is_rejected_and_leaves_factor_intact() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 2.0]);
        let mut c = Cholesky::factor(&a).unwrap();
        let before = c.l().clone();
        // Subtracting 9·e₀e₀ᵀ makes the (0,0) entry negative: not SPD.
        let err = c.downdate(&[3.0, 0.0]).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(c.l()[(i, j)].to_bits(), before[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn append_row_matches_from_scratch_factorization_bitwise() {
        // A 4x4 SPD matrix; factor the leading 3x3 block, then append the
        // last row/column and compare against factoring the whole thing.
        let b = Matrix::from_fn(4, 3, |i, j| (i as f64 + 0.3) * (j as f64 - 1.1) + 0.7);
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(4.0);
        let lead = Matrix::from_fn(3, 3, |i, j| a[(i, j)]);
        let mut c = Cholesky::factor(&lead).unwrap();
        let cross: Vec<f64> = (0..3).map(|j| a[(3, j)]).collect();
        c.append_row(&cross, a[(3, 3)]).unwrap();
        let full = Cholesky::factor(&a).unwrap();
        for i in 0..4 {
            for j in 0..=i {
                assert_eq!(
                    c.l()[(i, j)].to_bits(),
                    full.l()[(i, j)].to_bits(),
                    "({i},{j}): {} vs {}",
                    c.l()[(i, j)],
                    full.l()[(i, j)]
                );
            }
        }
    }

    #[test]
    fn append_row_rejects_non_spd_extension_and_bad_input() {
        let mut c = Cholesky::factor(&spd3()).unwrap();
        let before = c.l().clone();
        // Huge cross-covariances make the Schur complement negative.
        let err = c.append_row(&[100.0, 100.0, 100.0], 1.0).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { pivot: 3, .. }));
        assert!(matches!(
            c.append_row(&[f64::NAN, 0.0, 0.0], 1.0),
            Err(LinalgError::NonFinite)
        ));
        assert!(matches!(
            c.append_row(&[1.0], 1.0),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert_eq!(c.dim(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.l()[(i, j)].to_bits(), before[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn quadratic_form_matches_direct_computation() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = c.solve(&b).unwrap();
        let direct = crate::vector::dot(&b, &x);
        assert!((c.quadratic_form(&b).unwrap() - direct).abs() < 1e-9);
    }
}
