//! Small slice-based vector helpers shared across the workspace.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc.sqrt()
}

/// `y <- y + alpha * x` (axpy).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

/// In-place scale `x <- alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Element-wise subtraction `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population standard deviation (0.0 for slices of length < 2).
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / a.len() as f64).sqrt()
}

/// Minimum of a slice, `None` if empty or any element is NaN.
pub fn min(a: &[f64]) -> Option<f64> {
    if a.is_empty() || a.iter().any(|v| v.is_nan()) {
        return None;
    }
    Some(a.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Maximum of a slice, `None` if empty or any element is NaN.
pub fn max(a: &[f64]) -> Option<f64> {
    if a.is_empty() || a.iter().any(|v| v.is_nan()) {
        return None;
    }
    Some(a.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

/// Index of the minimum element (first occurrence). `None` if empty/NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            return None;
        }
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum element (first occurrence). `None` if empty/NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            return None;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_distance_matches_hand_computation() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn mean_and_std() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        assert!((std_dev(&a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_handled() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmin_argmax_first_occurrence() {
        let a = [3.0, 1.0, 1.0, 5.0, 5.0];
        assert_eq!(argmin(&a), Some(1));
        assert_eq!(argmax(&a), Some(3));
    }

    #[test]
    fn nan_poisons_extrema() {
        assert_eq!(min(&[1.0, f64::NAN]), None);
        assert_eq!(argmax(&[1.0, f64::NAN]), None);
    }
}
