//! Minimal dense linear algebra for Gaussian-process surrogate models.
//!
//! The ResTune reproduction rebuilds all surrogate math from scratch (there is
//! no BoTorch equivalent available offline), so this crate provides exactly the
//! primitives the Gaussian-process stack needs:
//!
//! * a column-owning dense [`Matrix`] with row-major storage,
//! * [`Cholesky`] factorization of symmetric positive-definite matrices with
//!   adaptive jitter,
//! * forward/backward triangular solves, SPD solves and inverses,
//!   log-determinants,
//! * small vector helpers ([`vector`] module) used throughout the workspace.
//!
//! Everything is `f64`; sizes in this project are small (a few hundred
//! observations, a few dozen dimensions), so clarity and numerical robustness
//! are prioritized over blocked/SIMD kernels. Operations that matter for the
//! O(n^3) GP hot path (`Cholesky::factor`, the triangular solves) are written
//! cache-friendly over contiguous rows.

// Indexed loops are intentional in the numeric kernels below: they mirror
// the textbook formulations and keep bounds explicit.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod matrix;
pub mod vector;

pub use cholesky::Cholesky;
pub use matrix::Matrix;

/// Errors produced by factorizations and solves.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is not square where a square matrix is required.
    NotSquare { rows: usize, cols: usize },
    /// Dimension mismatch between operands.
    DimensionMismatch { expected: usize, found: usize },
    /// Cholesky failed even after the maximum jitter was added.
    NotPositiveDefinite { pivot: usize, value: f64 },
    /// A numeric argument was invalid (NaN/inf where finite required).
    NonFinite,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite at pivot {pivot} (value {value:.3e}) even with jitter"
            ),
            LinalgError::NonFinite => write!(f, "non-finite value encountered"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
