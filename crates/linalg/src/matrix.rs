//! Dense row-major matrix type.

use crate::{LinalgError, Result};

/// A dense `f64` matrix with row-major storage.
///
/// Rows are contiguous, which keeps the Cholesky inner loops (dot products of
/// row prefixes) sequential in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row-major data. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch { expected: self.cols, found: x.len() });
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            out[i] = crate::vector::dot(self.row(i), x);
        }
        Ok(out)
    }

    /// Matrix-matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: stream over contiguous rows of `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for j in 0..orow.len() {
                    out_row[j] += a * orow[j];
                }
            }
        }
        Ok(out)
    }

    /// Removes row `i` and column `i` (used by leave-one-out GP updates).
    pub fn without_row_col(&self, idx: usize) -> Matrix {
        assert!(self.is_square() && idx < self.rows);
        let n = self.rows - 1;
        Matrix::from_fn(n, n, |i, j| {
            let si = if i < idx { i } else { i + 1 };
            let sj = if j < idx { j } else { j + 1 };
            self[(si, sj)]
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Checks whether all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Symmetrizes in place: `A <- (A + A^T) / 2`. Useful before factorizing
    /// kernels assembled with floating-point asymmetry.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Adds `value` to every diagonal entry.
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }
}

impl minjson::ToJson for Matrix {
    fn to_json(&self) -> minjson::Json {
        minjson::Json::Obj(vec![
            ("rows".to_string(), minjson::ToJson::to_json(&self.rows)),
            ("cols".to_string(), minjson::ToJson::to_json(&self.cols)),
            ("data".to_string(), minjson::ToJson::to_json(&self.data)),
        ])
    }
}

impl minjson::FromJson for Matrix {
    fn from_json(v: &minjson::Json) -> std::result::Result<Self, minjson::JsonError> {
        let rows: usize = minjson::FromJson::from_json(v.field("rows")?)?;
        let cols: usize = minjson::FromJson::from_json(v.field("cols")?)?;
        let data: Vec<f64> = minjson::FromJson::from_json(v.field("data")?)?;
        if data.len() != rows * cols {
            return Err(minjson::JsonError::new(format!(
                "matrix data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn without_row_col_removes_correct_entries() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let b = a.without_row_col(1);
        assert_eq!(b.rows(), 2);
        assert_eq!(b[(0, 0)], 0.0);
        assert_eq!(b[(0, 1)], 2.0);
        assert_eq!(b[(1, 0)], 6.0);
        assert_eq!(b[(1, 1)], 8.0);
    }

    #[test]
    fn symmetrize_produces_symmetric_matrix() {
        let mut a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        a.symmetrize();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn add_diagonal_shifts_trace_only() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(2.5);
        assert_eq!(a[(0, 0)], 2.5);
        assert_eq!(a[(1, 1)], 2.5);
        assert_eq!(a[(2, 2)], 2.5);
        assert_eq!(a[(0, 1)], 0.0);
    }
}
