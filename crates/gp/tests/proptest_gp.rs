//! Property-based tests on Gaussian-process invariants, on the in-tree
//! `propcheck` harness with fixed suite seeds.

use gp::{GaussianProcess, GpConfig};
use propcheck::{check, Config, Gen};

/// Draws what the old proptest `dataset()` strategy produced: `n` points in
/// `2..12`, dimension in `1..4`, inputs in `[0, 1)`, targets in `[-2, 2)`.
fn draw_dataset(g: &mut Gen) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = g.usize_in(2, 11);
    let d = g.usize_in(1, 3);
    let xs: Vec<Vec<f64>> = (0..n).map(|_| g.vec_f64(d, 0.0, 1.0)).collect();
    let ys = g.vec_f64(n, -2.0, 2.0);
    (xs, ys)
}

#[test]
fn posterior_variance_is_nonnegative() {
    check("posterior_variance_is_nonnegative", Config::default().cases(48).seed(0x6B_0001), |g| {
        let (xs, ys) = draw_dataset(g);
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        for i in 0..20 {
            let p: Vec<f64> = (0..gp.dim()).map(|j| ((i * 7 + j * 3) % 11) as f64 / 10.0).collect();
            let pred = gp.predict(&p).unwrap();
            propcheck::prop_assert!(pred.variance >= 0.0);
            propcheck::prop_assert!(pred.mean.is_finite());
        }
        Ok(())
    });
}

#[test]
fn adding_data_never_increases_variance_at_new_point() {
    check(
        "adding_data_never_increases_variance_at_new_point",
        Config::default().cases(48).seed(0x6B_0002),
        |g| {
            // Fit on a prefix, then the full set; variance at any point must not grow.
            let (xs, ys) = draw_dataset(g);
            let half = xs.len() / 2;
            let gp_small =
                GaussianProcess::fit(xs[..half].to_vec(), ys[..half].to_vec(), &GpConfig::fixed())
                    .unwrap();
            let gp_full = GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).unwrap();
            let probe: Vec<f64> = vec![0.5; gp_full.dim()];
            let vs = gp_small.predict(&probe).unwrap().variance;
            let vf = gp_full.predict(&probe).unwrap().variance;
            propcheck::prop_assert!(vf <= vs + 1e-6, "variance grew from {vs} to {vf} with more data");
            Ok(())
        },
    );
}

#[test]
fn log_marginal_likelihood_is_finite() {
    check("log_marginal_likelihood_is_finite", Config::default().cases(48).seed(0x6B_0003), |g| {
        let (xs, ys) = draw_dataset(g);
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        propcheck::prop_assert!(gp.log_marginal_likelihood().is_finite());
        Ok(())
    });
}

#[test]
fn loo_has_one_prediction_per_observation() {
    check("loo_has_one_prediction_per_observation", Config::default().cases(48).seed(0x6B_0004), |g| {
        let (xs, ys) = draw_dataset(g);
        let n = xs.len();
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        let loo = gp.loo_predictions().unwrap();
        propcheck::prop_assert_eq!(loo.len(), n);
        for p in &loo {
            propcheck::prop_assert!(p.variance >= 0.0);
            propcheck::prop_assert!(p.mean.is_finite());
        }
        Ok(())
    });
}

#[test]
fn constant_shift_moves_predictions_by_the_shift() {
    check(
        "constant_shift_moves_predictions_by_the_shift",
        Config::default().cases(48).seed(0x6B_0005),
        |g| {
            let (xs, ys) = draw_dataset(g);
            let shift = g.f64_in(-10.0, 10.0);
            let gp_a = GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).unwrap();
            let shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
            let gp_b = GaussianProcess::fit(xs, shifted, &GpConfig::fixed()).unwrap();
            let probe: Vec<f64> = vec![0.3; gp_a.dim()];
            let pa = gp_a.predict(&probe).unwrap();
            let pb = gp_b.predict(&probe).unwrap();
            propcheck::prop_assert!((pb.mean - pa.mean - shift).abs() < 1e-8);
            propcheck::prop_assert!((pb.variance - pa.variance).abs() < 1e-8);
            Ok(())
        },
    );
}

#[test]
fn predict_batch_matches_per_point_predict_bit_for_bit() {
    // The batched path (one cross-kernel matrix, one blocked triangular
    // solve) must be indistinguishable from the scalar path at the bit
    // level — this is what lets the acquisition optimizer score candidates
    // in parallel chunks without perturbing any seeded run.
    check(
        "predict_batch_matches_per_point_predict_bit_for_bit",
        Config::default().cases(48).seed(0x6B_0006),
        |g| {
            let (xs, ys) = draw_dataset(g);
            let cfg = if g.flag() {
                GpConfig::fixed()
            } else {
                GpConfig { restarts: 1, adam_iters: 10, seed: 17, ..Default::default() }
            };
            let gp = GaussianProcess::fit(xs, ys, &cfg).unwrap();
            let m = g.usize_in(1, 40);
            let pts: Vec<Vec<f64>> = (0..m).map(|_| g.vec_f64(gp.dim(), -0.5, 1.5)).collect();
            let batch = gp.predict_batch(&pts).unwrap();
            propcheck::prop_assert_eq!(batch.len(), pts.len());
            for (p, b) in pts.iter().zip(&batch) {
                let single = gp.predict(p).unwrap();
                propcheck::prop_assert_eq!(single.mean.to_bits(), b.mean.to_bits());
                propcheck::prop_assert_eq!(single.variance.to_bits(), b.variance.to_bits());
            }
            Ok(())
        },
    );
}
