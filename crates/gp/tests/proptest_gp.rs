//! Property-based tests on Gaussian-process invariants.

use gp::{GaussianProcess, GpConfig};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (2usize..12, 1usize..4).prop_flat_map(|(n, d)| {
        (
            prop::collection::vec(prop::collection::vec(0.0..1.0f64, d), n),
            prop::collection::vec(-2.0..2.0f64, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn posterior_variance_is_nonnegative((xs, ys) in dataset()) {
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        for i in 0..20 {
            let p: Vec<f64> = (0..gp.dim()).map(|j| ((i * 7 + j * 3) % 11) as f64 / 10.0).collect();
            let pred = gp.predict(&p).unwrap();
            prop_assert!(pred.variance >= 0.0);
            prop_assert!(pred.mean.is_finite());
        }
    }

    #[test]
    fn adding_data_never_increases_variance_at_new_point((xs, ys) in dataset()) {
        // Fit on a prefix, then the full set; variance at any point must not grow.
        let half = xs.len() / 2;
        let gp_small = GaussianProcess::fit(
            xs[..half].to_vec(), ys[..half].to_vec(), &GpConfig::fixed()).unwrap();
        let gp_full = GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).unwrap();
        let probe: Vec<f64> = vec![0.5; gp_full.dim()];
        let vs = gp_small.predict(&probe).unwrap().variance;
        let vf = gp_full.predict(&probe).unwrap().variance;
        prop_assert!(vf <= vs + 1e-6, "variance grew from {vs} to {vf} with more data");
    }

    #[test]
    fn log_marginal_likelihood_is_finite((xs, ys) in dataset()) {
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        prop_assert!(gp.log_marginal_likelihood().is_finite());
    }

    #[test]
    fn loo_has_one_prediction_per_observation((xs, ys) in dataset()) {
        let n = xs.len();
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        let loo = gp.loo_predictions().unwrap();
        prop_assert_eq!(loo.len(), n);
        for p in &loo {
            prop_assert!(p.variance >= 0.0);
            prop_assert!(p.mean.is_finite());
        }
    }

    #[test]
    fn constant_shift_moves_predictions_by_the_shift((xs, ys) in dataset(), shift in -10.0..10.0f64) {
        let gp_a = GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).unwrap();
        let shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        let gp_b = GaussianProcess::fit(xs, shifted, &GpConfig::fixed()).unwrap();
        let probe: Vec<f64> = vec![0.3; gp_a.dim()];
        let pa = gp_a.predict(&probe).unwrap();
        let pb = gp_b.predict(&probe).unwrap();
        prop_assert!((pb.mean - pa.mean - shift).abs() < 1e-8);
        prop_assert!((pb.variance - pa.variance).abs() < 1e-8);
    }
}
