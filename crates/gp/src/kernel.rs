//! Covariance kernels with ARD lengthscales and analytic log-parameter
//! gradients.


const SQRT5: f64 = 2.236_067_977_499_79;

/// A stationary covariance kernel over `R^d` with tunable hyperparameters.
///
/// Hyperparameters are exposed as a flat vector of *log*-values so the fitter
/// can run unconstrained gradient ascent; implementations clamp to
/// [`Kernel::bounds`] when values are set.
pub trait Kernel: Clone + Send + Sync {
    /// Input dimensionality.
    fn dim(&self) -> usize;

    /// Covariance between two points.
    fn value(&self, a: &[f64], b: &[f64]) -> f64;

    /// Covariance and the gradient with respect to each log-hyperparameter.
    ///
    /// The gradient buffer must have length [`Kernel::n_params`].
    fn value_and_grad(&self, a: &[f64], b: &[f64], grad: &mut [f64]) -> f64;

    /// Number of hyperparameters.
    fn n_params(&self) -> usize;

    /// Current log-hyperparameters as a flat vector.
    fn params(&self) -> Vec<f64>;

    /// Sets log-hyperparameters (clamped to [`Kernel::bounds`]).
    fn set_params(&mut self, params: &[f64]);

    /// Per-parameter `(lo, hi)` bounds in log space.
    fn bounds(&self) -> Vec<(f64, f64)>;

    /// Prior variance at a point, `k(x, x)`.
    fn prior_variance(&self) -> f64;
}

/// Matérn-5/2 kernel with automatic relevance determination (per-dimension
/// lengthscales):
///
/// `k(x, x') = s^2 (1 + sqrt(5) r + 5 r^2 / 3) exp(-sqrt(5) r)` with
/// `r^2 = sum_i (x_i - x'_i)^2 / l_i^2`.
///
/// This is the default BoTorch kernel ResTune inherits. Parameters are
/// `[log l_1, ..., log l_d, log s^2]`.
#[derive(Debug, Clone)]
pub struct Matern52 {
    log_lengthscales: Vec<f64>,
    log_signal_variance: f64,
}

impl Matern52 {
    /// Creates a kernel with unit lengthscales and unit signal variance —
    /// a sensible default for `[0,1]^d` inputs and standardized outputs.
    pub fn new(dim: usize) -> Self {
        Matern52 { log_lengthscales: vec![0.0; dim], log_signal_variance: 0.0 }
    }

    /// Creates a kernel with explicit (natural-scale) hyperparameters.
    pub fn with_hyperparameters(lengthscales: &[f64], signal_variance: f64) -> Self {
        assert!(lengthscales.iter().all(|l| *l > 0.0) && signal_variance > 0.0);
        Matern52 {
            log_lengthscales: lengthscales.iter().map(|l| l.ln()).collect(),
            log_signal_variance: signal_variance.ln(),
        }
    }

    /// Natural-scale lengthscales.
    pub fn lengthscales(&self) -> Vec<f64> {
        self.log_lengthscales.iter().map(|l| l.exp()).collect()
    }

    /// Natural-scale signal variance `s^2`.
    pub fn signal_variance(&self) -> f64 {
        self.log_signal_variance.exp()
    }

    /// Scaled distance `r` between two points.
    #[inline]
    fn scaled_distance(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut r2 = 0.0;
        for i in 0..a.len() {
            let d = (a[i] - b[i]) / self.log_lengthscales[i].exp();
            r2 += d * d;
        }
        r2.sqrt()
    }
}

impl Kernel for Matern52 {
    fn dim(&self) -> usize {
        self.log_lengthscales.len()
    }

    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.dim());
        debug_assert_eq!(b.len(), self.dim());
        let r = self.scaled_distance(a, b);
        let s2 = self.log_signal_variance.exp();
        s2 * (1.0 + SQRT5 * r + 5.0 / 3.0 * r * r) * (-SQRT5 * r).exp()
    }

    fn value_and_grad(&self, a: &[f64], b: &[f64], grad: &mut [f64]) -> f64 {
        debug_assert_eq!(grad.len(), self.n_params());
        let d = self.dim();
        let s2 = self.log_signal_variance.exp();
        let r = self.scaled_distance(a, b);
        let e = (-SQRT5 * r).exp();
        let k = s2 * (1.0 + SQRT5 * r + 5.0 / 3.0 * r * r) * e;
        // dk/dr = -s^2 * (5/3) r (1 + sqrt5 r) e^{-sqrt5 r}; we need
        // dk/dlog(l_i) = (dk/dr) * dr/dlog(l_i) with
        // dr/dlog(l_i) = -d_i^2 / (r l_i^2). The 1/r cancels against the r in
        // dk/dr, so define g = s^2 * (5/3)(1 + sqrt5 r) e^{-sqrt5 r} and
        // dk/dlog(l_i) = g * d_i^2 / l_i^2 (no singularity at r = 0).
        let g = s2 * (5.0 / 3.0) * (1.0 + SQRT5 * r) * e;
        for i in 0..d {
            let li = self.log_lengthscales[i].exp();
            let diff = (a[i] - b[i]) / li;
            grad[i] = g * diff * diff;
        }
        grad[d] = k; // dk/dlog(s^2) = k
        k
    }

    fn n_params(&self) -> usize {
        self.dim() + 1
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.log_lengthscales.clone();
        p.push(self.log_signal_variance);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.n_params());
        let bounds = self.bounds();
        for (i, l) in self.log_lengthscales.iter_mut().enumerate() {
            *l = params[i].clamp(bounds[i].0, bounds[i].1);
        }
        let d = self.dim();
        self.log_signal_variance = params[d].clamp(bounds[d].0, bounds[d].1);
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        // Lengthscales in [0.03, 30] for [0,1]^d inputs; signal variance in
        // [1e-4, 1e3] for standardized outputs.
        let mut b = vec![((0.03_f64).ln(), (30.0_f64).ln()); self.dim()];
        b.push(((1e-4_f64).ln(), (1e3_f64).ln()));
        b
    }

    fn prior_variance(&self) -> f64 {
        self.signal_variance()
    }
}

// Persisted in the data repository as part of fitted task models; the
// log-space parameters round-trip bit-exactly through minjson.
minjson::json_struct!(Matern52 { log_lengthscales, log_signal_variance });

/// Squared-exponential (RBF) kernel with ARD lengthscales:
/// `k(x, x') = s^2 exp(-r^2 / 2)`.
///
/// Kept as an alternative surrogate for ablations (iTuned's original
/// description uses an RBF-style GP).
#[derive(Debug, Clone)]
pub struct SquaredExponential {
    log_lengthscales: Vec<f64>,
    log_signal_variance: f64,
}

impl SquaredExponential {
    /// Unit lengthscales / unit variance kernel.
    pub fn new(dim: usize) -> Self {
        SquaredExponential { log_lengthscales: vec![0.0; dim], log_signal_variance: 0.0 }
    }
}

impl Kernel for SquaredExponential {
    fn dim(&self) -> usize {
        self.log_lengthscales.len()
    }

    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut r2 = 0.0;
        for i in 0..a.len() {
            let d = (a[i] - b[i]) / self.log_lengthscales[i].exp();
            r2 += d * d;
        }
        self.log_signal_variance.exp() * (-0.5 * r2).exp()
    }

    fn value_and_grad(&self, a: &[f64], b: &[f64], grad: &mut [f64]) -> f64 {
        let d = self.dim();
        let mut r2 = 0.0;
        let mut scaled = vec![0.0; d];
        for i in 0..d {
            let li = self.log_lengthscales[i].exp();
            let diff = (a[i] - b[i]) / li;
            scaled[i] = diff;
            r2 += diff * diff;
        }
        let k = self.log_signal_variance.exp() * (-0.5 * r2).exp();
        for i in 0..d {
            // dk/dlog(l_i) = k * d_i^2 / l_i^2
            grad[i] = k * scaled[i] * scaled[i];
        }
        grad[d] = k;
        k
    }

    fn n_params(&self) -> usize {
        self.dim() + 1
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.log_lengthscales.clone();
        p.push(self.log_signal_variance);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.n_params());
        let bounds = self.bounds();
        for (i, l) in self.log_lengthscales.iter_mut().enumerate() {
            *l = params[i].clamp(bounds[i].0, bounds[i].1);
        }
        let d = self.dim();
        self.log_signal_variance = params[d].clamp(bounds[d].0, bounds[d].1);
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        let mut b = vec![((0.03_f64).ln(), (30.0_f64).ln()); self.dim()];
        b.push(((1e-4_f64).ln(), (1e3_f64).ln()));
        b
    }

    fn prior_variance(&self) -> f64 {
        self.log_signal_variance.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_difference_grad<K: Kernel>(kernel: &K, a: &[f64], b: &[f64]) -> Vec<f64> {
        let eps = 1e-6;
        let base = kernel.params();
        let mut grad = vec![0.0; kernel.n_params()];
        for p in 0..kernel.n_params() {
            let mut plus = kernel.clone();
            let mut params = base.clone();
            params[p] += eps;
            plus.set_params(&params);
            let mut minus = kernel.clone();
            params[p] = base[p] - eps;
            minus.set_params(&params);
            grad[p] = (plus.value(a, b) - minus.value(a, b)) / (2.0 * eps);
        }
        grad
    }

    #[test]
    fn matern_value_at_zero_distance_is_signal_variance() {
        let k = Matern52::with_hyperparameters(&[0.5, 2.0], 3.0);
        let x = [0.3, 0.7];
        assert!((k.value(&x, &x) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn matern_decreases_with_distance() {
        let k = Matern52::new(1);
        let v1 = k.value(&[0.0], &[0.1]);
        let v2 = k.value(&[0.0], &[0.5]);
        let v3 = k.value(&[0.0], &[2.0]);
        assert!(v1 > v2 && v2 > v3 && v3 > 0.0);
    }

    #[test]
    fn matern_is_symmetric() {
        let k = Matern52::with_hyperparameters(&[0.3, 1.5, 0.8], 2.0);
        let a = [0.1, 0.9, 0.4];
        let b = [0.7, 0.2, 0.6];
        assert!((k.value(&a, &b) - k.value(&b, &a)).abs() < 1e-14);
    }

    #[test]
    fn matern_gradient_matches_finite_differences() {
        let mut k = Matern52::new(3);
        k.set_params(&[-0.5, 0.3, 0.9, 0.2]);
        let a = [0.1, 0.5, 0.9];
        let b = [0.4, 0.2, 0.7];
        let mut grad = vec![0.0; k.n_params()];
        k.value_and_grad(&a, &b, &mut grad);
        let fd = finite_difference_grad(&k, &a, &b);
        for p in 0..k.n_params() {
            assert!(
                (grad[p] - fd[p]).abs() < 1e-5 * (1.0 + fd[p].abs()),
                "param {p}: analytic {} vs fd {}",
                grad[p],
                fd[p]
            );
        }
    }

    #[test]
    fn matern_gradient_is_finite_at_zero_distance() {
        let k = Matern52::new(2);
        let x = [0.5, 0.5];
        let mut grad = vec![0.0; k.n_params()];
        let v = k.value_and_grad(&x, &x, &mut grad);
        assert!((v - 1.0).abs() < 1e-12);
        assert_eq!(grad[0], 0.0);
        assert_eq!(grad[1], 0.0);
        assert!((grad[2] - 1.0).abs() < 1e-12); // dk/dlog s^2 = k
    }

    #[test]
    fn se_gradient_matches_finite_differences() {
        let mut k = SquaredExponential::new(2);
        k.set_params(&[-0.2, 0.4, 0.1]);
        let a = [0.2, 0.8];
        let b = [0.6, 0.3];
        let mut grad = vec![0.0; k.n_params()];
        k.value_and_grad(&a, &b, &mut grad);
        let fd = finite_difference_grad(&k, &a, &b);
        for p in 0..k.n_params() {
            assert!((grad[p] - fd[p]).abs() < 1e-5 * (1.0 + fd[p].abs()));
        }
    }

    #[test]
    fn set_params_clamps_to_bounds() {
        let mut k = Matern52::new(1);
        k.set_params(&[-100.0, 100.0]);
        let p = k.params();
        let b = k.bounds();
        assert!((p[0] - b[0].0).abs() < 1e-12);
        assert!((p[1] - b[1].1).abs() < 1e-12);
    }

    #[test]
    fn ard_lengthscales_gate_dimensions() {
        // A huge lengthscale on dim 1 makes the kernel insensitive to it.
        let k = Matern52::with_hyperparameters(&[0.5, 1000.0], 1.0);
        let v_same = k.value(&[0.2, 0.0], &[0.2, 1.0]);
        let v_far = k.value(&[0.2, 0.0], &[0.8, 0.0]);
        assert!(v_same > 0.99);
        assert!(v_far < v_same);
    }
}
