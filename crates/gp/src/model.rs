//! A closed set of surrogate backends: exact (dense) GP regression or the
//! inducing-point sparse approximation.
//!
//! The tuning core holds one of these per modeled metric. Target-task models
//! are always dense (they stay small and need leave-one-out predictions and
//! incremental extension); base-task models from the meta-repository switch
//! to [`SparseGp`] once a history crosses the repository's size threshold.

use crate::process::{GaussianProcess, GpError, Prediction};
use crate::sparse::SparseGp;
use xrand::Rng;

/// Either an exact GP or an inducing-point sparse GP, behind one interface.
#[derive(Debug, Clone)]
pub enum SurrogateGp {
    /// Exact GP regression (`O(n^3)` fit, `O(n^2)` predict).
    Dense(GaussianProcess),
    /// Inducing-point approximation (`O(n m^2)` fit, `O(m^2)` predict).
    Sparse(SparseGp),
}

impl SurrogateGp {
    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            SurrogateGp::Dense(gp) => gp.dim(),
            SurrogateGp::Sparse(gp) => gp.dim(),
        }
    }

    /// Observation count the model conditioned on.
    pub fn n(&self) -> usize {
        match self {
            SurrogateGp::Dense(gp) => gp.n(),
            SurrogateGp::Sparse(gp) => gp.n(),
        }
    }

    /// `true` for the sparse backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self, SurrogateGp::Sparse(_))
    }

    /// The dense backend, if that is what this is. The incremental-refit path
    /// uses this: only dense target models can be extended in place.
    pub fn as_dense(&self) -> Option<&GaussianProcess> {
        match self {
            SurrogateGp::Dense(gp) => Some(gp),
            SurrogateGp::Sparse(_) => None,
        }
    }

    /// Mutable access to the dense backend, if any.
    pub fn as_dense_mut(&mut self) -> Option<&mut GaussianProcess> {
        match self {
            SurrogateGp::Dense(gp) => Some(gp),
            SurrogateGp::Sparse(_) => None,
        }
    }

    /// Posterior prediction at one point.
    pub fn predict(&self, point: &[f64]) -> Result<Prediction, GpError> {
        match self {
            SurrogateGp::Dense(gp) => gp.predict(point),
            SurrogateGp::Sparse(gp) => gp.predict(point),
        }
    }

    /// Batched posterior prediction; element `c` is bit-identical to
    /// `predict(&points[c])` for both backends.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Result<Vec<Prediction>, GpError> {
        match self {
            SurrogateGp::Dense(gp) => gp.predict_batch(points),
            SurrogateGp::Sparse(gp) => gp.predict_batch(points),
        }
    }

    /// Joint posterior samples at `points`.
    pub fn sample_joint(
        &self,
        points: &[Vec<f64>],
        n_samples: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<f64>>, GpError> {
        match self {
            SurrogateGp::Dense(gp) => gp.sample_joint(points, n_samples, rng),
            SurrogateGp::Sparse(gp) => gp.sample_joint(points, n_samples, rng),
        }
    }

    /// Closed-form leave-one-out predictions. Only defined for the dense
    /// backend; sparse surrogates return an error and callers fall back to
    /// their degenerate-draw paths (base learners never need LOO anyway —
    /// it exists to de-bias the *target* learner's ranking loss).
    pub fn loo_predictions(&self) -> Result<Vec<Prediction>, GpError> {
        match self {
            SurrogateGp::Dense(gp) => gp.loo_predictions(),
            SurrogateGp::Sparse(_) => Err(GpError::Factorization(
                "leave-one-out predictions are undefined for sparse surrogates".into(),
            )),
        }
    }
}

impl From<GaussianProcess> for SurrogateGp {
    fn from(gp: GaussianProcess) -> Self {
        SurrogateGp::Dense(gp)
    }
}

impl From<SparseGp> for SurrogateGp {
    fn from(gp: SparseGp) -> Self {
        SurrogateGp::Sparse(gp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::GpConfig;
    use crate::sparse::{InducingSelector, SparseGpConfig};

    fn data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|p| (p[0] * 3.0).cos()).collect();
        (xs, ys)
    }

    #[test]
    fn dense_variant_matches_inner_gp_bitwise() {
        let (xs, ys) = data(12);
        let gp = GaussianProcess::fit(xs.clone(), ys, &GpConfig::fixed()).unwrap();
        let direct = gp.predict(&[0.4]).unwrap();
        let model = SurrogateGp::from(gp);
        let via = model.predict(&[0.4]).unwrap();
        assert_eq!(direct.mean.to_bits(), via.mean.to_bits());
        assert_eq!(direct.variance.to_bits(), via.variance.to_bits());
        assert!(!model.is_sparse());
        assert!(model.as_dense().is_some());
        assert_eq!(model.n(), 12);
        assert_eq!(model.dim(), 1);
    }

    #[test]
    fn sparse_variant_reports_shape_and_rejects_loo() {
        let (xs, ys) = data(120);
        let cfg = SparseGpConfig {
            n_inducing: 24,
            selector: InducingSelector::Strided,
            gp: GpConfig::fixed(),
        };
        let model = SurrogateGp::from(SparseGp::fit(xs, ys, &cfg).unwrap());
        assert!(model.is_sparse());
        assert!(model.as_dense().is_none());
        assert_eq!(model.n(), 120);
        assert!(model.loo_predictions().is_err());
        let batch = model.predict_batch(&[vec![0.25], vec![0.75]]).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|p| p.mean.is_finite() && p.variance >= 0.0));
    }
}
