//! Random sampling helpers for the GP stack.
//!
//! The Box–Muller transform itself lives in `xrand::dist` (one shared,
//! seeded definition for the whole workspace); this module keeps the
//! historical `gp::rand_util` surface as thin delegations so existing
//! call sites and downstream crates stay unchanged.

use xrand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    xrand::dist::standard_normal(rng)
}

/// Fills a vector with `n` standard-normal samples.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    xrand::dist::standard_normal_vec(rng, n)
}

/// Draws from `N(mean, std^2)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    xrand::dist::normal(rng, mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::rngs::StdRng;
    use xrand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples = standard_normal_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }

    #[test]
    fn delegation_matches_xrand_dist_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                standard_normal(&mut a).to_bits(),
                xrand::dist::standard_normal(&mut b).to_bits()
            );
        }
    }
}
