//! Gaussian-process regression built from scratch for the ResTune surrogates.
//!
//! ResTune (SIGMOD 2021) models the objective (resource utilization) and both
//! SLA constraints (throughput, p99 latency) with independent Gaussian
//! processes (§5.1), and its meta-learning layer needs posterior *samples* and
//! leave-one-out predictions to compute ranking-loss weights (§6.4.2). The
//! paper's implementation sits on BoTorch; no equivalent exists offline, so
//! this crate rebuilds the pieces:
//!
//! * [`kernel::Matern52`] — Matérn-5/2 kernel with ARD lengthscales (the
//!   BoTorch default ResTune inherits) and analytic gradients with respect to
//!   the log-hyperparameters,
//! * [`GaussianProcess`] — exact GP regression with observation noise, fitted
//!   by multi-restart Adam ascent on the log marginal likelihood,
//! * posterior prediction with confidence bounds, joint posterior sampling,
//! * [`GaussianProcess::loo_predictions`] — closed-form leave-one-out
//!   predictions (Rasmussen & Williams, Eqs. 5.10–5.12), used to score the
//!   *target* base-learner without in-sample bias.
//!
//! Inputs are expected in the normalized knob space `[0, 1]^d`; outputs are
//! whatever scale the caller chooses (ResTune standardizes per task, §6.1).

// Indexed loops are intentional in the numeric kernels below: they mirror
// the textbook formulations and keep bounds explicit.
#![allow(clippy::needless_range_loop)]

pub mod calibration;
pub mod kernel;
pub mod model;
pub mod process;
pub mod rand_util;
pub mod sparse;

pub use calibration::Calibration;
pub use kernel::{Kernel, Matern52, SquaredExponential};
pub use model::SurrogateGp;
pub use process::{GaussianProcess, GpConfig, GpError, Prediction};
pub use sparse::{InducingSelector, SparseGp, SparseGpConfig};

/// Standard normal cumulative distribution function.
///
/// Used by the (constrained) expected-improvement acquisition functions.
/// Implemented via a rational-polynomial erf approximation accurate to ~1e-7,
/// which is far below observation noise in this domain.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Error function via the Abramowitz & Stegun 7.1.26 approximation.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_symmetry_and_anchors() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-4);
        for z in [-3.0, -1.0, 0.3, 2.2] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn normal_pdf_peak_value() {
        assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-12);
    }

    #[test]
    fn erf_anchors() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }
}
