//! Inducing-point sparse Gaussian-process regression for large histories.
//!
//! A base task in the meta-repository can hold thousands of observations;
//! fitting an exact GP there costs `O(n^3)` and predicting `O(n^2)` — the
//! scaling wall ROADMAP item 1 calls out. [`SparseGp`] instead conditions on
//! `m << n` *inducing points* chosen deterministically from the training set
//! (DTC / projected-process approximation, the same family egobox and GPyTorch
//! ship): fitting costs `O(n m^2)` and prediction `O(m^2)`, so the repository
//! can keep full histories without the exact-GP cost.
//!
//! Hyperparameters are fitted *densely on the inducing subset only* (an
//! `O(m^3)` problem) and then frozen for the sparse conditioning pass over all
//! `n` points. Everything is seeded and free of platform-dependent reductions,
//! so same-seed runs are bit-identical — the repository-wide determinism
//! contract extends to the sparse path.

use crate::kernel::{Kernel, Matern52};
use crate::process::{GaussianProcess, GpConfig, GpError, Prediction};
use crate::rand_util;
use linalg::{Cholesky, Matrix};
use xrand::Rng;

/// How inducing points are chosen from the training set. Both strategies are
/// deterministic functions of the training data (no RNG), so repeated fits of
/// the same history select the same subset bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InducingSelector {
    /// Every `ceil(n/m)`-th point in arrival order. Cheapest; good when the
    /// history is already well spread (e.g. LHS-seeded tuning runs).
    Strided,
    /// Greedy farthest-point traversal: start from the first observation and
    /// repeatedly add the point with the largest minimum distance to the
    /// selected set (ties broken by lowest index). Better coverage when the
    /// history clusters around incumbents.
    GreedyFarthest,
}

/// Configuration for a sparse fit.
#[derive(Debug, Clone)]
pub struct SparseGpConfig {
    /// Number of inducing points `m`; clamped to the training-set size.
    pub n_inducing: usize,
    /// Inducing-point selection strategy.
    pub selector: InducingSelector,
    /// Hyperparameter-fit configuration for the dense `O(m^3)` subset fit.
    pub gp: GpConfig,
}

impl Default for SparseGpConfig {
    fn default() -> Self {
        SparseGpConfig {
            n_inducing: 64,
            selector: InducingSelector::GreedyFarthest,
            gp: GpConfig::default(),
        }
    }
}

/// Deterministically selects `m` inducing indices from `x`.
pub fn select_inducing(x: &[Vec<f64>], m: usize, selector: InducingSelector) -> Vec<usize> {
    let n = x.len();
    let m = m.min(n);
    if m == 0 {
        return Vec::new();
    }
    match selector {
        InducingSelector::Strided => (0..m).map(|i| i * n / m).collect(),
        InducingSelector::GreedyFarthest => {
            let mut chosen = Vec::with_capacity(m);
            let mut taken = vec![false; n];
            chosen.push(0);
            taken[0] = true;
            // min_d2[i] = squared distance from x[i] to the closest chosen point.
            let mut min_d2: Vec<f64> = x
                .iter()
                .map(|p| linalg::vector::euclidean_distance(p, &x[0]).powi(2))
                .collect();
            while chosen.len() < m {
                let mut best = usize::MAX;
                let mut best_d2 = -1.0;
                for (i, d2) in min_d2.iter().enumerate() {
                    if !taken[i] && *d2 > best_d2 {
                        best_d2 = *d2;
                        best = i;
                    }
                }
                taken[best] = true;
                chosen.push(best);
                for (i, d2) in min_d2.iter_mut().enumerate() {
                    let cand = linalg::vector::euclidean_distance(&x[i], &x[best]).powi(2);
                    if cand < *d2 {
                        *d2 = cand;
                    }
                }
            }
            chosen.sort_unstable();
            chosen
        }
    }
}

/// Inducing-point sparse GP (deterministic training conditional / projected
/// process). Prediction mirrors [`GaussianProcess`]'s interface so the two can
/// sit behind one surrogate enum.
#[derive(Debug, Clone)]
pub struct SparseGp {
    /// Inducing inputs `X_m`.
    x_m: Vec<Vec<f64>>,
    kernel: Matern52,
    mean_offset: f64,
    /// Cholesky factor of `K_mm` (jittered as needed).
    lm: Cholesky,
    /// Cholesky factor of `A = K_mm + sigma^-2 K_mn K_nm` (jittered as needed).
    la: Cholesky,
    /// `sigma^-2 A^-1 K_mn (y - mean)` — the predictive weight vector.
    weights: Vec<f64>,
    n: usize,
    dim: usize,
}

impl SparseGp {
    /// Fits a sparse GP on the full `(x, y)` history.
    ///
    /// Steps: select `m` inducing points, fit hyperparameters densely on that
    /// subset, then condition on all `n` observations through the inducing
    /// set (`O(n m^2)`).
    pub fn fit(x: Vec<Vec<f64>>, y: Vec<f64>, config: &SparseGpConfig) -> Result<Self, GpError> {
        if x.len() != y.len() {
            return Err(GpError::DataMismatch { n_x: x.len(), n_y: y.len() });
        }
        let n = x.len();
        if n == 0 {
            return Err(GpError::DataMismatch { n_x: 0, n_y: 0 });
        }
        let dim = x[0].len();
        for p in &x {
            if p.len() != dim {
                return Err(GpError::DimensionMismatch { expected: dim, found: p.len() });
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite);
            }
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite);
        }

        let idx = select_inducing(&x, config.n_inducing, config.selector);
        let m = idx.len();
        let x_m: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        let y_m: Vec<f64> = idx.iter().map(|&i| y[i]).collect();

        // Dense hyperparameter fit on the inducing subset only: O(m^3).
        let subset = GaussianProcess::fit_with_kernel(
            x_m.clone(),
            y_m,
            Matern52::new(dim),
            &config.gp,
        )?;
        let kernel = subset.kernel().clone();
        let noise_std = subset.noise_std().max(config.gp.min_noise);
        let noise_var = noise_std * noise_std;

        let mean_offset = y.iter().sum::<f64>() / n as f64;
        let y_c: Vec<f64> = y.iter().map(|v| v - mean_offset).collect();

        let kmm = Matrix::from_fn(m, m, |i, j| kernel.value(&x_m[i], &x_m[j]));
        let lm = Cholesky::factor_with_jitter(&kmm)
            .map_err(|e| GpError::Factorization(e.to_string()))?;
        let kmn = Matrix::from_fn(m, n, |i, j| kernel.value(&x_m[i], &x[j]));

        // A = K_mm + sigma^-2 K_mn K_nm.
        let inv_noise = 1.0 / noise_var;
        let knm = kmn.transpose();
        let mut a = kmn.matmul(&knm).expect("m x n times n x m");
        for i in 0..m {
            for j in 0..m {
                a[(i, j)] = kmm[(i, j)] + inv_noise * a[(i, j)];
            }
        }
        let la = Cholesky::factor_with_jitter(&a)
            .map_err(|e| GpError::Factorization(e.to_string()))?;

        // weights = sigma^-2 A^-1 K_mn y_c.
        let kmn_y = kmn.matvec(&y_c).expect("m x n times n");
        let mut weights =
            la.solve(&kmn_y).map_err(|e| GpError::Factorization(e.to_string()))?;
        for w in &mut weights {
            *w *= inv_noise;
        }

        Ok(SparseGp { x_m, kernel, mean_offset, lm, la, weights, n, dim })
    }

    /// Observation count the model conditioned on (all `n`, not just `m`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of inducing points actually used.
    pub fn n_inducing(&self) -> usize {
        self.x_m.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The fitted kernel (hyperparameters frozen from the subset fit).
    pub fn kernel(&self) -> &Matern52 {
        &self.kernel
    }

    fn kstar(&self, point: &[f64]) -> Vec<f64> {
        self.x_m.iter().map(|xi| self.kernel.value(xi, point)).collect()
    }

    /// Posterior prediction at one point: mean `k_*^T w`, variance
    /// `k_** - ||L_m^{-1} k_*||^2 + ||L_a^{-1} k_*||^2`.
    pub fn predict(&self, point: &[f64]) -> Result<Prediction, GpError> {
        if point.len() != self.dim {
            return Err(GpError::DimensionMismatch { expected: self.dim, found: point.len() });
        }
        let kstar = self.kstar(point);
        let mean = self.mean_offset + linalg::vector::dot(&kstar, &self.weights);
        let v1 = self.lm.solve_lower(&kstar).expect("factor dims match inducing set");
        let v2 = self.la.solve_lower(&kstar).expect("factor dims match inducing set");
        let variance = (self.kernel.prior_variance() - linalg::vector::dot(&v1, &v1)
            + linalg::vector::dot(&v2, &v2))
        .max(0.0);
        Ok(Prediction { mean, variance })
    }

    /// Batched prediction; element `c` is bit-identical to
    /// `self.predict(&points[c])`.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Result<Vec<Prediction>, GpError> {
        points.iter().map(|p| self.predict(p)).collect()
    }

    /// Joint posterior samples at `points`, mirroring
    /// [`GaussianProcess::sample_joint`]'s regularization and draw order.
    pub fn sample_joint(
        &self,
        points: &[Vec<f64>],
        n_samples: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<f64>>, GpError> {
        let q = points.len();
        if q == 0 {
            return Ok(vec![Vec::new(); n_samples]);
        }
        for p in points {
            if p.len() != self.dim {
                return Err(GpError::DimensionMismatch { expected: self.dim, found: p.len() });
            }
        }
        let mut mean = vec![self.mean_offset; q];
        let mut cov = Matrix::from_fn(q, q, |i, j| self.kernel.value(&points[i], &points[j]));
        let mut v1_cols: Vec<Vec<f64>> = Vec::with_capacity(q);
        let mut v2_cols: Vec<Vec<f64>> = Vec::with_capacity(q);
        for (c, p) in points.iter().enumerate() {
            let kstar = self.kstar(p);
            mean[c] += linalg::vector::dot(&kstar, &self.weights);
            v1_cols.push(self.lm.solve_lower(&kstar).expect("dims"));
            v2_cols.push(self.la.solve_lower(&kstar).expect("dims"));
        }
        for i in 0..q {
            for j in 0..=i {
                let reduce = linalg::vector::dot(&v1_cols[i], &v1_cols[j])
                    - linalg::vector::dot(&v2_cols[i], &v2_cols[j]);
                cov[(i, j)] -= reduce;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        cov.symmetrize();
        cov.add_diagonal(1e-9 + 1e-6 * self.kernel.prior_variance());
        let cov_chol = Cholesky::factor_with_jitter(&cov)
            .map_err(|e| GpError::Factorization(e.to_string()))?;
        let l = cov_chol.l();
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let z = rand_util::standard_normal_vec(rng, q);
            let mut s = mean.clone();
            for i in 0..q {
                let mut acc = 0.0;
                let row = l.row(i);
                for k in 0..=i {
                    acc += row[k] * z[k];
                }
                s[i] += acc;
            }
            samples.push(s);
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::rngs::StdRng;
    use xrand::SeedableRng;

    fn wave_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                vec![t, (t * 7.3).fract()]
            })
            .collect();
        let ys: Vec<f64> =
            xs.iter().map(|p| (p[0] * 4.0).sin() + 0.3 * p[1]).collect();
        (xs, ys)
    }

    #[test]
    fn strided_selection_is_evenly_spaced_and_unique() {
        let (xs, _) = wave_data(100);
        let idx = select_inducing(&xs, 10, InducingSelector::Strided);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[0], 0);
        for w in idx.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn greedy_selection_is_deterministic_and_spreads_out() {
        let (xs, _) = wave_data(60);
        let a = select_inducing(&xs, 8, InducingSelector::GreedyFarthest);
        let b = select_inducing(&xs, 8, InducingSelector::GreedyFarthest);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut sorted = a.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "indices must be unique: {a:?}");
    }

    #[test]
    fn selection_clamps_to_training_size() {
        let (xs, _) = wave_data(5);
        assert_eq!(select_inducing(&xs, 50, InducingSelector::Strided).len(), 5);
        assert_eq!(select_inducing(&xs, 50, InducingSelector::GreedyFarthest).len(), 5);
    }

    #[test]
    fn sparse_predictions_track_dense_on_moderate_data() {
        let (xs, ys) = wave_data(80);
        let dense = GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).unwrap();
        let cfg = SparseGpConfig {
            n_inducing: 40,
            selector: InducingSelector::GreedyFarthest,
            gp: GpConfig::fixed(),
        };
        let sparse = SparseGp::fit(xs, ys, &cfg).unwrap();
        for t in [0.05, 0.3, 0.55, 0.8] {
            let p = vec![t, (t * 7.3_f64).fract()];
            let d = dense.predict(&p).unwrap();
            let s = sparse.predict(&p).unwrap();
            assert!(
                (d.mean - s.mean).abs() < 0.15,
                "at {p:?}: dense {} sparse {}",
                d.mean,
                s.mean
            );
            assert!(s.variance >= 0.0);
        }
    }

    #[test]
    fn sparse_fit_is_bit_deterministic() {
        let (xs, ys) = wave_data(70);
        let cfg = SparseGpConfig::default();
        let a = SparseGp::fit(xs.clone(), ys.clone(), &cfg).unwrap();
        let b = SparseGp::fit(xs, ys, &cfg).unwrap();
        for t in [0.1, 0.5, 0.9] {
            let p = vec![t, (t * 7.3_f64).fract()];
            let pa = a.predict(&p).unwrap();
            let pb = b.predict(&p).unwrap();
            assert_eq!(pa.mean.to_bits(), pb.mean.to_bits());
            assert_eq!(pa.variance.to_bits(), pb.variance.to_bits());
        }
        let mut ra = StdRng::seed_from_u64(3);
        let mut rb = StdRng::seed_from_u64(3);
        let pts = vec![vec![0.2, 0.4], vec![0.7, 0.1]];
        let sa = a.sample_joint(&pts, 4, &mut ra).unwrap();
        let sb = b.sample_joint(&pts, 4, &mut rb).unwrap();
        for (va, vb) in sa.iter().zip(&sb) {
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn handles_a_thousand_observations_quickly() {
        let (xs, ys) = wave_data(1000);
        let cfg = SparseGpConfig {
            n_inducing: 64,
            selector: InducingSelector::Strided,
            gp: GpConfig::fixed(),
        };
        let sparse = SparseGp::fit(xs, ys, &cfg).unwrap();
        assert_eq!(sparse.n(), 1000);
        assert_eq!(sparse.n_inducing(), 64);
        let p = sparse.predict(&[0.5, (0.5 * 7.3_f64).fract()]).unwrap();
        assert!(p.mean.is_finite() && p.variance >= 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        let cfg = SparseGpConfig::default();
        assert!(matches!(
            SparseGp::fit(vec![vec![0.1]], vec![0.1, 0.2], &cfg),
            Err(GpError::DataMismatch { .. })
        ));
        assert!(matches!(
            SparseGp::fit(vec![vec![0.1], vec![f64::NAN]], vec![0.1, 0.2], &cfg),
            Err(GpError::NonFinite)
        ));
        assert!(matches!(SparseGp::fit(vec![], vec![], &cfg), Err(GpError::DataMismatch { .. })));
    }
}
