//! Exact Gaussian-process regression with marginal-likelihood hyperparameter
//! fitting.

use crate::kernel::{Kernel, Matern52};
use crate::rand_util;
use linalg::{Cholesky, Matrix};
use xrand::rngs::StdRng;
use xrand::{Rng, SeedableRng};

/// Errors from GP construction and prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Observation matrix and target vector lengths disagree.
    DataMismatch { n_x: usize, n_y: usize },
    /// A point had the wrong dimensionality.
    DimensionMismatch { expected: usize, found: usize },
    /// Input data contained NaN/inf.
    NonFinite,
    /// The kernel matrix could not be factored even with jitter.
    Factorization(String),
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::DataMismatch { n_x, n_y } => {
                write!(f, "got {n_x} inputs but {n_y} targets")
            }
            GpError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected}-dimensional points, found {found}")
            }
            GpError::NonFinite => write!(f, "training data contains non-finite values"),
            GpError::Factorization(e) => write!(f, "kernel factorization failed: {e}"),
        }
    }
}

impl std::error::Error for GpError {}

/// Posterior prediction at a single point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior variance of the latent function (non-negative).
    pub variance: f64,
}

impl Prediction {
    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// Configuration for GP fitting.
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Whether to optimize kernel + noise hyperparameters by maximizing the
    /// log marginal likelihood. When `false`, the kernel's current values and
    /// `initial_noise` are used as-is.
    pub optimize_hypers: bool,
    /// Number of random restarts for the hyperparameter search (the first
    /// start is always the kernel's current values — a warm start).
    pub restarts: usize,
    /// Adam iterations per restart.
    pub adam_iters: usize,
    /// Adam learning rate (log-parameter space).
    pub learning_rate: f64,
    /// Initial observation-noise *standard deviation*.
    pub initial_noise: f64,
    /// Lower bound on the noise standard deviation (keeps kernels invertible).
    pub min_noise: f64,
    /// Seed for restart perturbations.
    pub seed: u64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            optimize_hypers: true,
            restarts: 2,
            adam_iters: 40,
            learning_rate: 0.1,
            initial_noise: 0.1,
            min_noise: 1e-4,
            seed: 0,
        }
    }
}

impl GpConfig {
    /// A configuration that skips hyperparameter optimization entirely.
    pub fn fixed() -> Self {
        GpConfig { optimize_hypers: false, ..Default::default() }
    }
}

/// Exact GP regression with a constant (empirical-mean) mean function, a
/// Matérn-5/2 ARD kernel, and Gaussian observation noise.
///
/// The generic-kernel machinery lives in [`Kernel`]; the concrete model is
/// fixed to [`Matern52`] because that is what ResTune (via BoTorch) uses and
/// it keeps the serialized repository format simple.
///
/// # Examples
///
/// ```
/// use gp::{GaussianProcess, GpConfig};
///
/// let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
/// let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
/// let pred = gp.predict(&[0.5]).unwrap();
/// assert!(pred.variance >= 0.0);
/// assert!((pred.mean - (0.5f64 * 3.0).sin()).abs() < 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    y_centered: Vec<f64>,
    mean_offset: f64,
    kernel: Matern52,
    log_noise_variance: f64,
    /// alpha = K_y^{-1} (y - mean)
    alpha: Vec<f64>,
    /// Lower Cholesky factor of K_y, flattened row-major.
    chol_l: Matrix,
    /// Diagonal jitter the stored factor needed (0.0 for a strict
    /// factorization). The incremental [`GaussianProcess::extend`] path only
    /// grows unjittered factors: growing a jittered one would drift from the
    /// escalation schedule a fresh factorization runs.
    chol_jitter: f64,
    dim: usize,
}

impl GaussianProcess {
    /// Fits a GP to `(x, y)`.
    ///
    /// `x` rows must share a common dimensionality `d > 0`; an empty training
    /// set is allowed (the GP then returns its prior).
    pub fn fit(x: Vec<Vec<f64>>, y: Vec<f64>, config: &GpConfig) -> Result<Self, GpError> {
        let dim = x.first().map(|p| p.len()).unwrap_or(1);
        Self::fit_with_kernel(x, y, Matern52::new(dim), config)
    }

    /// Fits a GP starting from an explicit kernel (used for warm starts).
    pub fn fit_with_kernel(
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        kernel: Matern52,
        config: &GpConfig,
    ) -> Result<Self, GpError> {
        if x.len() != y.len() {
            return Err(GpError::DataMismatch { n_x: x.len(), n_y: y.len() });
        }
        let dim = kernel.dim();
        for p in &x {
            if p.len() != dim {
                return Err(GpError::DimensionMismatch { expected: dim, found: p.len() });
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite);
            }
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite);
        }

        let mean_offset = linalg::vector::mean(&y);
        let y_centered: Vec<f64> = y.iter().map(|v| v - mean_offset).collect();

        let mut gp = GaussianProcess {
            x,
            y,
            y_centered,
            mean_offset,
            kernel,
            log_noise_variance: (config.initial_noise.max(config.min_noise).powi(2)).ln(),
            alpha: Vec::new(),
            chol_l: Matrix::zeros(0, 0),
            chol_jitter: 0.0,
            dim,
        };

        if config.optimize_hypers && gp.x.len() >= 3 {
            gp.optimize_hyperparameters(config);
        }
        gp.refactor(config.min_noise)?;
        Ok(gp)
    }

    /// Number of training observations.
    pub fn n(&self) -> usize {
        self.x.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Training inputs.
    pub fn train_x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Training targets (original scale as provided).
    pub fn train_y(&self) -> &[f64] {
        &self.y
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &Matern52 {
        &self.kernel
    }

    /// Fitted observation-noise standard deviation.
    pub fn noise_std(&self) -> f64 {
        (self.log_noise_variance.exp()).sqrt()
    }

    fn kernel_matrix(&self) -> Matrix {
        let n = self.x.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.kernel.value(&self.x[i], &self.x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    fn refactor(&mut self, min_noise: f64) -> Result<(), GpError> {
        let n = self.x.len();
        if n == 0 {
            self.alpha.clear();
            self.chol_l = Matrix::zeros(0, 0);
            self.chol_jitter = 0.0;
            return Ok(());
        }
        let noise_var = self.log_noise_variance.exp().max(min_noise * min_noise);
        let mut k = self.kernel_matrix();
        k.add_diagonal(noise_var);
        let chol =
            Cholesky::factor_with_jitter(&k).map_err(|e| GpError::Factorization(e.to_string()))?;
        self.alpha = chol
            .solve(&self.y_centered)
            .map_err(|e| GpError::Factorization(e.to_string()))?;
        self.chol_jitter = chol.jitter();
        self.chol_l = chol.into_factor();
        Ok(())
    }

    /// Replaces the whole target column without touching the kernel matrix:
    /// recomputes the empirical mean, centered targets, and `alpha` by one
    /// O(n²) solve against the stored factor. Used by the incremental refit
    /// path, where per-iteration re-standardization rewrites every target
    /// value but the inputs (and therefore `K_y`) are unchanged.
    ///
    /// Bit-compatibility contract: the resulting model is bit-identical to a
    /// full non-hyperopt fit of the same `(x, y)` with the same kernel, noise,
    /// and factor.
    pub fn set_targets(&mut self, y: Vec<f64>) -> Result<(), GpError> {
        if y.len() != self.x.len() {
            return Err(GpError::DataMismatch { n_x: self.x.len(), n_y: y.len() });
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite);
        }
        if self.x.is_empty() {
            self.y = y;
            self.y_centered.clear();
            self.mean_offset = 0.0;
            self.alpha.clear();
            return Ok(());
        }
        self.mean_offset = linalg::vector::mean(&y);
        self.y_centered = y.iter().map(|v| v - self.mean_offset).collect();
        self.y = y;
        self.alpha = self
            .chol()
            .solve(&self.y_centered)
            .map_err(|e| GpError::Factorization(e.to_string()))?;
        Ok(())
    }

    /// Appends one observation *incrementally*: the stored Cholesky factor
    /// grows by one row ([`linalg::Cholesky::append_row`], O(n²)) instead of
    /// being refactored from scratch (O(n³)), keeping the current kernel and
    /// noise hyperparameters. `alpha` and the empirical mean are refreshed
    /// against the grown factor.
    ///
    /// Falls back to a full refactorization when there is no factor to grow
    /// (empty GP), the stored factor needed jitter, or the appended row makes
    /// the extension numerically non-SPD — so the call succeeds whenever a
    /// full fit would. Callers that re-optimize hyperparameters must use a
    /// full [`GaussianProcess::fit`] instead; this path deliberately reuses
    /// the last optimized values.
    ///
    /// Bit-compatibility contract: on the incremental path the result is
    /// bit-identical to a from-scratch non-hyperopt
    /// [`GaussianProcess::fit_with_kernel`] of the extended data with the
    /// same kernel and noise (pinned by tests) — `append_row` reproduces the
    /// full factorization bit-for-bit, and every downstream quantity is
    /// recomputed the same way.
    pub fn extend(&mut self, x_new: Vec<f64>, y_new: f64, config: &GpConfig) -> Result<(), GpError> {
        if x_new.len() != self.dim {
            return Err(GpError::DimensionMismatch { expected: self.dim, found: x_new.len() });
        }
        if x_new.iter().any(|v| !v.is_finite()) || !y_new.is_finite() {
            return Err(GpError::NonFinite);
        }
        let n = self.x.len();
        self.x.push(x_new);
        self.y.push(y_new);
        self.mean_offset = linalg::vector::mean(&self.y);
        self.y_centered = self.y.iter().map(|v| v - self.mean_offset).collect();
        if n == 0 || self.chol_jitter != 0.0 {
            return self.refactor(config.min_noise);
        }
        let noise_var = self.log_noise_variance.exp().max(config.min_noise * config.min_noise);
        let x_last = self.x.last().expect("just pushed");
        let cross: Vec<f64> =
            self.x[..n].iter().map(|xi| self.kernel.value(x_last, xi)).collect();
        let diag = self.kernel.value(x_last, x_last) + noise_var;
        let mut chol = Cholesky::from_factor(std::mem::replace(&mut self.chol_l, Matrix::zeros(0, 0)));
        if chol.append_row(&cross, diag).is_err() {
            // Numerically non-SPD extension: the full path's jitter
            // escalation handles it.
            return self.refactor(config.min_noise);
        }
        match chol.solve(&self.y_centered) {
            Ok(alpha) => {
                self.alpha = alpha;
                self.chol_l = chol.into_factor();
                Ok(())
            }
            Err(e) => Err(GpError::Factorization(e.to_string())),
        }
    }

    fn chol(&self) -> Cholesky {
        Cholesky::from_factor(self.chol_l.clone())
    }

    /// Log marginal likelihood of the current hyperparameters.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.x.len();
        if n == 0 {
            return 0.0;
        }
        let chol = self.chol();
        let data_fit = -0.5 * linalg::vector::dot(&self.y_centered, &self.alpha);
        let complexity = -0.5 * chol.log_determinant();
        data_fit + complexity - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    }

    /// Posterior prediction at one point.
    pub fn predict(&self, point: &[f64]) -> Result<Prediction, GpError> {
        if point.len() != self.dim {
            return Err(GpError::DimensionMismatch { expected: self.dim, found: point.len() });
        }
        let n = self.x.len();
        let prior_var = self.kernel.prior_variance();
        if n == 0 {
            return Ok(Prediction { mean: self.mean_offset, variance: prior_var });
        }
        let kstar: Vec<f64> = self.x.iter().map(|xi| self.kernel.value(xi, point)).collect();
        let mean = self.mean_offset + linalg::vector::dot(&kstar, &self.alpha);
        let chol = self.chol();
        let v = chol.solve_lower(&kstar).expect("factor dims match training set");
        let variance = (prior_var - linalg::vector::dot(&v, &v)).max(0.0);
        Ok(Prediction { mean, variance })
    }

    /// Posterior predictions at many points, batched.
    ///
    /// Reuses the stored Cholesky factor once for the whole batch: the
    /// cross-kernel `K(X, P)` is assembled as one `n x m` [`Matrix`], the
    /// means come from a single `alpha^T K(X, P)` product, and the variance
    /// reduction from one blocked triangular solve
    /// ([`linalg::Cholesky::solve_lower_matrix`]). The per-point path clones
    /// the `n x n` factor for *every* query; this clones it once per batch.
    ///
    /// Bit-compatibility contract: element `c` of the result is bit-identical
    /// to `self.predict(&points[c])` (pinned by a property test) — every
    /// accumulation runs in the same order as the scalar path.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Result<Vec<Prediction>, GpError> {
        let m = points.len();
        for p in points {
            if p.len() != self.dim {
                return Err(GpError::DimensionMismatch { expected: self.dim, found: p.len() });
            }
        }
        if m == 0 {
            return Ok(Vec::new());
        }
        let n = self.x.len();
        let prior_var = self.kernel.prior_variance();
        if n == 0 {
            return Ok(vec![Prediction { mean: self.mean_offset, variance: prior_var }; m]);
        }
        let kstar = Matrix::from_fn(n, m, |i, c| self.kernel.value(&self.x[i], &points[c]));
        let alpha_row = Matrix::from_vec(1, n, self.alpha.clone());
        let means = alpha_row.matmul(&kstar).expect("inner dimensions agree");
        let v = self
            .chol()
            .solve_lower_matrix(&kstar)
            .expect("factor dims match training set");
        let mut out = Vec::with_capacity(m);
        for c in 0..m {
            let mut reduce = 0.0;
            for i in 0..n {
                let vic = v[(i, c)];
                reduce += vic * vic;
            }
            out.push(Prediction {
                mean: self.mean_offset + means[(0, c)],
                variance: (prior_var - reduce).max(0.0),
            });
        }
        Ok(out)
    }

    /// Joint posterior samples of the latent function at `points`.
    ///
    /// Returns `n_samples` vectors, each of length `points.len()`. Used by the
    /// RGPE-style dynamic weighting to estimate the probability that a
    /// base-learner has the lowest ranking loss (§6.4.2).
    pub fn sample_joint(
        &self,
        points: &[Vec<f64>],
        n_samples: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<f64>>, GpError> {
        let m = points.len();
        if m == 0 {
            return Ok(vec![Vec::new(); n_samples]);
        }
        for p in points {
            if p.len() != self.dim {
                return Err(GpError::DimensionMismatch { expected: self.dim, found: p.len() });
            }
        }
        // Posterior mean vector and covariance matrix at the query points.
        let mut mean = vec![self.mean_offset; m];
        let mut cov = Matrix::from_fn(m, m, |i, j| self.kernel.value(&points[i], &points[j]));
        if self.n() > 0 {
            let chol = self.chol();
            // V = L^{-1} K(X, P)  (n x m), assembled column-wise.
            let n = self.n();
            let mut v_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
            for (c, p) in points.iter().enumerate() {
                let kstar: Vec<f64> = self.x.iter().map(|xi| self.kernel.value(xi, p)).collect();
                mean[c] += linalg::vector::dot(&kstar, &self.alpha);
                let v = chol.solve_lower(&kstar).expect("dims");
                debug_assert_eq!(v.len(), n);
                v_cols.push(v);
            }
            for i in 0..m {
                for j in 0..=i {
                    let reduce = linalg::vector::dot(&v_cols[i], &v_cols[j]);
                    cov[(i, j)] -= reduce;
                    cov[(j, i)] = cov[(i, j)];
                }
            }
        }
        // Regularize: posterior covariances can be numerically indefinite.
        cov.symmetrize();
        cov.add_diagonal(1e-9 + 1e-6 * self.kernel.prior_variance());
        let cov_chol = Cholesky::factor_with_jitter(&cov)
            .map_err(|e| GpError::Factorization(e.to_string()))?;
        let l = cov_chol.l();
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let z = rand_util::standard_normal_vec(rng, m);
            let mut s = mean.clone();
            for i in 0..m {
                let mut acc = 0.0;
                let row = l.row(i);
                for k in 0..=i {
                    acc += row[k] * z[k];
                }
                s[i] += acc;
            }
            samples.push(s);
        }
        Ok(samples)
    }

    /// Closed-form leave-one-out posterior predictions (Rasmussen & Williams
    /// Eqs. 5.10–5.12): for each training index `i`, the prediction at `x_i`
    /// from the GP trained on all other points, *without* refitting
    /// hyperparameters.
    pub fn loo_predictions(&self) -> Result<Vec<Prediction>, GpError> {
        let n = self.n();
        if n == 0 {
            return Ok(Vec::new());
        }
        let chol = self.chol();
        let kinv = chol.inverse().map_err(|e| GpError::Factorization(e.to_string()))?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let kii = kinv[(i, i)];
            let variance = (1.0 / kii).max(0.0);
            let mean = self.y[i] - self.alpha[i] / kii;
            out.push(Prediction { mean, variance });
        }
        Ok(out)
    }

    // ---- hyperparameter optimization ------------------------------------

    /// Negative log marginal likelihood and its gradient for flat parameters
    /// `[kernel params..., log noise variance]`.
    fn nll_and_grad(&self, params: &[f64], min_noise: f64) -> Option<(f64, Vec<f64>)> {
        let n = self.x.len();
        let kp = self.kernel.n_params();
        let mut kernel = self.kernel.clone();
        kernel.set_params(&params[..kp]);
        let noise_var = params[kp].exp().max(min_noise * min_noise);

        // Assemble K_y and per-parameter gradient matrices.
        let mut k = Matrix::zeros(n, n);
        let mut grads: Vec<Matrix> = (0..kp).map(|_| Matrix::zeros(n, n)).collect();
        let mut gbuf = vec![0.0; kp];
        for i in 0..n {
            for j in 0..=i {
                let v = kernel.value_and_grad(&self.x[i], &self.x[j], &mut gbuf);
                k[(i, j)] = v;
                k[(j, i)] = v;
                for (p, g) in gbuf.iter().enumerate() {
                    grads[p][(i, j)] = *g;
                    grads[p][(j, i)] = *g;
                }
            }
            k[(i, i)] += noise_var;
        }
        let chol = Cholesky::factor_with_jitter(&k).ok()?;
        let alpha = chol.solve(&self.y_centered).ok()?;
        let kinv = chol.inverse().ok()?;
        let nll = 0.5 * linalg::vector::dot(&self.y_centered, &alpha)
            + 0.5 * chol.log_determinant()
            + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        // dNLL/dtheta = -0.5 tr((alpha alpha^T - K^{-1}) dK/dtheta)
        let mut grad = vec![0.0; kp + 1];
        for (p, dk) in grads.iter().enumerate() {
            let mut tr = 0.0;
            for i in 0..n {
                for j in 0..n {
                    tr += (alpha[i] * alpha[j] - kinv[(i, j)]) * dk[(i, j)];
                }
            }
            grad[p] = -0.5 * tr;
        }
        // Noise gradient: dK/dlog(sigma_n^2) = sigma_n^2 I.
        let mut tr = 0.0;
        for i in 0..n {
            tr += alpha[i] * alpha[i] - kinv[(i, i)];
        }
        grad[kp] = -0.5 * tr * noise_var;
        Some((nll, grad))
    }

    fn optimize_hyperparameters(&mut self, config: &GpConfig) {
        let kp = self.kernel.n_params();
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(self.x.len() as u64));
        let noise_bounds = ((config.min_noise * config.min_noise).ln(), (1.0_f64).ln());

        let mut start = self.kernel.params();
        start.push(self.log_noise_variance);

        let mut best: Option<(f64, Vec<f64>)> = None;
        for restart in 0..config.restarts.max(1) {
            let mut params = if restart == 0 {
                start.clone()
            } else {
                // Perturbed restart around sensible defaults.
                let mut p = vec![0.0; kp + 1];
                for v in p.iter_mut().take(kp) {
                    *v = rand_util::normal(&mut rng, 0.0, 1.0);
                }
                p[kp] = rand_util::normal(&mut rng, (0.01_f64).ln(), 1.0);
                p
            };
            // Adam ascent on LML == descent on NLL. The restart's candidate
            // is the best-NLL iterate seen *along* the trajectory, not the
            // last one: Adam does not descend monotonically, and a diverging
            // final step used to be selected over an earlier better point.
            let mut m = vec![0.0; kp + 1];
            let mut v = vec![0.0; kp + 1];
            let (b1, b2, eps) = (0.9, 0.999, 1e-8);
            let mut restart_best: Option<(f64, Vec<f64>)> = None;
            let note = |nll: f64, params: &[f64], best: &mut Option<(f64, Vec<f64>)>| {
                if nll.is_finite() && best.as_ref().map(|(b, _)| nll < *b).unwrap_or(true) {
                    *best = Some((nll, params.to_vec()));
                }
            };
            for t in 1..=config.adam_iters {
                let Some((nll, grad)) = self.nll_and_grad(&params, config.min_noise) else {
                    break;
                };
                note(nll, &params, &mut restart_best);
                for i in 0..params.len() {
                    m[i] = b1 * m[i] + (1.0 - b1) * grad[i];
                    v[i] = b2 * v[i] + (1.0 - b2) * grad[i] * grad[i];
                    let mhat = m[i] / (1.0 - b1.powi(t as i32));
                    let vhat = v[i] / (1.0 - b2.powi(t as i32));
                    params[i] -= config.learning_rate * mhat / (vhat.sqrt() + eps);
                }
                // Clamp: kernel bounds + noise bounds.
                let kb = self.kernel.bounds();
                for i in 0..kp {
                    params[i] = params[i].clamp(kb[i].0, kb[i].1);
                }
                params[kp] = params[kp].clamp(noise_bounds.0, noise_bounds.1);
            }
            // The post-loop iterate was stepped to but never evaluated inside
            // the loop; it competes on equal terms.
            if let Some((final_nll, _)) = self.nll_and_grad(&params, config.min_noise) {
                note(final_nll, &params, &mut restart_best);
            }
            if let Some((nll, p)) = restart_best {
                if best.as_ref().map(|(b, _)| nll < *b).unwrap_or(true) {
                    best = Some((nll, p));
                }
            }
        }
        if let Some((_, params)) = best {
            self.kernel.set_params(&params[..kp]);
            self.log_noise_variance = params[kp].clamp(noise_bounds.0, noise_bounds.1);
        }
    }
}


// Fitted GPs are persisted inside the data repository. All fields (including
// the Cholesky factor) are serialized so the reconstructed model predicts
// bit-identically without refitting.
minjson::json_struct!(GaussianProcess {
    x,
    y,
    y_centered,
    mean_offset,
    kernel,
    log_noise_variance,
    alpha,
    chol_l,
    chol_jitter,
    dim,
});

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::rngs::StdRng;
    use xrand::SeedableRng;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = sin(2 pi x) observed on a grid.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| (2.0 * std::f64::consts::PI * x[0]).sin()).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_data_with_low_noise() {
        let (xs, ys) = toy_data();
        let cfg = GpConfig { seed: 3, ..Default::default() };
        let gp = GaussianProcess::fit(xs.clone(), ys.clone(), &cfg).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x).unwrap();
            assert!((p.mean - y).abs() < 0.15, "pred {} vs {}", p.mean, y);
        }
    }

    #[test]
    fn prior_prediction_without_data() {
        let gp = GaussianProcess::fit(Vec::new(), Vec::new(), &GpConfig::fixed()).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert_eq!(p.mean, 0.0);
        assert!(p.variance > 0.0);
    }

    #[test]
    fn variance_shrinks_near_observations() {
        let (xs, ys) = toy_data();
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        let near = gp.predict(&[0.0]).unwrap();
        let far = gp.predict(&[3.0]).unwrap();
        assert!(near.variance < far.variance);
    }

    #[test]
    fn hyperopt_improves_marginal_likelihood() {
        let (xs, ys) = toy_data();
        let fixed = GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).unwrap();
        let cfg = GpConfig { adam_iters: 60, ..Default::default() };
        let fitted = GaussianProcess::fit(xs, ys, &cfg).unwrap();
        assert!(
            fitted.log_marginal_likelihood() >= fixed.log_marginal_likelihood() - 1e-6,
            "fitted {} < fixed {}",
            fitted.log_marginal_likelihood(),
            fixed.log_marginal_likelihood()
        );
    }

    #[test]
    fn mismatched_data_is_rejected() {
        let err = GaussianProcess::fit(vec![vec![0.0]], vec![1.0, 2.0], &GpConfig::fixed());
        assert!(matches!(err, Err(GpError::DataMismatch { .. })));
        let err =
            GaussianProcess::fit(vec![vec![0.0], vec![0.0, 1.0]], vec![1.0, 2.0], &GpConfig::fixed());
        assert!(matches!(err, Err(GpError::DimensionMismatch { .. })));
    }

    #[test]
    fn non_finite_data_is_rejected() {
        let err =
            GaussianProcess::fit(vec![vec![f64::NAN]], vec![1.0], &GpConfig::fixed());
        assert!(matches!(err, Err(GpError::NonFinite)));
        let err = GaussianProcess::fit(vec![vec![0.0]], vec![f64::INFINITY], &GpConfig::fixed());
        assert!(matches!(err, Err(GpError::NonFinite)));
    }

    #[test]
    fn predict_batch_is_bitwise_identical_to_per_point_predict() {
        let (xs, ys) = toy_data();
        let cfg = GpConfig { seed: 5, ..Default::default() };
        let gp = GaussianProcess::fit(xs, ys, &cfg).unwrap();
        let pts: Vec<Vec<f64>> = (0..37).map(|i| vec![i as f64 / 36.0 * 1.4 - 0.2]).collect();
        let batch = gp.predict_batch(&pts).unwrap();
        assert_eq!(batch.len(), pts.len());
        for (p, b) in pts.iter().zip(&batch) {
            let single = gp.predict(p).unwrap();
            assert_eq!(single.mean.to_bits(), b.mean.to_bits(), "mean at {p:?}");
            assert_eq!(single.variance.to_bits(), b.variance.to_bits(), "variance at {p:?}");
        }
    }

    #[test]
    fn predict_batch_handles_empty_batches_and_empty_gps() {
        let gp = GaussianProcess::fit(Vec::new(), Vec::new(), &GpConfig::fixed()).unwrap();
        let preds = gp.predict_batch(&[vec![0.2], vec![0.9]]).unwrap();
        for (pred, point) in preds.iter().zip([[0.2], [0.9]]) {
            assert_eq!(*pred, gp.predict(&point).unwrap());
        }
        let (xs, ys) = toy_data();
        let fitted = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        assert!(fitted.predict_batch(&[]).unwrap().is_empty());
        assert!(matches!(
            fitted.predict_batch(&[vec![0.1, 0.2]]),
            Err(GpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn sample_joint_matches_posterior_moments() {
        let (xs, ys) = toy_data();
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        let pts = vec![vec![0.25], vec![0.8]];
        let mut rng = StdRng::seed_from_u64(42);
        let samples = gp.sample_joint(&pts, 4000, &mut rng).unwrap();
        for (j, pt) in pts.iter().enumerate() {
            let pred = gp.predict(pt).unwrap();
            let vals: Vec<f64> = samples.iter().map(|s| s[j]).collect();
            let mean = linalg::vector::mean(&vals);
            assert!(
                (mean - pred.mean).abs() < 0.08,
                "point {j}: sample mean {mean} vs posterior {}",
                pred.mean
            );
        }
    }

    #[test]
    fn loo_predictions_match_explicit_refit() {
        let (xs, ys) = toy_data();
        let gp = GaussianProcess::fit_with_kernel(
            xs.clone(),
            ys.clone(),
            Matern52::with_hyperparameters(&[0.3], 1.0),
            &GpConfig::fixed(),
        )
        .unwrap();
        let loo = gp.loo_predictions().unwrap();
        // Explicitly refit without point 5 and compare prediction at x_5.
        let hold = 5;
        let mut xs2 = xs.clone();
        let mut ys2 = ys.clone();
        xs2.remove(hold);
        ys2.remove(hold);
        let gp2 = GaussianProcess::fit_with_kernel(
            xs2,
            ys2,
            Matern52::with_hyperparameters(&[0.3], 1.0),
            &GpConfig::fixed(),
        )
        .unwrap();
        let direct = gp2.predict(&xs[hold]).unwrap();
        // The closed-form LOO centers on the full-data mean, so allow a small
        // tolerance rather than exact agreement.
        assert!(
            (loo[hold].mean - direct.mean).abs() < 0.05,
            "loo {} vs refit {}",
            loo[hold].mean,
            direct.mean
        );
    }

    #[test]
    fn fitted_gp_survives_json_roundtrip() {
        // The data repository persists fitted task models as JSON; the
        // reconstructed GP must predict identically.
        let (xs, ys) = toy_data();
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::fixed()).unwrap();
        let json = minjson::to_string(&gp).unwrap();
        let back: GaussianProcess = minjson::from_str(&json).unwrap();
        let p = gp.predict(&[0.41]).unwrap();
        let q = back.predict(&[0.41]).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn extend_is_bit_identical_to_full_refit_with_same_hypers() {
        let (xs, ys) = toy_data();
        let cfg = GpConfig::fixed();
        let mut gp = GaussianProcess::fit(xs[..10].to_vec(), ys[..10].to_vec(), &cfg).unwrap();
        gp.extend(xs[10].clone(), ys[10], &cfg).unwrap();
        gp.extend(xs[11].clone(), ys[11], &cfg).unwrap();
        let full = GaussianProcess::fit(xs.clone(), ys.clone(), &cfg).unwrap();
        assert_eq!(gp.n(), full.n());
        for p in [vec![0.13], vec![0.5], vec![0.97]] {
            let a = gp.predict(&p).unwrap();
            let b = full.predict(&p).unwrap();
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "mean at {p:?}");
            assert_eq!(a.variance.to_bits(), b.variance.to_bits(), "variance at {p:?}");
        }
        assert_eq!(gp.log_marginal_likelihood().to_bits(), full.log_marginal_likelihood().to_bits());
    }

    #[test]
    fn extend_from_empty_and_bad_input_are_handled() {
        let cfg = GpConfig::fixed();
        let mut gp = GaussianProcess::fit(Vec::new(), Vec::new(), &cfg).unwrap();
        // Empty GPs default to dim 1; extending from empty takes the full
        // refit path.
        gp.extend(vec![0.4], 1.0, &cfg).unwrap();
        assert_eq!(gp.n(), 1);
        assert!(gp.predict(&[0.4]).unwrap().variance.is_finite());
        assert!(matches!(
            gp.extend(vec![0.1, 0.2], 0.0, &cfg),
            Err(GpError::DimensionMismatch { .. })
        ));
        assert!(matches!(gp.extend(vec![f64::NAN], 0.0, &cfg), Err(GpError::NonFinite)));
        assert!(matches!(gp.extend(vec![0.5], f64::INFINITY, &cfg), Err(GpError::NonFinite)));
        assert_eq!(gp.n(), 1, "rejected extensions must not grow the training set");
    }

    #[test]
    fn set_targets_matches_fresh_fit_bitwise() {
        let (xs, ys) = toy_data();
        let cfg = GpConfig::fixed();
        let mut gp = GaussianProcess::fit(xs.clone(), ys.clone(), &cfg).unwrap();
        // Re-standardized targets: every value changes, inputs don't.
        let ys2: Vec<f64> = ys.iter().map(|v| 2.5 * v - 0.3).collect();
        gp.set_targets(ys2.clone()).unwrap();
        let full = GaussianProcess::fit(xs, ys2, &cfg).unwrap();
        for p in [vec![0.21], vec![0.76]] {
            let a = gp.predict(&p).unwrap();
            let b = full.predict(&p).unwrap();
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.variance.to_bits(), b.variance.to_bits());
        }
        assert!(matches!(gp.set_targets(vec![1.0]), Err(GpError::DataMismatch { .. })));
        assert!(matches!(
            gp.set_targets(vec![f64::NAN; gp.n()]),
            Err(GpError::NonFinite)
        ));
    }

    #[test]
    fn extended_gp_survives_json_roundtrip() {
        let (xs, ys) = toy_data();
        let cfg = GpConfig::fixed();
        let mut gp = GaussianProcess::fit(xs[..11].to_vec(), ys[..11].to_vec(), &cfg).unwrap();
        gp.extend(xs[11].clone(), ys[11], &cfg).unwrap();
        let json = minjson::to_string(&gp).unwrap();
        let back: GaussianProcess = minjson::from_str(&json).unwrap();
        assert_eq!(gp.predict(&[0.63]).unwrap(), back.predict(&[0.63]).unwrap());
    }

    #[test]
    fn hyperopt_keeps_the_best_iterate_not_the_last() {
        // Regression for the last-iterate bug: warm-start a single restart
        // from *already optimized* hyperparameters, then run Adam with an
        // absurdly large learning rate so it diverges — the last iterate is
        // strictly worse than the warm start (an intermediate trajectory
        // point). Best-iterate selection must keep the warm start; the old
        // code kept the diverged final step.
        let (xs, ys) = toy_data();
        let tuned = GaussianProcess::fit(
            xs.clone(),
            ys.clone(),
            &GpConfig { adam_iters: 60, seed: 2, ..Default::default() },
        )
        .unwrap();
        let cfg = GpConfig {
            restarts: 1,
            adam_iters: 8,
            learning_rate: 5.0,
            initial_noise: tuned.noise_std(),
            ..Default::default()
        };
        let refit =
            GaussianProcess::fit_with_kernel(xs, ys, tuned.kernel().clone(), &cfg).unwrap();
        assert!(
            refit.log_marginal_likelihood() >= tuned.log_marginal_likelihood() - 1e-6,
            "best-iterate hyperopt must not end below its warm start: refit {} < warm {}",
            refit.log_marginal_likelihood(),
            tuned.log_marginal_likelihood()
        );
    }

    #[test]
    fn predictions_are_deterministic() {
        let (xs, ys) = toy_data();
        let cfg = GpConfig { seed: 9, ..Default::default() };
        let a = GaussianProcess::fit(xs.clone(), ys.clone(), &cfg).unwrap();
        let b = GaussianProcess::fit(xs, ys, &cfg).unwrap();
        let pa = a.predict(&[0.37]).unwrap();
        let pb = b.predict(&[0.37]).unwrap();
        assert_eq!(pa, pb);
    }
}
