//! Leave-one-out calibration diagnostics for a fitted GP.
//!
//! A surrogate that is *accurate* can still be *mis-calibrated*: its
//! predictive variance may be far too small (overconfident — the acquisition
//! under-explores) or far too large (underconfident — expected improvement
//! flattens out). The classic check is the standardized LOO residual
//! `z_i = (y_i − μ_{−i}(x_i)) / σ_{−i}(x_i)`: for a well-specified model the
//! `z_i` are approximately standard normal, so `|z| ≤ 1` should hold for
//! ~68% of points and `|z| ≤ 2` for ~95%. This module condenses the closed-
//! form LOO predictions ([`GaussianProcess::loo_predictions`], Rasmussen &
//! Williams Eqs. 5.10–5.12) into a [`Calibration`] summary — z-score
//! magnitudes, empirical 1σ/2σ coverage, and the mean LOO negative log
//! predictive density (R&W Eq. 5.11) — consumed by `core::diag`'s per-
//! iteration `TunerHealth` event.
//!
//! Everything here is deterministic: no RNG streams are read, so emitting
//! calibration diagnostics cannot move a bit of a seeded tuning run.

use crate::process::{GaussianProcess, GpError, Prediction};

/// Floor on the LOO predictive standard deviation, guarding the division in
/// the z-score and the log in the NLL against a numerically-zero variance.
const STD_FLOOR: f64 = 1e-12;

/// Standardized-residual calibration summary of a fitted GP, from its
/// closed-form leave-one-out predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Training points the summary is computed over.
    pub n: usize,
    /// Mean `|z|` of the standardized LOO residuals (≈ 0.80 when healthy).
    pub mean_abs_z: f64,
    /// Largest `|z|` — a single wild residual flags a surprise observation.
    pub max_abs_z: f64,
    /// Mean LOO negative log predictive density (R&W Eq. 5.11; lower is
    /// better, scale depends on the target's units).
    pub loo_nll: f64,
    /// Fraction of residuals with `|z| ≤ 1` (≈ 0.683 when well-calibrated).
    pub coverage_1s: f64,
    /// Fraction of residuals with `|z| ≤ 2` (≈ 0.954 when well-calibrated).
    pub coverage_2s: f64,
}

impl Calibration {
    /// An empty summary (zero points, all statistics zero).
    pub fn empty() -> Calibration {
        Calibration {
            n: 0,
            mean_abs_z: 0.0,
            max_abs_z: 0.0,
            loo_nll: 0.0,
            coverage_1s: 0.0,
            coverage_2s: 0.0,
        }
    }

    /// Summarizes observed targets against their LOO predictions. The two
    /// slices are paired by index; lengths must match.
    pub fn from_loo(y: &[f64], loo: &[Prediction]) -> Calibration {
        assert_eq!(y.len(), loo.len(), "targets and LOO predictions must pair up");
        let n = y.len();
        if n == 0 {
            return Calibration::empty();
        }
        let mut sum_abs_z = 0.0;
        let mut max_abs_z = 0.0f64;
        let mut nll = 0.0;
        let mut within_1s = 0usize;
        let mut within_2s = 0usize;
        for (yi, p) in y.iter().zip(loo) {
            let std = p.std_dev().max(STD_FLOOR);
            let r = yi - p.mean;
            let z = (r / std).abs();
            sum_abs_z += z;
            max_abs_z = max_abs_z.max(z);
            nll += 0.5 * (2.0 * std::f64::consts::PI * std * std).ln() + z * z / 2.0;
            if z <= 1.0 {
                within_1s += 1;
            }
            if z <= 2.0 {
                within_2s += 1;
            }
        }
        let nf = n as f64;
        Calibration {
            n,
            mean_abs_z: sum_abs_z / nf,
            max_abs_z,
            loo_nll: nll / nf,
            coverage_1s: within_1s as f64 / nf,
            coverage_2s: within_2s as f64 / nf,
        }
    }
}

impl GaussianProcess {
    /// The LOO calibration summary of this fitted model (see [`Calibration`]).
    pub fn loo_calibration(&self) -> Result<Calibration, GpError> {
        let loo = self.loo_predictions()?;
        Ok(Calibration::from_loo(self.train_y(), &loo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::GpConfig;
    use crate::rand_util;
    use xrand::rngs::StdRng;
    use xrand::SeedableRng;

    /// 50 noisy observations of a smooth 1-D function — a task the default
    /// hyperparameter search is well-specified for.
    fn synthetic_task(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = 0.1;
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0] * std::f64::consts::TAU).sin() + noise * rand_util::standard_normal(&mut rng))
            .collect();
        (xs, ys)
    }

    #[test]
    fn well_specified_gp_reports_nominal_one_sigma_coverage() {
        // Satellite gate: over 50 iterations of a well-specified synthetic
        // task, empirical 1σ coverage must land in [0.55, 0.80] — the band
        // around the nominal 0.683 that separates "healthy" from "mis-scaled"
        // in the health telemetry.
        let (xs, ys) = synthetic_task(17, 50);
        let gp = GaussianProcess::fit(xs, ys, &GpConfig::default()).unwrap();
        let cal = gp.loo_calibration().unwrap();
        assert_eq!(cal.n, 50);
        assert!(
            (0.55..=0.80).contains(&cal.coverage_1s),
            "well-specified 1σ coverage {} outside [0.55, 0.80]",
            cal.coverage_1s
        );
        assert!(cal.coverage_2s >= cal.coverage_1s);
        assert!(cal.mean_abs_z < 1.5, "mean |z| {} too large", cal.mean_abs_z);
        assert!(cal.loo_nll.is_finite());
    }

    #[test]
    fn mis_scaled_targets_fall_outside_the_coverage_band() {
        // Deliberate mis-scaling: keep the hyperparameters fitted for the
        // original targets but swap in targets 100x larger. The predictive
        // std stays the same while residuals blow up, so the model is grossly
        // overconfident — coverage collapses below the band and mean |z|
        // explodes. This is exactly the failure mode the health event flags.
        let (xs, ys) = synthetic_task(17, 50);
        let mut gp = GaussianProcess::fit(xs, ys.clone(), &GpConfig::default()).unwrap();
        gp.set_targets(ys.iter().map(|y| y * 100.0).collect()).unwrap();
        let cal = gp.loo_calibration().unwrap();
        assert!(
            !(0.55..=0.80).contains(&cal.coverage_1s),
            "mis-scaled 1σ coverage {} should fall outside [0.55, 0.80]",
            cal.coverage_1s
        );
        assert!(cal.mean_abs_z > 2.0, "mis-scaled mean |z| {} should explode", cal.mean_abs_z);
    }

    #[test]
    fn empty_and_singleton_summaries_are_defined() {
        let empty = Calibration::from_loo(&[], &[]);
        assert_eq!(empty, Calibration::empty());
        let one = Calibration::from_loo(
            &[1.0],
            &[Prediction { mean: 1.0, variance: 1.0 }],
        );
        assert_eq!(one.n, 1);
        assert_eq!(one.coverage_1s, 1.0);
        assert_eq!(one.mean_abs_z, 0.0);
    }
}
