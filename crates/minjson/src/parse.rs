//! A strict recursive-descent JSON parser.
//!
//! Accepts exactly the RFC 8259 grammar: no trailing commas, no comments,
//! no bare `NaN`/`Infinity` tokens. Numbers are parsed into `f64` via the
//! standard library, which round-trips the shortest-form output of the
//! printer bit-exactly.

use crate::{Json, JsonError};

/// Parses a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl std::fmt::Display) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            self.digits();
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII");
        let value: f64 = token
            .parse()
            .map_err(|_| self.err(format!("unparseable number `{token}`")))?;
        if !value.is_finite() {
            return Err(self.err(format!("number `{token}` overflows f64")));
        }
        Ok(Json::Num(value))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one complete UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// combining surrogate pairs into one scalar.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined =
                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" { "a": [1, -2.5, 1e3], "b": {"c": null, "d": [true, false]}, "e": "x" } "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.field("b").unwrap().field("c").unwrap(), &Json::Null);
        assert_eq!(v.field("e").unwrap().as_str().unwrap(), "x");
    }

    #[test]
    fn number_grammar_is_strict() {
        for bad in ["01", "+1", ".5", "1.", "1e", "1e+", "--1", "0x10"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        for good in ["0", "-0", "10", "1.5", "1e3", "1E-3", "2.5e+10"] {
            assert!(parse(good).is_ok(), "{good:?} must parse");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn huge_numbers_are_rejected() {
        assert!(parse("1e999").is_err());
    }
}
