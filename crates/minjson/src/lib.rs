//! Minimal JSON for a hermetic workspace.
//!
//! Replaces the `serde`/`serde_json` pair with a single no-derive crate:
//! a [`Json`] value type, a strict parser, compact and pretty printers, and
//! [`ToJson`]/[`FromJson`] traits wired up for concrete types with the
//! [`json_struct!`] and [`json_enum!`] macros.
//!
//! Two properties are load-bearing for the ResTune reproduction:
//!
//! * **Determinism** — objects keep insertion order (`Vec<(String, Json)>`,
//!   not a hash map), so the same data always renders to byte-identical
//!   text. The golden end-to-end test compares repository JSON by bytes.
//! * **Float fidelity** — numbers render via Rust's shortest round-trip
//!   formatting, so `parse(render(x)) == x` for every finite `f64` (knob
//!   bounds survive exactly). Non-finite numbers are rejected at render
//!   time: NaN/inf must never silently enter a persisted artifact.

mod parse;
mod print;

pub use parse::parse;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Errors from parsing, printing, or decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// A new error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        parse::parse(text)
    }

    /// Renders compactly (no whitespace). Fails on non-finite numbers.
    pub fn render(&self) -> Result<String, JsonError> {
        print::render(self, None)
    }

    /// Renders with 2-space indentation. Fails on non-finite numbers.
    pub fn render_pretty(&self) -> Result<String, JsonError> {
        print::render(self, Some(2))
    }

    /// The value of `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value of `key`, or a decode error naming the missing field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for the value's type (used in decode errors).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes `Self` from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Renders any [`ToJson`] value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    value.to_json().render()
}

/// Renders any [`ToJson`] value with pretty indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    value.to_json().render_pretty()
}

/// Parses and decodes any [`FromJson`] value.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse::parse(text)?)
}

fn type_error(expected: &str, got: &Json) -> JsonError {
    JsonError::new(format!("expected {expected}, got {}", got.type_name()))
}

// ---- primitive impls -------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| type_error("bool", v))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| type_error("number", v))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v.as_f64().ok_or_else(|| type_error("integer", v))?;
                if n.fract() != 0.0 || !n.is_finite() {
                    return Err(JsonError::new(format!("expected integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(JsonError::new(format!(
                        "{n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| type_error("string", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| type_error("array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::new(format!("expected {N}-element array, got {n}")))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(type_error("2-element array", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(type_error("3-element array", v)),
        }
    }
}

// ---- macros ---------------------------------------------------------------

/// Implements [`ToJson`]/[`FromJson`] for a struct with named public fields,
/// mapping each field to an identically named JSON object key in declaration
/// order (order matters for byte-stable output).
///
/// ```
/// struct Point { x: f64, y: f64 }
/// minjson::json_struct!(Point { x, y });
/// let p: Point = minjson::from_str(r#"{"x":1.0,"y":2.5}"#).unwrap();
/// assert_eq!(minjson::to_string(&p).unwrap(), r#"{"x":1,"y":2.5}"#);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::FromJson::from_json(v.field(stringify!($field))?)?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a unit-variant enum, encoding each
/// variant as its name string (the same representation `serde` used, so
/// existing artifacts stay readable).
///
/// ```
/// #[derive(PartialEq, Debug)]
/// enum Kind { Cpu, Memory }
/// minjson::json_enum!(Kind { Cpu, Memory });
/// assert_eq!(minjson::from_str::<Kind>(r#""Cpu""#).unwrap(), Kind::Cpu);
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Str(
                    match self {
                        $(Self::$variant => stringify!($variant),)+
                    }
                    .to_string(),
                )
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let s = v.as_str().ok_or_else(|| {
                    $crate::JsonError::new(concat!("expected ", stringify!($ty), " variant string"))
                })?;
                match s {
                    $(stringify!($variant) => Ok(Self::$variant),)+
                    other => Err($crate::JsonError::new(format!(
                        "unknown {} variant `{other}`",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        name: String,
        value: f64,
        count: usize,
        tags: Vec<String>,
        maybe: Option<f64>,
    }

    json_struct!(Sample { name, value, count, tags, maybe });

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }

    json_enum!(Color { Red, Green });

    fn sample() -> Sample {
        Sample {
            name: "knob".to_string(),
            value: 0.1 + 0.2,
            count: 42,
            tags: vec!["a".into(), "b".into()],
            maybe: None,
        }
    }

    #[test]
    fn struct_roundtrips_compact_and_pretty() {
        let s = sample();
        for text in [to_string(&s).unwrap(), to_string_pretty(&s).unwrap()] {
            let back: Sample = from_str(&text).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn rendering_is_byte_stable() {
        assert_eq!(to_string(&sample()).unwrap(), to_string(&sample()).unwrap());
        assert_eq!(
            to_string_pretty(&sample()).unwrap(),
            to_string_pretty(&sample()).unwrap()
        );
    }

    #[test]
    fn float_fidelity_shortest_roundtrip() {
        for v in [
            0.1,
            0.30000000000000004,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            1e15 + 1.0,
            -0.0,
        ] {
            let text = Json::Num(v).render().unwrap();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text} -> {back}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render().unwrap(), "42");
        assert_eq!(Json::Num(-7.0).render().unwrap(), "-7");
        assert_eq!(to_string(&42usize).unwrap(), "42");
    }

    #[test]
    fn non_finite_numbers_are_rejected_at_render() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Json::Num(v).render().is_err(), "{v} must not render");
            assert!(Json::Arr(vec![Json::Num(v)]).render_pretty().is_err());
        }
    }

    #[test]
    fn non_finite_tokens_are_rejected_at_parse() {
        for text in ["NaN", "Infinity", "-Infinity", "[1, NaN]"] {
            assert!(Json::parse(text).is_err(), "{text} must not parse");
        }
    }

    #[test]
    fn enums_use_variant_name_strings() {
        assert_eq!(to_string(&Color::Red).unwrap(), r#""Red""#);
        assert_eq!(from_str::<Color>(r#""Green""#).unwrap(), Color::Green);
        assert!(from_str::<Color>(r#""Blue""#).is_err());
        assert!(from_str::<Color>("3").is_err());
    }

    #[test]
    fn missing_field_is_a_named_error() {
        let err = from_str::<Sample>(r#"{"name":"x"}"#).unwrap_err();
        assert!(err.to_string().contains("value"), "{err}");
    }

    #[test]
    fn option_null_roundtrip() {
        let mut s = sample();
        s.maybe = Some(1.5);
        let back: Sample = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back.maybe, Some(1.5));
        s.maybe = None;
        let back: Sample = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back.maybe, None);
    }

    #[test]
    fn tuples_and_arrays_roundtrip() {
        let v: Vec<(String, Vec<f64>)> = vec![("curve".into(), vec![1.0, 0.5])];
        let back: Vec<(String, Vec<f64>)> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let a: [f64; 3] = [1.0, 2.0, 3.0];
        let back: [f64; 3] = from_str(&to_string(&a).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in ["plain", "with \"quotes\"", "tab\tnewline\n", "unicode \u{1F600} é", "\u{0007}"] {
            let text = Json::Str(s.to_string()).render().unwrap();
            assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "{}extra"] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let obj = Json::Obj(vec![
            ("z".to_string(), Json::Num(1.0)),
            ("a".to_string(), Json::Num(2.0)),
        ]);
        assert_eq!(obj.render().unwrap(), r#"{"z":1,"a":2}"#);
    }
}
