//! Compact and pretty printers.
//!
//! Output is deterministic down to the byte: object fields print in stored
//! (insertion) order, floats use Rust's shortest round-trip formatting, and
//! integral values drop the fractional part (`42`, not `42.0`). Non-finite
//! numbers are an error — persisted artifacts must never contain NaN/inf.

use crate::{Json, JsonError};

/// Largest magnitude at which every integral f64 is exactly representable,
/// so printing it as an integer loses nothing.
const EXACT_INT_LIMIT: f64 = 9_007_199_254_740_992.0; // 2^53

/// Renders `value`; `indent = Some(n)` pretty-prints with `n`-space levels.
pub fn render(value: &Json, indent: Option<usize>) -> Result<String, JsonError> {
    let mut out = String::new();
    write_value(&mut out, value, indent, 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Json,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), JsonError> {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(v) => write_number(out, *v)?,
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, v: f64) -> Result<(), JsonError> {
    if !v.is_finite() {
        return Err(JsonError::new(format!(
            "cannot serialize non-finite number ({v})"
        )));
    }
    use std::fmt::Write;
    if v.fract() == 0.0 && v.abs() < EXACT_INT_LIMIT {
        // -0.0 normalizes through i64 formatting; guard it to keep the sign.
        if v == 0.0 && v.is_sign_negative() {
            out.push_str("-0.0");
        } else {
            write!(out, "{}", v as i64).expect("write to String");
        }
    } else {
        // Rust's Display for f64 is the shortest string that parses back
        // to the same bits — exactly the fidelity guarantee we need.
        write!(out, "{v}").expect("write to String");
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_expected_layout() {
        let doc = Json::Obj(vec![
            ("a".to_string(), Json::Num(1.0)),
            (
                "b".to_string(),
                Json::Arr(vec![Json::Num(1.5), Json::Str("x".to_string())]),
            ),
            ("c".to_string(), Json::Obj(vec![])),
        ]);
        let expected = "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    \"x\"\n  ],\n  \"c\": {}\n}";
        assert_eq!(doc.render_pretty().unwrap(), expected);
    }

    #[test]
    fn compact_has_no_whitespace() {
        let doc = Json::Obj(vec![(
            "a".to_string(),
            Json::Arr(vec![Json::Num(1.0), Json::Bool(true)]),
        )]);
        assert_eq!(doc.render().unwrap(), r#"{"a":[1,true]}"#);
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let text = Json::Num(-0.0).render().unwrap();
        let back = crate::parse(&text).unwrap().as_f64().unwrap();
        assert!(back == 0.0 && back.is_sign_negative(), "{text} -> {back}");
    }

    #[test]
    fn control_chars_escape_as_hex() {
        assert_eq!(
            Json::Str("\u{0001}".to_string()).render().unwrap(),
            "\"\\u0001\""
        );
    }
}
