//! Figures 3, 4, and 5: best-feasible-CPU tuning curves per workload and
//! method under the paper's three repository settings.
//!
//! * Figure 3 — *original* setting, all 34 historical tasks available.
//! * Figure 4 — *varying hardware*: the target instance's history is held
//!   out (transfer B→A / A→B).
//! * Figure 5 — *varying workloads*: the target workload's history is held
//!   out.

use crate::context::ExperimentContext;
use crate::report;
use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};

/// One method's averaged curve on one workload.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Method legend name.
    pub method: String,
    /// Best-feasible CPU (%) per iteration, averaged over repeats.
    pub best_cpu: Vec<f64>,
    /// Iterations to reach within 1 % of the final best (averaged).
    pub iterations_to_best: f64,
    /// Final best CPU.
    pub final_best: f64,
}

/// One workload's panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Workload name.
    pub workload: String,
    /// Default CPU (the flat baseline line).
    pub default_cpu: f64,
    /// Method curves.
    pub curves: Vec<Curve>,
}

/// A full figure: one panel per workload.
#[derive(Debug, Clone)]
pub struct EfficiencyResult {
    /// Figure id ("fig3", "fig4", "fig5").
    pub figure: String,
    /// Evaluation setting used.
    pub setting: String,
    /// Instance tuned.
    pub instance: String,
    /// Panels in Figure 3 workload order.
    pub panels: Vec<Panel>,
}

/// Iterations until the curve first reaches within 1 % of its final value.
pub fn iterations_to_best(curve: &[f64]) -> usize {
    let last = *curve.last().unwrap_or(&0.0);
    curve
        .iter()
        .position(|v| *v <= last * 1.01)
        .map(|i| i + 1)
        .unwrap_or(curve.len())
}

/// Runs one figure: every workload × method, averaged over repeats.
pub fn run(
    ctx: &ExperimentContext,
    figure: &str,
    setting: Setting,
    instance: InstanceType,
    methods: &[Method],
    workloads: &[WorkloadSpec],
    iterations: usize,
) -> EfficiencyResult {
    let repeats = ctx.scale.repeats();
    let mut panels = Vec::new();
    for workload in workloads {
        eprintln!("[{figure}] {} on {instance:?} ...", workload.name);
        // Methods are independent: run them on scoped threads (seeds are
        // fixed per run, so parallelism never changes the results).
        let results: Vec<(Curve, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = methods
                .iter()
                .map(|&method| {
                    scope.spawn(move || {
                        let mut acc: Vec<f64> = vec![0.0; iterations];
                        let mut itb = 0.0;
                        let mut final_best = 0.0;
                        let mut default_cpu = 0.0;
                        for rep in 0..repeats {
                            let seed = ctx.seed + 1000 * rep as u64 + 17;
                            let outcome =
                                ctx.run(method, instance, workload, setting, iterations, seed);
                            default_cpu = outcome.default_obj_value;
                            let curve = outcome.best_curve();
                            for (a, v) in acc.iter_mut().zip(&curve) {
                                *a += v;
                            }
                            itb += iterations_to_best(&curve) as f64;
                            final_best += *curve.last().unwrap();
                        }
                        let n = repeats as f64;
                        for a in &mut acc {
                            *a /= n;
                        }
                        (
                            Curve {
                                method: method.name().to_string(),
                                best_cpu: acc,
                                iterations_to_best: itb / n,
                                final_best: final_best / n,
                            },
                            default_cpu,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("method run panicked")).collect()
        });
        let default_cpu = results.last().map(|(_, d)| *d).unwrap_or(0.0);
        let curves = results.into_iter().map(|(c, _)| c).collect();
        panels.push(Panel { workload: workload.name.clone(), default_cpu, curves });
    }
    EfficiencyResult {
        figure: figure.to_string(),
        setting: format!("{setting:?}"),
        instance: format!("{instance:?}"),
        panels,
    }
}

/// Prints every panel's curves plus the ResTune-vs-baseline speedups.
pub fn render(r: &EfficiencyResult) {
    report::header(&format!(
        "{} — best feasible CPU vs iteration ({} setting, instance {})",
        r.figure, r.setting, r.instance
    ));
    for panel in &r.panels {
        println!("\n--- {} (default CPU {:.1}%) ---", panel.workload, panel.default_cpu);
        for curve in &panel.curves {
            report::series(&curve.method, &curve.best_cpu, 12);
        }
        println!("{:<22} {:>10} {:>12}", "method", "final CPU%", "iters-to-best");
        for curve in &panel.curves {
            println!(
                "{:<22} {:>10.1} {:>12.0}",
                curve.method, curve.final_best, curve.iterations_to_best
            );
        }
        if let Some(restune) = panel.curves.iter().find(|c| c.method == "ResTune") {
            for other in &panel.curves {
                if other.method != "ResTune" && other.iterations_to_best > 0.0 {
                    // Speedup: how much earlier ResTune reaches the *other*
                    // method's final value.
                    let reach = restune
                        .best_cpu
                        .iter()
                        .position(|v| *v <= other.final_best * 1.01)
                        .map(|i| i + 1)
                        .unwrap_or(restune.best_cpu.len());
                    println!(
                        "  speedup vs {:<22} {:.1}x (reaches their final in {} iters vs {})",
                        other.method,
                        other.iterations_to_best / reach as f64,
                        reach,
                        other.iterations_to_best
                    );
                }
            }
        }
    }
}

minjson::json_struct!(Curve { method, best_cpu, iterations_to_best, final_best });
minjson::json_struct!(Panel { workload, default_cpu, curves });
minjson::json_struct!(EfficiencyResult { figure, setting, instance, panels });
