//! One module per paper artifact (or family of artifacts sharing a runner).
//!
//! | Module | Regenerates |
//! |---|---|
//! | [`fig1`] | Figure 1 — TPS & CPU heatmap over 2 knobs |
//! | [`table3`] | Table 3 — per-iteration execution-time breakdown |
//! | [`efficiency`] | Figures 3, 4, 5 — tuning curves under the three settings |
//! | [`table4`] | Table 4 — adaptation to instances C–F |
//! | [`case_study`] | Figure 6(a–e), Table 5, Table 6, Figure 7 (§7.3) |
//! | [`sensitivity`] | Figure 8 (request rate), Table 7 (data size) |
//! | [`resources`] | Figure 9 — I/O (BPS, IOPS) and memory tuning |
//! | [`tco`] | Tables 8–9 — 1-year TCO reduction |
//! | [`ablations`] | Design-choice ablations (acquisition, dilution guard, constraint sourcing) |
//! | [`fault_sweep`] | Improvement vs injected replay-failure rate (DESIGN.md §9) |

pub mod ablations;
pub mod case_study;
pub mod efficiency;
pub mod fault_sweep;
pub mod fig1;
pub mod resources;
pub mod sensitivity;
pub mod table3;
pub mod table4;
pub mod tco;
