//! Improvement-vs-injected-failure-rate sweep (*ours*, beyond the paper):
//! six-learner meta-boosted runs on the Twitter/CPU case-study space under
//! the `dbsim` fault model (DESIGN.md §9), sweeping the per-attempt transient
//! rate and reporting retained improvement, failure tallies, and the charged
//! replay wall-clock.

use dbsim::{FaultPlan, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::meta::BaseLearner;
use restune_core::problem::ResourceKind;
use restune_core::repository::{DataRepository, TaskRecord};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use workload::WorkloadCharacterizer;

/// Iterations per run.
pub const ITERS: usize = 25;
/// The seed matrix each rate is averaged over.
pub const SEEDS: [u64; 5] = [3, 7, 11, 23, 42];
/// The swept per-attempt transient fault rates.
pub const RATES: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.4];

/// One swept fault rate, aggregated over the seed matrix.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Injected per-attempt transient fault rate.
    pub rate: f64,
    /// Mean improvement over the default (fraction).
    pub improvement: f64,
    /// Total non-recovered crashes across the matrix.
    pub crashes: usize,
    /// Total non-recovered timeouts across the matrix.
    pub timeouts: usize,
    /// Total partial replays across the matrix.
    pub partials: usize,
    /// Total retried attempts across the matrix.
    pub retries: usize,
    /// Mean charged replay wall-clock per run, in minutes.
    pub replay_min: f64,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepResult {
    /// Iterations per run.
    pub iters: usize,
    /// Seeds averaged over.
    pub seeds: Vec<u64>,
    /// One row per injected rate (first row is fault-free).
    pub rows: Vec<FaultSweepRow>,
}

minjson::json_struct!(FaultSweepRow {
    rate,
    improvement,
    crashes,
    timeouts,
    partials,
    retries,
    replay_min
});
minjson::json_struct!(FaultSweepResult { iters, seeds, rows });

fn six_learners() -> (Vec<BaseLearner>, Vec<f64>) {
    let characterizer = WorkloadCharacterizer::train_default(5);
    let mut repo = DataRepository::new();
    let mut specs = WorkloadSpec::twitter_variations();
    specs.push(WorkloadSpec::sysbench());
    for (i, spec) in specs.into_iter().enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, 50 + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            15,
            70 + i as u64,
        ));
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;
    (learners, mf)
}

/// Runs the sweep. Failure tallies and the charged replay clock are read
/// from the trace collector (`replay.*` counters and the `replay.sim_s`
/// histogram, DESIGN.md §10) — the same data source as `trace_report` — so
/// the fault table and Table 3 render from one instrumentation layer.
pub fn run() -> FaultSweepResult {
    let (learners, mf) = six_learners();
    let was_enabled = trace::enabled();
    trace::enable();
    let mut rows = Vec::new();
    for rate in RATES {
        eprintln!("[fault_sweep] rate = {rate:.2} ...");
        let plan = FaultPlan::none().with_transient_rate(rate).with_seed(0xFA);
        let mut row = FaultSweepRow {
            rate,
            improvement: 0.0,
            crashes: 0,
            timeouts: 0,
            partials: 0,
            retries: 0,
            replay_min: 0.0,
        };
        for &seed in &SEEDS {
            trace::reset();
            let env = TuningEnvironment::builder()
                .instance(InstanceType::A)
                .workload(WorkloadSpec::twitter())
                .resource(ResourceKind::Cpu)
                .knob_set(KnobSet::case_study())
                .seed(seed)
                .fault_plan(plan)
                .build();
            let config = RestuneConfig {
                optimizer: AcquisitionOptimizer {
                    n_candidates: 300,
                    n_local: 60,
                    local_sigma: 0.08,
                },
                gp: gp::GpConfig { restarts: 1, adam_iters: 15, ..Default::default() },
                dynamic_samples: 12,
                init_iters: 3,
                seed,
                ..Default::default()
            };
            let outcome =
                TuningSession::with_base_learners(env, config, learners.clone(), mf.clone())
                    .run(ITERS);
            row.improvement += outcome.improvement();
            let snap = trace::snapshot();
            debug_assert_eq!(snap.counter("replay.retries") as usize, outcome.failures.retries);
            row.crashes += snap.counter("replay.crash") as usize;
            row.timeouts += snap.counter("replay.timeout") as usize;
            row.partials += snap.counter("replay.partial") as usize;
            row.retries += snap.counter("replay.retries") as usize;
            row.replay_min += snap.hist("replay.sim_s").map(|h| h.sum).unwrap_or(0.0) / 60.0;
        }
        row.improvement /= SEEDS.len() as f64;
        row.replay_min /= SEEDS.len() as f64;
        rows.push(row);
    }
    trace::reset();
    if !was_enabled {
        trace::disable();
    }
    FaultSweepResult { iters: ITERS, seeds: SEEDS.to_vec(), rows }
}

/// Prints the sweep as an aligned console table.
pub fn render(r: &FaultSweepResult) {
    let baseline = r.rows.first().map(|b| b.improvement).unwrap_or(0.0);
    println!(
        "{:<6} {:>12} {:>10} {:>8} {:>9} {:>9} {:>9} {:>12}",
        "rate", "improve(%)", "vs 0.0(%)", "crashes", "timeouts", "partials", "retries",
        "replay(min)"
    );
    for row in &r.rows {
        let retained =
            if baseline > 0.0 { 100.0 * row.improvement / baseline } else { 0.0 };
        println!(
            "{:<6.2} {:>12.2} {:>10.1} {:>8} {:>9} {:>9} {:>9} {:>12.1}",
            row.rate,
            100.0 * row.improvement,
            retained,
            row.crashes,
            row.timeouts,
            row.partials,
            row.retries,
            row.replay_min,
        );
    }
}
