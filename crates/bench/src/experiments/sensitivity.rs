//! Sensitivity analyses (§7.4): Figure 8 (varying request rate) and Table 7
//! (varying data size).

use crate::context::ExperimentContext;
use crate::report;
use baselines::method::Setting;
use baselines::Method;
use dbsim::{Configuration, InstanceType, SimulatedDbms, WorkloadSpec};

/// One request-rate point of Figure 8.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// Client request rate (txn/s).
    pub rate: f64,
    /// CPU under the default configuration.
    pub default_cpu: f64,
    /// Best feasible CPU ResTune found at this rate.
    pub tuned_cpu: f64,
    /// CPU when applying the knobs tuned at the *reference* rate (the paper's
    /// red transfer line).
    pub transferred_cpu: f64,
    /// Whether the transferred knobs met this rate's SLA.
    pub transferred_feasible: bool,
}

/// Figure 8 for one workload.
#[derive(Debug, Clone)]
pub struct Fig8Panel {
    /// Workload name.
    pub workload: String,
    /// The reference rate whose knobs are transferred.
    pub reference_rate: f64,
    /// Sweep points.
    pub points: Vec<RatePoint>,
}

/// Figure 8: both panels.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// TPC-C panel (1.5 K – 2.2 K txn/s).
    pub tpcc: Fig8Panel,
    /// SYSBENCH panel (16 K – 23 K txn/s).
    pub sysbench: Fig8Panel,
}

fn sweep(
    ctx: &ExperimentContext,
    base: &WorkloadSpec,
    rates: &[f64],
    iterations: usize,
) -> Fig8Panel {
    let reference_rate = rates[rates.len() / 2];
    // Tune once at the reference rate; transfer those knobs everywhere.
    let ref_workload = base.clone().with_request_rate(reference_rate);
    eprintln!("[fig8] tuning {} at {} txn/s ...", base.name, reference_rate);
    let ref_outcome = ctx.run(
        Method::Restune,
        InstanceType::A,
        &ref_workload,
        Setting::Original,
        iterations,
        ctx.seed + 21,
    );
    let transferred = ref_outcome.best_config.clone();

    let mut points = Vec::new();
    for &rate in rates {
        let workload = base.clone().with_request_rate(rate);
        eprintln!("[fig8] {} @ {} txn/s ...", base.name, rate);
        let outcome = ctx.run(
            Method::Restune,
            InstanceType::A,
            &workload,
            Setting::Original,
            iterations,
            ctx.seed + 22,
        );
        // Evaluate the transferred knobs at this rate (noiseless).
        let dbms = SimulatedDbms::new(InstanceType::A, workload.clone(), 0).with_noise(0.0);
        let default_obs = dbms.evaluate_noiseless(&Configuration::dba_default());
        let sla = restune_core::problem::SlaConstraints::from_default_observation(&default_obs);
        let tobs = dbms.evaluate_noiseless(&transferred);
        points.push(RatePoint {
            rate,
            default_cpu: outcome.default_obj_value,
            tuned_cpu: outcome.best_objective.unwrap_or(outcome.default_obj_value),
            transferred_cpu: tobs.resources.cpu_pct,
            transferred_feasible: sla.is_feasible(&tobs),
        });
    }
    Fig8Panel { workload: base.name.clone(), reference_rate, points }
}

/// Runs both Figure 8 panels.
pub fn run_fig8(ctx: &ExperimentContext, iterations: usize) -> Fig8Result {
    let tpcc_rates: Vec<f64> = (0..8).map(|i| 1500.0 + 100.0 * i as f64).collect();
    let sysbench_rates: Vec<f64> = (0..8).map(|i| 16_000.0 + 1_000.0 * i as f64).collect();
    Fig8Result {
        tpcc: sweep(ctx, &WorkloadSpec::tpcc(), &tpcc_rates, iterations),
        sysbench: sweep(ctx, &WorkloadSpec::sysbench(), &sysbench_rates, iterations),
    }
}

/// Prints Figure 8.
pub fn render_fig8(r: &Fig8Result) {
    for panel in [&r.tpcc, &r.sysbench] {
        report::header(&format!(
            "Figure 8 — request-rate sensitivity, {} (knobs transferred from {} txn/s)",
            panel.workload, panel.reference_rate
        ));
        let widths = [10usize, 12, 11, 14, 12];
        report::row(
            &[
                "rate".into(),
                "default CPU".into(),
                "tuned CPU".into(),
                "transfer CPU".into(),
                "trans-SLA".into(),
            ],
            &widths,
        );
        for p in &panel.points {
            report::row(
                &[
                    format!("{:.0}", p.rate),
                    format!("{:.1}%", p.default_cpu),
                    format!("{:.1}%", p.tuned_cpu),
                    format!("{:.1}%", p.transferred_cpu),
                    format!("{}", p.transferred_feasible),
                ],
                &widths,
            );
        }
    }
    println!("\nPaper shape: similar improvement at every rate; knobs transfer across rates.");
}

/// One Table 7 row.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// TPC-C warehouses.
    pub warehouses: u32,
    /// Dataset size (GB).
    pub size_gb: f64,
    /// Buffer-pool hit ratio under the default configuration.
    pub hit_ratio: f64,
    /// Default CPU (%).
    pub default_cpu: f64,
    /// Best feasible CPU after tuning.
    pub best_cpu: f64,
    /// Relative improvement.
    pub improvement: f64,
}

/// Table 7 result.
#[derive(Debug, Clone)]
pub struct Table7Result {
    /// Instance the sweep ran on.
    pub instance: String,
    /// Rows per warehouse count.
    pub rows: Vec<Table7Row>,
}

/// Runs the data-size sweep (TPC-C, warehouses per the paper's Table 7) on
/// instance D, whose 16 GB buffer pool reproduces the paper's hit-ratio
/// range (0.996 at 100 warehouses down to ~0.95 at 1000). The request rate
/// is lowered to what D sustains so CPU is not saturation-pinned.
pub fn run_table7(ctx: &ExperimentContext, iterations: usize) -> Table7Result {
    let instance = InstanceType::D;
    let mut rows = Vec::new();
    for warehouses in [100u32, 200, 500, 800, 1000] {
        let workload = WorkloadSpec::tpcc_warehouses(warehouses).with_request_rate(800.0);
        eprintln!("[table7] TPC-C {warehouses} warehouses ...");
        let dbms = SimulatedDbms::new(instance, workload.clone(), 0).with_noise(0.0);
        let breakdown = dbms.breakdown(&Configuration::dba_default());
        let outcome = ctx.run(
            Method::Restune,
            instance,
            &workload,
            Setting::Original,
            iterations,
            ctx.seed + 31,
        );
        let best = outcome.best_objective.unwrap_or(outcome.default_obj_value);
        rows.push(Table7Row {
            warehouses,
            size_gb: workload.data_gb,
            hit_ratio: 1.0 - breakdown.miss_ratio,
            default_cpu: outcome.default_obj_value,
            best_cpu: best,
            improvement: outcome.improvement(),
        });
    }
    Table7Result { instance: instance.name().to_string(), rows }
}

/// Prints Table 7.
pub fn render_table7(r: &Table7Result) {
    report::header(&format!("Table 7 — data-size sensitivity (TPC-C on instance {})", r.instance));
    let widths = [12usize, 10, 10, 12, 10, 12];
    report::row(
        &[
            "#Warehouses".into(),
            "Size(GB)".into(),
            "HitRatio".into(),
            "DefaultCPU".into(),
            "BestCPU".into(),
            "Improvement".into(),
        ],
        &widths,
    );
    for row in &r.rows {
        report::row(
            &[
                format!("{}", row.warehouses),
                format!("{:.2}", row.size_gb),
                format!("{:.3}", row.hit_ratio),
                format!("{:.2}", row.default_cpu),
                format!("{:.2}", row.best_cpu),
                format!("{:.2}%", row.improvement * 100.0),
            ],
            &widths,
        );
    }
    println!("\nPaper shape: hit ratio falls with data size; CPU drops sharply after tuning.");
}

minjson::json_struct!(RatePoint { rate, default_cpu, tuned_cpu, transferred_cpu, transferred_feasible });
minjson::json_struct!(Fig8Panel { workload, reference_rate, points });
minjson::json_struct!(Fig8Result { tpcc, sysbench });
minjson::json_struct!(Table7Row { warehouses, size_gb, hit_ratio, default_cpu, best_cpu, improvement });
minjson::json_struct!(Table7Result { instance, rows });
