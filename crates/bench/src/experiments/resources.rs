//! Figure 9 (§7.5): tuning I/O (BPS and IOPS, 20 knobs) and memory (6 knobs)
//! on instance E, transferring between SYSBENCH and TPC-C.
//!
//! Setup per the paper: I/O experiments fix the buffer pool (the I/O knob
//! set does not contain it) with 30 GB SYSBENCH / 100 GB TPC-C data; memory
//! experiments add `innodb_buffer_pool_frac` as a knob. The repository for
//! each target is built from the *other* workload's observations
//! (SYSBENCH→TPC-C and TPC-C→SYSBENCH — the varying-workloads flavor).

use crate::context::{build_repository_from, fit_learners, ExperimentContext};
use crate::report;
use baselines::method::Setting;
use baselines::{run_method, Method, MethodContext};
use dbsim::{InstanceType, WorkloadSpec};
use restune_core::problem::ResourceKind;
use restune_core::tuner::TuningEnvironment;

/// One panel of Figure 9: one (workload, resource) pair.
#[derive(Debug, Clone)]
pub struct ResourcePanel {
    /// Target workload.
    pub workload: String,
    /// Resource being optimized ("IO-BPS", "IOPS", "Memory").
    pub resource: String,
    /// Resource unit.
    pub unit: String,
    /// Default (untuned) value.
    pub default_value: f64,
    /// Per-method curves of the best feasible value.
    pub curves: Vec<(String, Vec<f64>)>,
}

/// All six panels of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Panels in paper order: BPS (SYSBENCH, TPC-C), IOPS (SYSBENCH, TPC-C),
    /// Memory (SYSBENCH, TPC-C).
    pub panels: Vec<ResourcePanel>,
}

/// Runs all panels.
pub fn run(ctx: &ExperimentContext, iterations: usize) -> Fig9Result {
    let sysbench = WorkloadSpec::sysbench().with_data_gb(30.0);
    let tpcc = WorkloadSpec::tpcc().with_data_gb(100.0);
    let methods = [
        Method::Restune,
        Method::RestuneWithoutML,
        Method::OtterTuneWithConstraints,
        Method::CdbTuneWithConstraints,
        Method::ITuned,
    ];
    // The six (resource, direction) panels are independent; run each on a
    // scoped thread (per-run seeds keep results identical to a serial run).
    let combos: Vec<(ResourceKind, &WorkloadSpec, &WorkloadSpec)> =
        [ResourceKind::IoBps, ResourceKind::Iops, ResourceKind::Memory]
            .into_iter()
            .flat_map(|r| [(r, &sysbench, &tpcc), (r, &tpcc, &sysbench)])
            .collect();
    let panels: Vec<ResourcePanel> = std::thread::scope(|scope| {
        let handles: Vec<_> = combos
            .iter()
            .map(|&(resource, target, source)| {
                scope.spawn(move || {
                    eprintln!("[fig9] {} / {} ...", resource.name(), target.name);
                    // Repository from the *other* workload on the same instance.
                    let repo = build_repository_from(
                        &ctx.characterizer,
                        &[(source.clone(), InstanceType::E)],
                        &resource.default_knob_set(),
                        resource,
                        ctx.scale.task_observations(),
                        ctx.seed + 600,
                    );
                    let learners = fit_learners(&repo);
                    let target_mf = ctx.characterizer.embed_workload(target, ctx.seed).probs;
                    let mut curves = Vec::new();
                    let mut default_value = 0.0;
                    for method in methods {
                        let env = TuningEnvironment::builder()
                            .instance(InstanceType::E)
                            .workload(target.clone())
                            .resource(resource)
                            .seed(ctx.seed + 41)
                            .build();
                        let mctx = MethodContext {
                            config: ctx.config(ctx.seed + 41),
                            repository: Some(&repo),
                            prepared_learners: Some(&learners),
                            setting: Setting::Original, // repo already excludes target
                            target_meta_feature: target_mf.clone(),
                        };
                        let outcome = run_method(method, env, iterations, &mctx);
                        default_value = outcome.default_obj_value;
                        curves.push((method.name().to_string(), outcome.best_curve()));
                    }
                    ResourcePanel {
                        workload: target.name.clone(),
                        resource: resource.name().to_string(),
                        unit: resource.unit().to_string(),
                        default_value,
                        curves,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("fig9 panel panicked")).collect()
    });
    Fig9Result { panels }
}

/// Prints every panel.
pub fn render(r: &Fig9Result) {
    for panel in &r.panels {
        report::header(&format!(
            "Figure 9 — {} tuning on {} (default {:.1} {})",
            panel.resource, panel.workload, panel.default_value, panel.unit
        ));
        for (label, curve) in &panel.curves {
            report::series(label, curve, 10);
        }
        if let Some((_, restune)) = panel.curves.iter().find(|(l, _)| l == "ResTune") {
            let best = restune.last().copied().unwrap_or(panel.default_value);
            println!(
                "ResTune reduction: {:.1} -> {:.1} {} ({:.0}%)",
                panel.default_value,
                best,
                panel.unit,
                100.0 * (panel.default_value - best) / panel.default_value.max(1e-9)
            );
        }
    }
}

minjson::json_struct!(ResourcePanel { workload, resource, unit, default_value, curves });
minjson::json_struct!(Fig9Result { panels });
