//! Table 3: execution-time breakdown per iteration when tuning the SYSBENCH
//! workload — meta-data processing, model update, knob recommendation, and
//! target-workload replay, for each method.
//!
//! The paper's takeaway is structural: replay dominates every method
//! (92–99.7 % of the iteration), so comparisons can focus on iteration
//! counts. Replay time here is the simulator's replay clock (~182 s for
//! benchmark workloads); algorithm phases are real measured wall-clock.

use crate::context::ExperimentContext;
use crate::report;
use crate::trace_view::PhaseMeans;
use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};

/// Per-method mean phase durations (seconds).
#[derive(Debug, Clone)]
pub struct MethodBreakdown {
    /// Method legend name.
    pub method: String,
    /// Meta-data processing (ResTune only; 0 for others).
    pub meta_data_processing_s: f64,
    /// Model update.
    pub model_update_s: f64,
    /// GP fitting share of the model update (ResTune sessions; 0 for
    /// baselines that patch timings in externally).
    pub gp_fit_s: f64,
    /// Weight-learning share of the model update.
    pub weight_update_s: f64,
    /// Knob recommendation.
    pub recommendation_s: f64,
    /// Simulated replay.
    pub replay_s: f64,
    /// Share of the iteration spent replaying.
    pub replay_share: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// One row per method.
    pub rows: Vec<MethodBreakdown>,
}

/// Runs each method briefly on SYSBENCH@A with the trace collector on, and
/// derives each row from that run's [`trace::TraceSnapshot`] — the same data
/// source `trace_report` renders (DESIGN.md §10). Means are taken over every
/// iteration of the run (bootstrap included), with the simulated replay
/// clock from the `replay.sim_s` histogram.
pub fn run(ctx: &ExperimentContext, iterations: usize) -> Table3Result {
    let workload = WorkloadSpec::sysbench();
    let methods = [
        Method::Restune,
        Method::RestuneWithoutML,
        Method::ITuned,
        Method::CdbTuneWithConstraints,
        Method::OtterTuneWithConstraints,
    ];
    let was_enabled = trace::enabled();
    trace::enable();
    let mut rows = Vec::new();
    for method in methods {
        trace::reset();
        let _outcome =
            ctx.run(method, InstanceType::A, &workload, Setting::Original, iterations, ctx.seed);
        let p = PhaseMeans::from_snapshot(&trace::snapshot());
        rows.push(MethodBreakdown {
            method: method.name().to_string(),
            meta_data_processing_s: p.meta_data_processing_s,
            model_update_s: p.model_update_s,
            gp_fit_s: p.gp_fit_s,
            weight_update_s: p.weight_update_s,
            recommendation_s: p.recommendation_s,
            replay_s: p.replay_s,
            replay_share: p.replay_share(),
        });
    }
    trace::reset();
    if !was_enabled {
        trace::disable();
    }
    Table3Result { rows }
}

/// Prints the table in the paper's row order.
pub fn render(r: &Table3Result) {
    report::header("Table 3 — Execution time breakdown per iteration (SYSBENCH)");
    let widths = [24usize, 12, 12, 10, 10, 12, 12, 9];
    report::row(
        &[
            "Method".into(),
            "MetaData(s)".into(),
            "Model(s)".into(),
            "GpFit(s)".into(),
            "Weights(s)".into(),
            "Recommend(s)".into(),
            "Replay(s)".into(),
            "Replay%".into(),
        ],
        &widths,
    );
    for row in &r.rows {
        report::row(
            &[
                row.method.clone(),
                format!("{:.3}", row.meta_data_processing_s),
                format!("{:.3}", row.model_update_s),
                format!("{:.3}", row.gp_fit_s),
                format!("{:.3}", row.weight_update_s),
                format!("{:.3}", row.recommendation_s),
                format!("{:.1}", row.replay_s),
                format!("{:.1}%", row.replay_share * 100.0),
            ],
            &widths,
        );
    }
    println!("\nPaper shape: replay dominates every method (92–99.7% of each iteration).");
}

minjson::json_struct!(MethodBreakdown {
    method,
    meta_data_processing_s,
    model_update_s,
    gp_fit_s,
    weight_update_s,
    recommendation_s,
    replay_s,
    replay_share,
});
minjson::json_struct!(Table3Result { rows });
