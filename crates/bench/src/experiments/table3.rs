//! Table 3: execution-time breakdown per iteration when tuning the SYSBENCH
//! workload — meta-data processing, model update, knob recommendation, and
//! target-workload replay, for each method.
//!
//! The paper's takeaway is structural: replay dominates every method
//! (92–99.7 % of the iteration), so comparisons can focus on iteration
//! counts. Replay time here is the simulator's replay clock (~182 s for
//! benchmark workloads); algorithm phases are real measured wall-clock.

use crate::context::ExperimentContext;
use crate::report;
use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};

/// Per-method mean phase durations (seconds).
#[derive(Debug, Clone)]
pub struct MethodBreakdown {
    /// Method legend name.
    pub method: String,
    /// Meta-data processing (ResTune only; 0 for others).
    pub meta_data_processing_s: f64,
    /// Model update.
    pub model_update_s: f64,
    /// GP fitting share of the model update (ResTune sessions; 0 for
    /// baselines that patch timings in externally).
    pub gp_fit_s: f64,
    /// Weight-learning share of the model update.
    pub weight_update_s: f64,
    /// Knob recommendation.
    pub recommendation_s: f64,
    /// Simulated replay.
    pub replay_s: f64,
    /// Share of the iteration spent replaying.
    pub replay_share: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// One row per method.
    pub rows: Vec<MethodBreakdown>,
}

/// Runs each method briefly on SYSBENCH@A and averages iteration timings
/// (skipping the bootstrap iterations where models are trivial).
pub fn run(ctx: &ExperimentContext, iterations: usize) -> Table3Result {
    let workload = WorkloadSpec::sysbench();
    let methods = [
        Method::Restune,
        Method::RestuneWithoutML,
        Method::ITuned,
        Method::CdbTuneWithConstraints,
        Method::OtterTuneWithConstraints,
    ];
    let mut rows = Vec::new();
    for method in methods {
        let outcome =
            ctx.run(method, InstanceType::A, &workload, Setting::Original, iterations, ctx.seed);
        let tail: Vec<_> = outcome.history.iter().skip(iterations / 3).collect();
        let n = tail.len().max(1) as f64;
        let mean = |f: fn(&restune_core::tuner::IterationTiming) -> f64| {
            tail.iter().map(|r| f(&r.timing)).sum::<f64>() / n
        };
        let meta = mean(|t| t.meta_data_processing_s);
        let model = mean(|t| t.model_update_s);
        let gp_fit = mean(|t| t.gp_fit_s);
        let weight = mean(|t| t.weight_update_s);
        let rec = mean(|t| t.recommendation_s);
        let replay = mean(|t| t.replay_s);
        let total = meta + model + rec + replay;
        rows.push(MethodBreakdown {
            method: method.name().to_string(),
            meta_data_processing_s: meta,
            model_update_s: model,
            gp_fit_s: gp_fit,
            weight_update_s: weight,
            recommendation_s: rec,
            replay_s: replay,
            replay_share: replay / total,
        });
    }
    Table3Result { rows }
}

/// Prints the table in the paper's row order.
pub fn render(r: &Table3Result) {
    report::header("Table 3 — Execution time breakdown per iteration (SYSBENCH)");
    let widths = [24usize, 12, 12, 10, 10, 12, 12, 9];
    report::row(
        &[
            "Method".into(),
            "MetaData(s)".into(),
            "Model(s)".into(),
            "GpFit(s)".into(),
            "Weights(s)".into(),
            "Recommend(s)".into(),
            "Replay(s)".into(),
            "Replay%".into(),
        ],
        &widths,
    );
    for row in &r.rows {
        report::row(
            &[
                row.method.clone(),
                format!("{:.3}", row.meta_data_processing_s),
                format!("{:.3}", row.model_update_s),
                format!("{:.3}", row.gp_fit_s),
                format!("{:.3}", row.weight_update_s),
                format!("{:.3}", row.recommendation_s),
                format!("{:.1}", row.replay_s),
                format!("{:.1}%", row.replay_share * 100.0),
            ],
            &widths,
        );
    }
    println!("\nPaper shape: replay dominates every method (92–99.7% of each iteration).");
}

minjson::json_struct!(MethodBreakdown {
    method,
    meta_data_processing_s,
    model_update_s,
    gp_fit_s,
    weight_update_s,
    recommendation_s,
    replay_s,
    replay_share,
});
minjson::json_struct!(Table3Result { rows });
