//! Figure 1: throughput and CPU usage of a rate-bounded workload over a
//! 2-knob grid (`innodb_sync_spin_loops` × `table_open_cache`).
//!
//! The paper's motivating observation: a wide range of configurations share
//! the same (request-rate-bounded) throughput while their CPU usage varies
//! drastically — the headroom resource-oriented tuning exploits.

use crate::report;
use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};

/// Grid sweep result.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Grid resolution per axis.
    pub levels: usize,
    /// `innodb_sync_spin_loops` values along axis 0.
    pub spin_values: Vec<f64>,
    /// `table_open_cache` values along axis 1.
    pub toc_values: Vec<f64>,
    /// Throughput at `[spin][toc]`.
    pub tps: Vec<Vec<f64>>,
    /// CPU percentage at `[spin][toc]`.
    pub cpu: Vec<Vec<f64>>,
}

/// Sweeps the Figure 1 grid on a rate-bounded real-workload stand-in.
pub fn run(levels: usize) -> Fig1Result {
    // The paper uses a production workload; Twitter (rate-bounded, 30 K
    // txn/s) is our closest stand-in.
    let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 1).with_noise(0.0);
    let set = KnobSet::figure1();
    let base = Configuration::dba_default();
    let mut spin_values = Vec::with_capacity(levels);
    let mut toc_values = Vec::with_capacity(levels);
    let mut tps = vec![vec![0.0; levels]; levels];
    let mut cpu = vec![vec![0.0; levels]; levels];
    for i in 0..levels {
        let ui = i as f64 / (levels - 1) as f64;
        for j in 0..levels {
            let uj = j as f64 / (levels - 1) as f64;
            let config = set.to_configuration(&[ui, uj], &base);
            if j == 0 {
                spin_values.push(config.get("innodb_sync_spin_loops"));
            }
            if i == 0 {
                toc_values.push(config.get("table_open_cache"));
            }
            let obs = dbms.evaluate_noiseless(&config);
            tps[i][j] = obs.tps;
            cpu[i][j] = obs.resources.cpu_pct;
        }
    }
    Fig1Result { levels, spin_values, toc_values, tps, cpu }
}

/// Prints the two heatmaps plus the headline statistic (CPU spread on the
/// constant-TPS plateau).
pub fn render(r: &Fig1Result) {
    report::header("Figure 1 — TPS over (sync_spin_loops x table_open_cache)");
    print_grid(&r.spin_values, &r.toc_values, &r.tps);
    report::header("Figure 1 — CPU% over (sync_spin_loops x table_open_cache)");
    print_grid(&r.spin_values, &r.toc_values, &r.cpu);

    // Plateau analysis: cells within 2 % of the max TPS.
    let max_tps = r.tps.iter().flatten().cloned().fold(0.0, f64::max);
    let mut plateau_cpu: Vec<f64> = Vec::new();
    for i in 0..r.levels {
        for j in 0..r.levels {
            if r.tps[i][j] >= 0.98 * max_tps {
                plateau_cpu.push(r.cpu[i][j]);
            }
        }
    }
    let lo = plateau_cpu.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = plateau_cpu.iter().cloned().fold(0.0, f64::max);
    println!(
        "\n{} of {} cells share the max throughput (±2%), with CPU ranging {:.1}%..{:.1}%",
        plateau_cpu.len(),
        r.levels * r.levels,
        lo,
        hi
    );
}

fn print_grid(spin: &[f64], toc: &[f64], grid: &[Vec<f64>]) {
    print!("{:>10}", "spin\\toc");
    for t in toc {
        print!("{:>8.0}", t);
    }
    println!();
    for (i, s) in spin.iter().enumerate() {
        print!("{:>10.0}", s);
        for v in &grid[i] {
            print!("{:>8.0}", v);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shows_the_constant_tps_varying_cpu_plateau() {
        let r = run(6);
        let max_tps = r.tps.iter().flatten().cloned().fold(0.0, f64::max);
        let mut plateau_cpu: Vec<f64> = Vec::new();
        for i in 0..r.levels {
            for j in 0..r.levels {
                if r.tps[i][j] >= 0.98 * max_tps {
                    plateau_cpu.push(r.cpu[i][j]);
                }
            }
        }
        assert!(plateau_cpu.len() >= 8, "plateau too small: {}", plateau_cpu.len());
        let lo = plateau_cpu.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = plateau_cpu.iter().cloned().fold(0.0_f64, f64::max);
        assert!(
            hi - lo > 10.0,
            "CPU should vary widely on the plateau: {lo:.1}..{hi:.1}"
        );
    }
}

minjson::json_struct!(Fig1Result { levels, spin_values, toc_values, tps, cpu });
