//! The §7.3 case study on the Twitter workload with 3 CPU knobs
//! (`innodb_thread_concurrency`, `innodb_spin_wait_delay`,
//! `innodb_lru_scan_depth`), regenerating:
//!
//! * Figure 6(a) — tuning curves of all methods,
//! * Figure 6(b) — the workload-characterization ablation,
//! * Figure 6(c) — ResTune's weight trajectory over iterations,
//! * Figure 6(d/e) — TPS response surfaces of the target and W1,
//! * Table 5 — distances / static weights / ranking losses of W1–W5,
//! * Table 6 — best configurations found per method (incl. grid search),
//! * Figure 7 — the SHAP path of ResTune's recommendation.

use crate::context::{build_repository_from, fit_learners, ExperimentContext};
use crate::report;
use baselines::method::Setting;
use baselines::{grid_search, run_method, Method, MethodContext};
use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_core::meta::{ranking_loss, static_weights};
use restune_core::problem::ResourceKind;
use restune_core::shap::{shap_path, ShapPath};
use restune_core::tuner::TuningEnvironment;

/// Table 5 row.
#[derive(Debug, Clone)]
pub struct VariationRow {
    /// Variation name (W1–W5).
    pub name: String,
    /// R/W ratio, e.g. "32:1".
    pub rw_ratio: String,
    /// Meta-feature distance to the target.
    pub distance: f64,
    /// Static (Epanechnikov) weight.
    pub static_weight: f64,
    /// Posterior-mean ranking loss as a fraction of total pairs.
    pub ranking_loss_pct: f64,
}

/// Table 6 row.
#[derive(Debug, Clone)]
pub struct BestConfigRow {
    /// Method name.
    pub method: String,
    /// `innodb_thread_concurrency`.
    pub thread_concurrency: f64,
    /// `innodb_spin_wait_delay`.
    pub spin_wait_delay: f64,
    /// `innodb_lru_scan_depth`.
    pub lru_scan_depth: f64,
    /// Noiseless CPU of the configuration.
    pub cpu: f64,
    /// Whether it satisfies the SLA (noiseless check).
    pub feasible: bool,
}

/// A labelled tuning curve.
#[derive(Debug, Clone)]
pub struct NamedCurve {
    /// Legend label.
    pub label: String,
    /// Best-feasible CPU per iteration.
    pub values: Vec<f64>,
}

/// The whole case study.
#[derive(Debug, Clone)]
pub struct CaseStudyResult {
    /// Default CPU (flat line in Fig. 6a).
    pub default_cpu: f64,
    /// Figure 6(a) curves.
    pub fig6a: Vec<NamedCurve>,
    /// Figure 6(b) ablation curves.
    pub fig6b: Vec<NamedCurve>,
    /// Figure 6(c): per-iteration normalized weights, one series per learner
    /// (W1..W5 then the target WT).
    pub fig6c: Vec<NamedCurve>,
    /// Figure 6(d): target TPS surface over (spin, thread-concurrency).
    pub surface_target: Vec<Vec<f64>>,
    /// Figure 6(e): W1 TPS surface.
    pub surface_w1: Vec<Vec<f64>>,
    /// Table 5 rows.
    pub table5: Vec<VariationRow>,
    /// Table 6 rows.
    pub table6: Vec<BestConfigRow>,
    /// Figure 7 SHAP path for ResTune's recommendation.
    pub fig7: ShapPath,
}

const KNOBS: [&str; 3] =
    ["innodb_thread_concurrency", "innodb_spin_wait_delay", "innodb_lru_scan_depth"];

/// Runs the entire case study.
pub fn run(ctx: &ExperimentContext, iterations: usize) -> CaseStudyResult {
    let target = WorkloadSpec::twitter();
    let knob_set = KnobSet::case_study();
    let variations = WorkloadSpec::twitter_variations();

    // --- repository: LHS observations on each W1–W5 (and the target, for
    // the original-setting flavor the paper uses) --------------------------
    eprintln!("[case_study] building 3-knob repository over W1–W5 ...");
    let tasks: Vec<(WorkloadSpec, InstanceType)> =
        variations.iter().map(|w| (w.clone(), InstanceType::A)).collect();
    let repo = build_repository_from(
        &ctx.characterizer,
        &tasks,
        &knob_set,
        ResourceKind::Cpu,
        ctx.scale.task_observations(),
        ctx.seed + 400,
    );
    let learners = fit_learners(&repo);
    let target_mf = ctx.characterizer.embed_workload(&target, ctx.seed).probs;

    // --- Table 5 ----------------------------------------------------------
    let sw = static_weights(&learners, &target_mf, ctx.config(0).static_bandwidth);
    // Ranking loss of each learner's posterior mean against fresh target
    // observations.
    let probe_points = restune_core::lhs::latin_hypercube(30, knob_set.dim(), ctx.seed + 9);
    let mut probe_dbms = SimulatedDbms::new(InstanceType::A, target.clone(), ctx.seed + 5);
    let base_config = Configuration::dba_default();
    let mut actual_cpu = Vec::new();
    for p in &probe_points {
        let obs = probe_dbms.evaluate(&knob_set.to_configuration(p, &base_config));
        actual_cpu.push(obs.resources.cpu_pct);
    }
    let total_pairs = (probe_points.len() * (probe_points.len() - 1)) as f64;
    let mut table5 = Vec::new();
    for (i, learner) in learners.iter().enumerate() {
        let pred: Vec<f64> = probe_points
            .iter()
            .map(|p| learner.model.res.predict(p).map(|q| q.mean).unwrap_or(0.0))
            .collect();
        let loss = ranking_loss(&pred, &actual_cpu) as f64 / total_pairs;
        let spec = &variations[i];
        table5.push(VariationRow {
            name: learner.workload.clone(),
            rw_ratio: format!("{:.0}:{:.0}", spec.read_parts, spec.write_parts),
            distance: linalg::vector::euclidean_distance(&learner.meta_feature, &target_mf),
            static_weight: sw[i],
            ranking_loss_pct: loss,
        });
    }

    // --- Figures 6(a) and 6(b): tuning curves ------------------------------
    let make_env = |seed: u64| {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(target.clone())
            .resource(ResourceKind::Cpu)
            .knob_set(knob_set.clone())
            .seed(seed)
            .build()
    };
    let make_ctx = |seed: u64| MethodContext {
        config: ctx.config(seed),
        repository: Some(&repo),
        prepared_learners: Some(&learners),
        setting: Setting::Original,
        target_meta_feature: target_mf.clone(),
    };

    let mut fig6a = Vec::new();
    let mut default_cpu = 0.0;
    let mut restune_best_config: Option<Configuration> = None;
    let mut table6 = Vec::new();
    let methods = [
        Method::Restune,
        Method::RestuneWithoutML,
        Method::ITuned,
        Method::OtterTuneWithConstraints,
        Method::CdbTuneWithConstraints,
        Method::RestuneWithoutWorkload,
    ];
    let mut restune_weights: Vec<Vec<f64>> = Vec::new();
    for method in methods {
        eprintln!("[case_study] running {} ...", method.name());
        let outcome =
            run_method(method, make_env(ctx.seed + 7), iterations, &make_ctx(ctx.seed + 7));
        default_cpu = outcome.default_obj_value;
        fig6a.push(NamedCurve {
            label: method.name().to_string(),
            values: outcome.best_curve(),
        });
        if method == Method::Restune {
            restune_best_config = Some(outcome.best_config.clone());
            restune_weights = outcome
                .history
                .iter()
                .filter_map(|r| r.weights.clone())
                .collect();
        }
        table6.push(best_config_row(method.name(), &outcome.best_config, &target));
    }
    let fig6b = vec![
        fig6a.iter().find(|c| c.label == "ResTune").unwrap().clone(),
        fig6a.iter().find(|c| c.label == "ResTune-w/o-Workload").unwrap().clone(),
    ];

    // --- Figure 6(c): weight trajectories ----------------------------------
    let mut fig6c = Vec::new();
    if !restune_weights.is_empty() {
        let n_learners = restune_weights[0].len();
        for li in 0..n_learners {
            let label = if li + 1 == n_learners {
                "WT (target)".to_string()
            } else {
                learners[li].workload.clone()
            };
            let values: Vec<f64> = restune_weights
                .iter()
                .map(|w| {
                    let sum: f64 = w.iter().sum();
                    if sum > 0.0 {
                        100.0 * w[li] / sum
                    } else {
                        0.0
                    }
                })
                .collect();
            fig6c.push(NamedCurve { label, values });
        }
    }

    // --- Figures 6(d/e): TPS response surfaces ------------------------------
    let surface = |spec: &WorkloadSpec| -> Vec<Vec<f64>> {
        let dbms = SimulatedDbms::new(InstanceType::A, spec.clone(), 0).with_noise(0.0);
        let levels = 8;
        (0..levels)
            .map(|i| {
                (0..levels)
                    .map(|j| {
                        let config = Configuration::dba_default()
                            .with(
                                "innodb_spin_wait_delay",
                                i as f64 / (levels - 1) as f64 * 64.0,
                            )
                            .with(
                                "innodb_thread_concurrency",
                                1.0 + j as f64 / (levels - 1) as f64 * 127.0,
                            );
                        dbms.evaluate_noiseless(&config).tps
                    })
                    .collect()
            })
            .collect()
    };
    let surface_target = surface(&target);
    let surface_w1 = surface(&variations[0]);

    // --- Table 6: grid-search ground truth ----------------------------------
    eprintln!("[case_study] grid search 8x8x8 ...");
    let grid_dbms = SimulatedDbms::new(InstanceType::A, target.clone(), ctx.seed).with_noise(0.0);
    let grid = grid_search(&grid_dbms, &knob_set, ResourceKind::Cpu, 8);
    table6.insert(0, best_config_row("Grid Search", &grid.best_config, &target));
    table6.insert(0, best_config_row("Default", &Configuration::dba_default(), &target));

    // --- Figure 7: SHAP path ------------------------------------------------
    let shap_dbms = SimulatedDbms::new(InstanceType::A, target.clone(), 0).with_noise(0.0);
    let recommended = restune_best_config.unwrap_or_else(Configuration::dba_default);
    let fig7 = shap_path(
        &shap_dbms,
        &recommended,
        &KNOBS.iter().map(|k| k.to_string()).collect::<Vec<_>>(),
        ctx.seed,
    );

    CaseStudyResult {
        default_cpu,
        fig6a,
        fig6b,
        fig6c,
        surface_target,
        surface_w1,
        table5,
        table6,
        fig7,
    }
}

fn best_config_row(method: &str, config: &Configuration, target: &WorkloadSpec) -> BestConfigRow {
    let dbms = SimulatedDbms::new(InstanceType::A, target.clone(), 0).with_noise(0.0);
    let default_obs = dbms.evaluate_noiseless(&Configuration::dba_default());
    let sla = restune_core::problem::SlaConstraints::from_default_observation(&default_obs);
    let obs = dbms.evaluate_noiseless(config);
    BestConfigRow {
        method: method.to_string(),
        thread_concurrency: config.get("innodb_thread_concurrency"),
        spin_wait_delay: config.get("innodb_spin_wait_delay"),
        lru_scan_depth: config.get("innodb_lru_scan_depth"),
        cpu: obs.resources.cpu_pct,
        feasible: sla.is_feasible(&obs),
    }
}

/// Prints every artifact of the case study.
pub fn render(r: &CaseStudyResult) {
    report::header("Figure 6(a) — case-study tuning curves (default CPU shown first)");
    println!("Default                {:.1}% (flat)", r.default_cpu);
    for c in &r.fig6a {
        report::series(&c.label, &c.values, 12);
    }

    report::header("Figure 6(b) — workload characterization ablation");
    for c in &r.fig6b {
        report::series(&c.label, &c.values, 12);
    }

    report::header("Figure 6(c) — ResTune weight assignment (% of total)");
    for c in &r.fig6c {
        report::series(&c.label, &c.values, 10);
    }

    report::header("Table 5 — workload variations");
    let widths = [8usize, 9, 11, 13, 13];
    report::row(
        &["Name".into(), "R/W".into(), "Distance".into(), "StaticWeight".into(), "RankLoss".into()],
        &widths,
    );
    for row in &r.table5 {
        report::row(
            &[
                row.name.clone(),
                row.rw_ratio.clone(),
                format!("{:.3}", row.distance),
                format!("{:.2}%", row.static_weight * 100.0),
                format!("{:.2}%", row.ranking_loss_pct * 100.0),
            ],
            &widths,
        );
    }

    report::header("Figure 6(d) — WT TPS surface / Figure 6(e) — W1 TPS surface");
    println!("(rows: spin_wait_delay 0..64, cols: thread_concurrency 1..128)");
    for (label, s) in [("WT", &r.surface_target), ("W1", &r.surface_w1)] {
        println!("{label}:");
        for row in s {
            println!(
                "  {}",
                row.iter().map(|v| format!("{:>7.0}", v)).collect::<Vec<_>>().join("")
            );
        }
    }

    report::header("Table 6 — best configurations found");
    let widths = [22usize, 12, 10, 10, 8, 9];
    report::row(
        &[
            "Method".into(),
            "thread_conc".into(),
            "spin_wait".into(),
            "lru_depth".into(),
            "CPU%".into(),
            "feasible".into(),
        ],
        &widths,
    );
    for row in &r.table6 {
        report::row(
            &[
                row.method.clone(),
                format!("{:.0}", row.thread_concurrency),
                format!("{:.0}", row.spin_wait_delay),
                format!("{:.0}", row.lru_scan_depth),
                format!("{:.2}", row.cpu),
                format!("{}", row.feasible),
            ],
            &widths,
        );
    }

    report::header("Figure 7 — SHAP path (contributions default -> recommended)");
    println!(
        "default:     CPU {:.1}%  TPS {:.0}  p99 {:.1} ms",
        r.fig7.default_metrics.0, r.fig7.default_metrics.1, r.fig7.default_metrics.2
    );
    println!(
        "recommended: CPU {:.1}%  TPS {:.0}  p99 {:.1} ms",
        r.fig7.current_metrics.0, r.fig7.current_metrics.1, r.fig7.current_metrics.2
    );
    for a in &r.fig7.attributions {
        println!(
            "  {:<28} {:>7.0} -> {:>6.0}   ΔCPU {:>7.2}pp  ΔTPS {:>9.0}  Δp99 {:>7.2}ms",
            a.knob, a.default_value, a.current_value, a.cpu, a.tps, a.p99_ms
        );
    }
}

minjson::json_struct!(VariationRow { name, rw_ratio, distance, static_weight, ranking_loss_pct });
minjson::json_struct!(BestConfigRow {
    method,
    thread_concurrency,
    spin_wait_delay,
    lru_scan_depth,
    cpu,
    feasible,
});
minjson::json_struct!(NamedCurve { label, values });
minjson::json_struct!(CaseStudyResult {
    default_cpu,
    fig6a,
    fig6b,
    fig6c,
    surface_target,
    surface_w1,
    table5,
    table6,
    fig7,
});
