//! Tables 8 and 9 (§7.6): 1-year TCO reduction from the resource savings.

use crate::context::ExperimentContext;
use crate::report;
use baselines::method::Setting;
use baselines::{run_method, Method, MethodContext};
use dbsim::{InstanceType, WorkloadSpec};
use restune_core::problem::ResourceKind;
use restune_core::tco::{cpu_tco_reduction, memory_tco_reduction, providers, used_cores};
use restune_core::tuner::TuningEnvironment;

/// One Table 8 cell (workload × instance).
#[derive(Debug, Clone)]
pub struct Table8Cell {
    /// Workload name.
    pub workload: String,
    /// Instance name.
    pub instance: String,
    /// Cores in use before tuning.
    pub original_cores: f64,
    /// Cores in use after tuning.
    pub optimized_cores: f64,
    /// Average 1-year TCO reduction across providers (USD).
    pub avg_tco_reduction: f64,
}

/// Table 8 result.
#[derive(Debug, Clone)]
pub struct Table8Result {
    /// Cells per (workload, instance).
    pub cells: Vec<Table8Cell>,
}

/// One Table 9 row.
#[derive(Debug, Clone)]
pub struct Table9Row {
    /// Workload name.
    pub workload: String,
    /// Memory before tuning (GB).
    pub original_gb: f64,
    /// Memory after tuning (GB).
    pub optimized_gb: f64,
    /// Savings per provider (AWS, Azure, Aliyun), USD/year.
    pub per_provider: Vec<f64>,
}

/// Table 9 result.
#[derive(Debug, Clone)]
pub struct Table9Result {
    /// Rows per workload.
    pub rows: Vec<Table9Row>,
}

/// Runs CPU tuning on SYSBENCH and TPC-C across all six instances (Table 8).
pub fn run_table8(ctx: &ExperimentContext, iterations: usize) -> Table8Result {
    let workloads = [WorkloadSpec::sysbench(), WorkloadSpec::tpcc()];
    let mut cells = Vec::new();
    for workload in &workloads {
        for instance in InstanceType::ALL {
            eprintln!("[table8] {} on {:?} ...", workload.name, instance);
            let outcome = ctx.run(
                Method::Restune,
                instance,
                workload,
                Setting::Original,
                iterations,
                ctx.seed + 51,
            );
            let original = used_cores(outcome.default_obj_value, instance.cores());
            let optimized = used_cores(
                outcome.best_objective.unwrap_or(outcome.default_obj_value),
                instance.cores(),
            );
            let tco = cpu_tco_reduction(original, optimized);
            cells.push(Table8Cell {
                workload: workload.name.clone(),
                instance: instance.name().to_string(),
                original_cores: original,
                optimized_cores: optimized,
                avg_tco_reduction: tco.average,
            });
        }
    }
    Table8Result { cells }
}

/// Runs memory tuning on instance E (Table 9).
pub fn run_table9(ctx: &ExperimentContext, iterations: usize) -> Table9Result {
    let workloads = [
        WorkloadSpec::sysbench().with_data_gb(30.0),
        WorkloadSpec::tpcc().with_data_gb(100.0),
    ];
    let mut rows = Vec::new();
    for workload in &workloads {
        eprintln!("[table9] memory tuning {} on E ...", workload.name);
        let env = TuningEnvironment::builder()
            .instance(InstanceType::E)
            .workload(workload.clone())
            .resource(ResourceKind::Memory)
            .seed(ctx.seed + 61)
            .build();
        let mctx = MethodContext {
            config: ctx.config(ctx.seed + 61),
            repository: None,
            prepared_learners: None,
            setting: Setting::Original,
            target_meta_feature: ctx.characterizer.embed_workload(workload, ctx.seed).probs,
        };
        let outcome = run_method(Method::RestuneWithoutML, env, iterations, &mctx);
        let original = outcome.default_obj_value;
        let optimized = outcome.best_objective.unwrap_or(original);
        let tco = memory_tco_reduction(original, optimized);
        rows.push(Table9Row {
            workload: workload.name.clone(),
            original_gb: original,
            optimized_gb: optimized,
            per_provider: tco.per_provider,
        });
    }
    Table9Result { rows }
}

/// Prints Table 8.
pub fn render_table8(r: &Table8Result) {
    report::header("Table 8 — 1-year TCO reduction optimizing CPU");
    let widths = [10usize, 9, 14, 15, 12];
    report::row(
        &[
            "Workload".into(),
            "Instance".into(),
            "OriginalCores".into(),
            "OptimizedCores".into(),
            "AvgTCO↓($)".into(),
        ],
        &widths,
    );
    for c in &r.cells {
        report::row(
            &[
                c.workload.clone(),
                c.instance.clone(),
                format!("{:.0}", c.original_cores),
                format!("{:.0}", c.optimized_cores),
                format!("{:.0}", c.avg_tco_reduction),
            ],
            &widths,
        );
    }
}

/// Prints Table 9.
pub fn render_table9(r: &Table9Result) {
    report::header("Table 9 — 1-year TCO reduction optimizing memory on instance E");
    let names: Vec<String> = providers().iter().map(|p| format!("TCO↓({})", p.name)).collect();
    let widths = [14usize, 13, 14, 12, 12, 12];
    report::row(
        &[
            "Workload".into(),
            "Original(GB)".into(),
            "Optimized(GB)".into(),
            names[0].clone(),
            names[1].clone(),
            names[2].clone(),
        ],
        &widths,
    );
    for row in &r.rows {
        report::row(
            &[
                row.workload.clone(),
                format!("{:.1}", row.original_gb),
                format!("{:.1}", row.optimized_gb),
                format!("${:.0}", row.per_provider[0]),
                format!("${:.0}", row.per_provider[1]),
                format!("${:.0}", row.per_provider[2]),
            ],
            &widths,
        );
    }
}

minjson::json_struct!(Table8Cell { workload, instance, original_cores, optimized_cores, avg_tco_reduction });
minjson::json_struct!(Table8Result { cells });
minjson::json_struct!(Table9Row { workload, original_gb, optimized_gb, per_provider });
minjson::json_struct!(Table9Result { rows });
