//! Ablation studies of the design choices DESIGN.md calls out (these are
//! *ours*, complementing the paper's own ablation in Figure 6(b)):
//!
//! 1. **Acquisition**: CEI (the paper's choice) vs penalty-based constrained
//!    BO (the simple alternative its related work describes, §2) vs plain EI.
//! 2. **Weight-dilution guard**: RGPE's guard on vs off.
//! 3. **Static-phase constraint sourcing**: target-only constraints during
//!    the bootstrap (DESIGN.md §5b) vs the literal ensemble constraints.

use crate::context::{build_repository_from, fit_learners, ExperimentContext};
use crate::report;
use baselines::method::Setting;
use baselines::{run_method, Method, MethodContext};
use dbsim::{InstanceType, WorkloadSpec};
use restune_core::acquisition::AcquisitionKind;
use restune_core::problem::ResourceKind;
use restune_core::tuner::{TuningEnvironment, TuningSession};

/// One ablation arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Arm label.
    pub label: String,
    /// Best-feasible CPU per iteration.
    pub curve: Vec<f64>,
    /// Final best feasible CPU.
    pub final_best: f64,
    /// SLA violations among evaluated configs.
    pub violations: usize,
}

/// All three ablations.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Default CPU baseline.
    pub default_cpu: f64,
    /// Acquisition-function arms.
    pub acquisition: Vec<Arm>,
    /// Dilution-guard arms.
    pub dilution: Vec<Arm>,
    /// Static-constraint-sourcing arms.
    pub static_constraints: Vec<Arm>,
}

fn arm_from(label: &str, outcome: &restune_core::tuner::TuningOutcome) -> Arm {
    Arm {
        label: label.to_string(),
        curve: outcome.best_curve(),
        final_best: *outcome.best_curve().last().unwrap(),
        violations: outcome.history.iter().filter(|r| !r.feasible).count(),
    }
}

/// Runs all three ablations over the 14-knob CPU space: the acquisition
/// ablation on SYSBENCH@A (whose tight feasible region actually separates
/// the acquisitions — Twitter's wide optimum is found by any of them), the
/// meta-learning ablations on Twitter@A with a *cross-hardware, partially
/// misleading* repository (where the dilution guard and constraint sourcing
/// have work to do).
pub fn run(ctx: &ExperimentContext, iterations: usize) -> AblationResult {
    let target = WorkloadSpec::twitter();
    let env = |seed: u64| {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(target.clone())
            .resource(ResourceKind::Cpu)
            .seed(seed)
            .build()
    };

    // --- 1. acquisition functions (no meta; isolates the acquisition) ------
    let mut acquisition = Vec::new();
    let mut default_cpu = 0.0;
    for (label, kind) in [
        ("CEI (paper)", AcquisitionKind::ConstrainedExpectedImprovement),
        ("Penalized EI", AcquisitionKind::PenalizedExpectedImprovement),
        ("Plain EI", AcquisitionKind::ExpectedImprovement),
    ] {
        eprintln!("[ablations] acquisition = {label} ...");
        let mut config = ctx.config(17);
        config.acquisition = kind;
        let sysbench_env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::sysbench())
            .resource(ResourceKind::Cpu)
            .seed(17)
            .build();
        let outcome = TuningSession::new(sysbench_env, config).run(iterations);
        default_cpu = outcome.default_obj_value;
        acquisition.push(arm_from(label, &outcome));
    }

    // --- 2 & 3: meta-learning knobs -----------------------------------------
    // Cross-hardware repository with two genuinely similar tasks (Twitter
    // variations on instance B) and two misleading ones (Sales and Hotel on
    // B): the static phase must survive the foreigners and the dynamic phase
    // must down-weight them.
    eprintln!("[ablations] building cross-hardware repository ...");
    let scale_b = |w: WorkloadSpec| crate::context::scale_rate_to_instance(&w, InstanceType::B);
    let tasks: Vec<(WorkloadSpec, InstanceType)> = vec![
        (scale_b(WorkloadSpec::twitter_variations()[0].clone()), InstanceType::B),
        (scale_b(WorkloadSpec::twitter_variations()[1].clone()), InstanceType::B),
        (scale_b(WorkloadSpec::sales()), InstanceType::B),
        (scale_b(WorkloadSpec::hotel()), InstanceType::B),
    ];
    let repo = build_repository_from(
        &ctx.characterizer,
        &tasks,
        &dbsim::KnobSet::cpu(),
        ResourceKind::Cpu,
        ctx.scale.task_observations(),
        ctx.seed + 900,
    );
    let learners = fit_learners(&repo);
    let mf = ctx.characterizer.embed_workload(&target, ctx.seed).probs;

    let meta_run = |label: &str, guard: bool, static_target: bool| -> Arm {
        eprintln!("[ablations] {label} ...");
        let mut config = ctx.config(19);
        config.dilution_guard = guard;
        config.static_constraints_from_target = static_target;
        let mctx = MethodContext {
            config,
            repository: Some(&repo),
            prepared_learners: Some(&learners),
            setting: Setting::Original,
            target_meta_feature: mf.clone(),
        };
        let outcome = run_method(Method::Restune, env(19), iterations, &mctx);
        arm_from(label, &outcome)
    };

    let dilution = vec![
        meta_run("guard on (RGPE)", true, true),
        meta_run("guard off", false, true),
    ];
    let static_constraints = vec![
        meta_run("target constraints (ours)", true, true),
        meta_run("ensemble constraints (literal)", true, false),
    ];

    AblationResult { default_cpu, acquisition, dilution, static_constraints }
}

/// Prints all arms.
pub fn render(r: &AblationResult) {
    let show = |title: &str, arms: &[Arm]| {
        report::header(title);
        for arm in arms {
            report::series(&arm.label, &arm.curve, 10);
        }
        println!("{:<32} {:>10} {:>12}", "arm", "final CPU%", "violations");
        for arm in arms {
            println!("{:<32} {:>10.1} {:>12}", arm.label, arm.final_best, arm.violations);
        }
    };
    println!("default CPU: {:.1}%", r.default_cpu);
    show("Ablation 1 — acquisition function (no meta-learning)", &r.acquisition);
    show("Ablation 2 — RGPE weight-dilution guard", &r.dilution);
    show("Ablation 3 — static-phase constraint sourcing (DESIGN.md §5b)", &r.static_constraints);
}

minjson::json_struct!(Arm { label, curve, final_best, violations });
minjson::json_struct!(AblationResult { default_cpu, acquisition, dilution, static_constraints });
