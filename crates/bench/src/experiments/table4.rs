//! Table 4: workload adaptation on instances C, D, E, F using history
//! collected on instances A and B (the *varying hardware* setting):
//! improvement over the default, iterations to best, and ResTune's speed-up
//! over ResTune-w/o-ML.

use crate::context::ExperimentContext;
use crate::experiments::efficiency::iterations_to_best;
use crate::report;
use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};

/// One (workload, instance) cell.
#[derive(Debug, Clone)]
pub struct Table4Cell {
    /// Workload name.
    pub workload: String,
    /// Instance name.
    pub instance: String,
    /// ResTune's relative CPU improvement over the default.
    pub restune_improvement: f64,
    /// ResTune-w/o-ML's improvement.
    pub no_ml_improvement: f64,
    /// Iteration at which ResTune found its best.
    pub restune_iterations: f64,
    /// Iteration at which ResTune-w/o-ML found its best.
    pub no_ml_iterations: f64,
    /// Speed-up: `(no_ml - restune) / no_ml`.
    pub speed_up: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// Cells in (workload, instance) order.
    pub cells: Vec<Table4Cell>,
}

/// Runs SYSBENCH(100G) and TPC-C(100G) on C–F per the paper ("we use
/// SYSBENCH(100G) and TPC-C(100G) to ensure the data size is always larger
/// than the buffer pool").
///
/// The client request rate is scaled with the instance's core count
/// (Table 2's rates were chosen for instance A; running 21 K txn/s against a
/// 4-core box saturates it, pinning CPU at 100 % and leaving no tuning
/// headroom — the paper's per-instance setups necessarily did the same).
pub fn run(ctx: &ExperimentContext, iterations: usize) -> Table4Result {
    let workloads = [
        WorkloadSpec::sysbench().with_data_gb(100.0).named("SYSBENCH"),
        WorkloadSpec::tpcc().with_data_gb(100.0).named("TPC-C"),
    ];
    let instances = [InstanceType::C, InstanceType::D, InstanceType::E, InstanceType::F];
    let mut cells = Vec::new();
    for base_workload in &workloads {
        for &instance in &instances {
            let scale = instance.cores() as f64 / InstanceType::A.cores() as f64;
            let workload = &base_workload
                .clone()
                .with_request_rate(base_workload.request_rate.unwrap() * scale * 0.8)
                .named(&base_workload.name);
            eprintln!("[table4] {} on {:?} ...", workload.name, instance);
            let restune = ctx.run(
                Method::Restune,
                instance,
                workload,
                Setting::VaryingHardware,
                iterations,
                ctx.seed + 3,
            );
            let no_ml = ctx.run(
                Method::RestuneWithoutML,
                instance,
                workload,
                Setting::VaryingHardware,
                iterations,
                ctx.seed + 3,
            );
            let ri = iterations_to_best(&restune.best_curve()) as f64;
            let ni = iterations_to_best(&no_ml.best_curve()) as f64;
            cells.push(Table4Cell {
                workload: workload.name.clone(),
                instance: instance.name().to_string(),
                restune_improvement: restune.improvement(),
                no_ml_improvement: no_ml.improvement(),
                restune_iterations: ri,
                no_ml_iterations: ni,
                speed_up: ((ni - ri) / ni).max(0.0),
            });
        }
    }
    Table4Result { cells }
}

/// Prints the table in the paper's layout.
pub fn render(r: &Table4Result) {
    report::header("Table 4 — Workload adaptation on instances C–F (varying hardware)");
    let widths = [10usize, 9, 14, 14, 10, 10, 9];
    report::row(
        &[
            "Workload".into(),
            "Instance".into(),
            "ResTune impr".into(),
            "w/o-ML impr".into(),
            "RT iters".into(),
            "w/o iters".into(),
            "SpeedUp".into(),
        ],
        &widths,
    );
    for c in &r.cells {
        report::row(
            &[
                c.workload.clone(),
                c.instance.clone(),
                format!("{:.2}%", c.restune_improvement * 100.0),
                format!("{:.2}%", c.no_ml_improvement * 100.0),
                format!("{:.0}", c.restune_iterations),
                format!("{:.0}", c.no_ml_iterations),
                format!("{:.0}%", c.speed_up * 100.0),
            ],
            &widths,
        );
    }
    println!("\nPaper shape: ResTune matches or beats w/o-ML improvement and finds it faster.");
}

minjson::json_struct!(Table4Cell {
    workload,
    instance,
    restune_improvement,
    no_ml_improvement,
    restune_iterations,
    no_ml_iterations,
    speed_up,
});
minjson::json_struct!(Table4Result { cells });
