//! A small `std::time` microbenchmark harness replacing criterion.
//!
//! Each bench target (`benches/*.rs`, `harness = false`) is a plain
//! `fn main()` that builds a [`Bencher`] and times closures with
//! [`Bencher::bench`]. The harness warms up, picks a batch size so one
//! batch costs roughly a millisecond, then samples batches until the time
//! budget is spent and reports min/median/mean per-iteration time.
//!
//! The default budget keeps a full `cargo bench` pass quick; set
//! `RESTUNE_BENCH_BUDGET_MS` for steadier numbers (e.g. 2000 for ~2 s of
//! sampling per benchmark).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sampled batch (per-iteration).
    pub min_ns: f64,
    /// Median over sampled batches.
    pub median_ns: f64,
    /// Mean over sampled batches.
    pub mean_ns: f64,
    /// Number of timed batches.
    pub samples: usize,
    /// Iterations per batch.
    pub batch: u32,
}

/// Runs and reports microbenchmarks with a fixed per-benchmark time budget.
pub struct Bencher {
    budget: Duration,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher::from_env()
    }
}

impl Bencher {
    /// A bencher with an explicit per-benchmark sampling budget.
    pub fn new(budget: Duration) -> Self {
        Bencher { budget }
    }

    /// Reads the budget from `RESTUNE_BENCH_BUDGET_MS` (default 200 ms).
    pub fn from_env() -> Self {
        let ms = std::env::var("RESTUNE_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Bencher::new(Duration::from_millis(ms))
    }

    /// Times `f`, prints one aligned report line, and returns the stats.
    pub fn bench(&self, label: &str, mut f: impl FnMut()) -> Stats {
        // Warm-up doubles as the cost estimate for batch sizing.
        let start = Instant::now();
        f();
        let first = start.elapsed().as_nanos().max(1);

        // Aim for ~1 ms per batch so Instant overhead stays negligible,
        // capped to keep at least a handful of batches inside the budget.
        let target_batch_ns = 1_000_000u128;
        let batch = (target_batch_ns / first).clamp(1, 1_000_000) as u32;

        let deadline = Instant::now() + self.budget;
        let mut samples: Vec<f64> = Vec::new();
        while samples.len() < 3 || Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples.push(t.elapsed().as_nanos() as f64 / f64::from(batch));
            if samples.len() >= 5_000 {
                break;
            }
        }

        report(label, samples, batch)
    }

    /// Times `routine` on a fresh `setup()` value per sample, excluding the
    /// setup cost — the replacement for criterion's `iter_batched`.
    pub fn bench_with_setup<S, T>(
        &self,
        label: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> Stats {
        let deadline = Instant::now() + self.budget;
        let mut samples: Vec<f64> = Vec::new();
        while samples.len() < 3 || (Instant::now() < deadline && samples.len() < 5_000) {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            samples.push(t.elapsed().as_nanos() as f64);
            black_box(out);
        }
        report(label, samples, 1)
    }
}

fn report(label: &str, mut samples: Vec<f64>, batch: u32) -> Stats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let min_ns = samples[0];
    let median_ns = samples[samples.len() / 2];
    let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
    let stats = Stats { min_ns, median_ns, mean_ns, samples: samples.len(), batch };
    println!(
        "{label:<44} median {:>10}  mean {:>10}  min {:>10}  ({} x {} iters)",
        format_ns(median_ns),
        format_ns(mean_ns),
        format_ns(min_ns),
        stats.samples,
        stats.batch,
    );
    stats
}

/// Prints a bench-suite header.
pub fn suite(name: &str) {
    println!("\n## {name}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_stats() {
        let b = Bencher::new(Duration::from_millis(20));
        let mut acc = 0u64;
        let stats = b.bench("noop_add", || {
            acc = black_box(acc.wrapping_add(1));
        });
        assert!(stats.samples >= 3);
        assert!(stats.min_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.median_ns.is_finite() && stats.mean_ns.is_finite());
    }

    #[test]
    fn slow_bodies_get_small_batches() {
        let b = Bencher::new(Duration::from_millis(10));
        let stats = b.bench("sleepy", || std::thread::sleep(Duration::from_millis(2)));
        assert_eq!(stats.batch, 1, "a >1ms body must not be batched");
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(512.0), "512 ns");
        assert_eq!(format_ns(2_500.0), "2.50 µs");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
        assert_eq!(format_ns(1_500_000_000.0), "1.50 s");
    }
}
