//! Bench-trajectory regression gate: diffs the current `BENCH_gp.json` /
//! `BENCH_fleet.json` / `BENCH_projection.json` / `BENCH_drift.json` against
//! committed baselines
//! with per-metric tolerance thresholds, so the tracked numbers regress
//! loudly PR-over-PR instead of silently (ROADMAP: "a tracked BENCH
//! trajectory so regressions are visible").
//!
//! Design rules:
//!
//! - **Gate ratios and deterministic facts, not wall clocks.** Absolute
//!   microseconds differ across machines; self-relative speedups
//!   (incremental vs. full refit, sparse vs. dense), determinism digests,
//!   projection counters, and final tuning quality do not. Wall-clock
//!   fields are reported but never gated.
//! - **Arms are matched structurally** (`n`, `(n, m)`, `workers`, arm name)
//!   and only compared when the runs are commensurate — a CI-sized current
//!   file against a full-size baseline compares the arms they share and
//!   *skips* the rest, visibly.
//! - Every check lands in a [`GateReport`] as pass / regression / skip with
//!   the numbers inline; `bench_gate` exits nonzero iff any regression.

use minjson::Json;

/// Per-metric tolerance thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed fractional drop in self-relative speedups: a current speedup
    /// below `baseline * (1 - speedup_drop)` is a regression. The default
    /// 0.4 tolerates machine noise but trips on a 2x slowdown of the
    /// optimized path (which halves the speedup).
    pub speedup_drop: f64,
    /// Allowed fractional drop in fleet throughput (`tenants_per_s`),
    /// checked only when tenant/iteration counts match.
    pub throughput_drop: f64,
    /// Allowed tuning-quality regression, in objective percentage points
    /// (`final_cpu_pct` may rise by at most this much).
    pub quality_pp: f64,
    /// Allowed growth of `iters_to_5pct` (iterations to reach within 5% of
    /// the expert configuration).
    pub iters_growth: i64,
    /// Treat a determinism-digest mismatch (same-size runs) as a
    /// regression. On by default: the digest is seed-exact, so a mismatch
    /// means the algorithm changed without re-pinning the baseline.
    pub strict_digest: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            speedup_drop: 0.4,
            throughput_drop: 0.5,
            quality_pp: 5.0,
            iters_growth: 6,
            strict_digest: true,
        }
    }
}

/// Outcome of one gated metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Within tolerance.
    Pass,
    /// Outside tolerance.
    Regression,
    /// Not comparable (arm missing, incommensurate run sizes); the reason
    /// is in the detail string.
    Skipped,
}

/// One metric comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Dotted metric id, e.g. `gp.incremental.n50.speedup`.
    pub metric: String,
    /// Pass / regression / skip.
    pub outcome: Outcome,
    /// Human-readable numbers behind the verdict.
    pub detail: String,
}

/// Every check from one gate run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Checks in evaluation order.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    fn push(&mut self, metric: impl Into<String>, outcome: Outcome, detail: impl Into<String>) {
        self.checks.push(GateCheck {
            metric: metric.into(),
            outcome,
            detail: detail.into(),
        });
    }

    /// Number of regressions.
    pub fn regressions(&self) -> usize {
        self.checks.iter().filter(|c| c.outcome == Outcome::Regression).count()
    }

    /// True iff no check regressed (skips do not fail the gate).
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Renders one line per check plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let tag = match c.outcome {
                Outcome::Pass => "ok  ",
                Outcome::Regression => "FAIL",
                Outcome::Skipped => "skip",
            };
            out.push_str(&format!("[{tag}] {:<38} {}\n", c.metric, c.detail));
        }
        let (passes, skips) = (
            self.checks.iter().filter(|c| c.outcome == Outcome::Pass).count(),
            self.checks.iter().filter(|c| c.outcome == Outcome::Skipped).count(),
        );
        out.push_str(&format!(
            "gate: {} passed, {} regressed, {} skipped -> {}\n",
            passes,
            self.regressions(),
            skips,
            if self.passed() { "PASS" } else { "REGRESSION" }
        ));
        out
    }
}

fn arms<'a>(doc: &'a Json, key: &str) -> Vec<&'a Json> {
    doc.get(key).and_then(|a| a.as_array()).map(|a| a.iter().collect()).unwrap_or_default()
}

fn num(doc: &Json, key: &str) -> Option<f64> {
    doc.get(key).and_then(|v| v.as_f64())
}

fn find_arm<'a>(list: &[&'a Json], matches: impl Fn(&Json) -> bool) -> Option<&'a Json> {
    list.iter().copied().find(|a| matches(a))
}

/// A speedup-style "current must not drop below baseline×(1−tol)" check.
fn check_floor(
    report: &mut GateReport,
    metric: String,
    baseline: f64,
    current: f64,
    drop_tol: f64,
) {
    let floor = baseline * (1.0 - drop_tol);
    let outcome = if current >= floor { Outcome::Pass } else { Outcome::Regression };
    report.push(
        metric,
        outcome,
        format!("baseline {baseline:.1} current {current:.1} (floor {floor:.1})"),
    );
}

/// Gates `BENCH_gp.json`: incremental and sparse speedups per matching arm.
pub fn gate_gp(baseline: &Json, current: &Json, tol: &Tolerances, report: &mut GateReport) {
    let (b_inc, c_inc) = (arms(baseline, "incremental"), arms(current, "incremental"));
    for b in &b_inc {
        let Some(n) = num(b, "n") else { continue };
        let metric = format!("gp.incremental.n{}.speedup", n as u64);
        match find_arm(&c_inc, |a| num(a, "n") == Some(n)) {
            Some(c) => match (num(b, "speedup"), num(c, "speedup")) {
                (Some(bs), Some(cs)) => {
                    check_floor(report, metric, bs, cs, tol.speedup_drop)
                }
                _ => report.push(metric, Outcome::Skipped, "speedup field missing"),
            },
            None => report.push(
                metric,
                Outcome::Skipped,
                format!("no n={} arm in current run", n as u64),
            ),
        }
    }
    let (b_sp, c_sp) = (arms(baseline, "sparse"), arms(current, "sparse"));
    for b in &b_sp {
        let (Some(n), Some(m)) = (num(b, "n"), num(b, "m")) else { continue };
        let metric = format!("gp.sparse.n{}m{}.speedup", n as u64, m as u64);
        match find_arm(&c_sp, |a| num(a, "n") == Some(n) && num(a, "m") == Some(m)) {
            Some(c) => match (num(b, "speedup"), num(c, "speedup")) {
                (Some(bs), Some(cs)) => {
                    check_floor(report, metric, bs, cs, tol.speedup_drop)
                }
                _ => report.push(metric, Outcome::Skipped, "speedup field missing"),
            },
            None => report.push(
                metric,
                Outcome::Skipped,
                format!("no (n={}, m={}) arm in current run", n as u64, m as u64),
            ),
        }
    }
    // Rank-1 updates must still be exercised at all — a zero count means the
    // incremental path silently stopped running.
    let metric = "gp.cholesky_updates.nonzero";
    match (num(baseline, "cholesky_updates"), num(current, "cholesky_updates")) {
        (Some(b), Some(c)) if b > 0.0 => {
            let outcome = if c > 0.0 { Outcome::Pass } else { Outcome::Regression };
            report.push(metric, outcome, format!("baseline {b} current {c}"));
        }
        _ => report.push(metric, Outcome::Skipped, "counter absent"),
    }
}

/// Gates `BENCH_fleet.json`: per-worker-count throughput and the cross-arm
/// determinism digest, when run sizes are commensurate.
pub fn gate_fleet(baseline: &Json, current: &Json, tol: &Tolerances, report: &mut GateReport) {
    let same_size = num(baseline, "tenants") == num(current, "tenants")
        && num(baseline, "iters") == num(current, "iters");
    let (b_arms, c_arms) = (arms(baseline, "arms"), arms(current, "arms"));
    for b in &b_arms {
        let Some(w) = num(b, "workers") else { continue };
        let metric = format!("fleet.workers{}.tenants_per_s", w as u64);
        if !same_size {
            report.push(
                metric,
                Outcome::Skipped,
                format!(
                    "incommensurate runs (baseline {}x{}, current {}x{})",
                    num(baseline, "tenants").unwrap_or(0.0),
                    num(baseline, "iters").unwrap_or(0.0),
                    num(current, "tenants").unwrap_or(0.0),
                    num(current, "iters").unwrap_or(0.0)
                ),
            );
            continue;
        }
        match find_arm(&c_arms, |a| num(a, "workers") == Some(w)) {
            Some(c) => match (num(b, "tenants_per_s"), num(c, "tenants_per_s")) {
                (Some(bt), Some(ct)) => {
                    check_floor(report, metric, bt, ct, tol.throughput_drop)
                }
                _ => report.push(metric, Outcome::Skipped, "tenants_per_s missing"),
            },
            None => report.push(
                metric,
                Outcome::Skipped,
                format!("no workers={} arm in current run", w as u64),
            ),
        }
    }
    let metric = "fleet.determinism_digest";
    let digest = |d: &Json| d.get("determinism_digest").and_then(|v| v.as_str().map(String::from));
    match (digest(baseline), digest(current)) {
        (Some(b), Some(c)) if same_size => {
            let outcome = if b == c || !tol.strict_digest {
                Outcome::Pass
            } else {
                Outcome::Regression
            };
            report.push(metric, outcome, format!("baseline {b} current {c}"));
        }
        (Some(_), Some(_)) => {
            report.push(metric, Outcome::Skipped, "incommensurate run sizes")
        }
        _ => report.push(metric, Outcome::Skipped, "digest absent"),
    }
}

/// Gates `BENCH_projection.json`: per-arm final tuning quality, convergence
/// speed, and the deterministic lift counters, when BO budgets match.
pub fn gate_projection(
    baseline: &Json,
    current: &Json,
    tol: &Tolerances,
    report: &mut GateReport,
) {
    let same_budget = num(baseline, "bo_iters") == num(current, "bo_iters")
        && num(baseline, "random_iters") == num(current, "random_iters");
    if !same_budget {
        report.push(
            "projection.arms",
            Outcome::Skipped,
            format!(
                "incommensurate budgets (baseline bo_iters {}, current {})",
                num(baseline, "bo_iters").unwrap_or(0.0),
                num(current, "bo_iters").unwrap_or(0.0)
            ),
        );
        return;
    }
    let (b_arms, c_arms) = (arms(baseline, "arms"), arms(current, "arms"));
    for b in &b_arms {
        let Some(name) = b.get("arm").and_then(|v| v.as_str()) else { continue };
        let Some(c) = find_arm(&c_arms, |a| a.get("arm").and_then(|v| v.as_str()) == Some(name))
        else {
            report.push(
                format!("projection.{name}.final_cpu_pct"),
                Outcome::Skipped,
                "arm missing in current run",
            );
            continue;
        };
        // Quality: the tuned objective (CPU%, lower is better) may rise by
        // at most `quality_pp` percentage points.
        if let (Some(bq), Some(cq)) = (num(b, "final_cpu_pct"), num(c, "final_cpu_pct")) {
            let ceiling = bq + tol.quality_pp;
            let outcome = if cq <= ceiling { Outcome::Pass } else { Outcome::Regression };
            report.push(
                format!("projection.{name}.final_cpu_pct"),
                outcome,
                format!("baseline {bq:.2} current {cq:.2} (ceiling {ceiling:.2})"),
            );
        }
        // Convergence: iterations to reach within 5% of expert must not grow
        // by more than the tolerance.
        if let (Some(bi), Some(ci)) = (num(b, "iters_to_5pct"), num(c, "iters_to_5pct")) {
            let ceiling = bi as i64 + tol.iters_growth;
            let outcome =
                if (ci as i64) <= ceiling { Outcome::Pass } else { Outcome::Regression };
            report.push(
                format!("projection.{name}.iters_to_5pct"),
                outcome,
                format!("baseline {bi:.0} current {ci:.0} (ceiling {ceiling})"),
            );
        }
    }
    // The lift counters are seed-exact: same budgets must project the same
    // number of points through the space-transform seam.
    if let (Some(Json::Obj(b)), Some(Json::Obj(c))) =
        (baseline.get("space_projects"), current.get("space_projects"))
    {
        for (arm, bv) in b {
            let metric = format!("projection.{arm}.space_projects");
            match c.iter().find(|(k, _)| k == arm).and_then(|(_, v)| v.as_f64()) {
                Some(cv) => {
                    let bv = bv.as_f64().unwrap_or(0.0);
                    let outcome = if bv == cv { Outcome::Pass } else { Outcome::Regression };
                    report.push(metric, outcome, format!("baseline {bv:.0} current {cv:.0}"));
                }
                None => report.push(metric, Outcome::Skipped, "arm missing in current run"),
            }
        }
    }
}

/// Gates `BENCH_drift.json`: warm-restart quality and convergence per arm,
/// the detector's deterministic facts, and the warm-vs-cold acceptance line,
/// when run sizes are commensurate.
pub fn gate_drift(baseline: &Json, current: &Json, tol: &Tolerances, report: &mut GateReport) {
    let same_size = num(baseline, "total_iters") == num(current, "total_iters")
        && num(baseline, "drift_at") == num(current, "drift_at");
    if !same_size {
        report.push(
            "drift.arms",
            Outcome::Skipped,
            format!(
                "incommensurate runs (baseline {} iters, current {})",
                num(baseline, "total_iters").unwrap_or(0.0),
                num(current, "total_iters").unwrap_or(0.0)
            ),
        );
        return;
    }
    // Seed-exact: same-size runs must replay the same drifting session bit
    // for bit.
    let metric = "drift.determinism_digest";
    let digest = |d: &Json| d.get("determinism_digest").and_then(|v| v.as_str().map(String::from));
    match (digest(baseline), digest(current)) {
        (Some(b), Some(c)) => {
            let outcome = if b == c || !tol.strict_digest {
                Outcome::Pass
            } else {
                Outcome::Regression
            };
            report.push(metric, outcome, format!("baseline {b} current {c}"));
        }
        _ => report.push(metric, Outcome::Skipped, "digest absent"),
    }
    // The detector must still fire at all — zero restarts means the drift
    // machinery silently stopped running.
    let metric = "drift.restarts.nonzero";
    let restarts = |d: &Json| d.get("drift_counters").and_then(|c| num(c, "restarts"));
    match (restarts(baseline), restarts(current)) {
        (Some(b), Some(c)) if b > 0.0 => {
            let outcome = if c > 0.0 { Outcome::Pass } else { Outcome::Regression };
            report.push(metric, outcome, format!("baseline {b} current {c}"));
        }
        _ => report.push(metric, Outcome::Skipped, "counter absent"),
    }
    let (b_arms, c_arms) = (arms(baseline, "arms"), arms(current, "arms"));
    for b in &b_arms {
        let Some(name) = b.get("arm").and_then(|v| v.as_str()) else { continue };
        let Some(c) = find_arm(&c_arms, |a| a.get("arm").and_then(|v| v.as_str()) == Some(name))
        else {
            report.push(
                format!("drift.{name}.final_cpu_pct"),
                Outcome::Skipped,
                "arm missing in current run",
            );
            continue;
        };
        // Quality: the post-drift objective (CPU%, lower is better) may rise
        // by at most `quality_pp` points. Arms with a null objective (the
        // oblivious arm never has a feasible post-drift point) are skipped.
        if let (Some(bq), Some(cq)) = (num(b, "final_cpu_pct"), num(c, "final_cpu_pct")) {
            let ceiling = bq + tol.quality_pp;
            let outcome = if cq <= ceiling { Outcome::Pass } else { Outcome::Regression };
            report.push(
                format!("drift.{name}.final_cpu_pct"),
                outcome,
                format!("baseline {bq:.2} current {cq:.2} (ceiling {ceiling:.2})"),
            );
        }
        // Convergence: post-drift iterations to within 10 % of the scratch
        // retune must not grow past the tolerance — and must not become
        // censored (null) when the baseline converged.
        if let Some(bi) = num(b, "iters_to_10pct") {
            let metric = format!("drift.{name}.iters_to_10pct");
            let ceiling = bi as i64 + tol.iters_growth;
            match num(c, "iters_to_10pct") {
                Some(ci) => {
                    let outcome =
                        if (ci as i64) <= ceiling { Outcome::Pass } else { Outcome::Regression };
                    report.push(
                        metric,
                        outcome,
                        format!("baseline {bi:.0} current {ci:.0} (ceiling {ceiling})"),
                    );
                }
                None => report.push(
                    metric,
                    Outcome::Regression,
                    format!("baseline {bi:.0}, current censored (never within 10%)"),
                ),
            }
        }
    }
    // The ISSUE acceptance line, re-checked from the current file alone: the
    // warm restart converges in at most half the post-drift iterations the
    // cold restart needs (censored at the window). Smoke budgets are too
    // small for the comparison to mean anything.
    if current.get("smoke").and_then(|v| v.as_bool()) == Some(false) {
        let metric = "drift.warm_vs_cold.advantage";
        let to10 = |name: &str| {
            find_arm(&c_arms, |a| a.get("arm").and_then(|v| v.as_str()) == Some(name))
                .and_then(|a| num(a, "iters_to_10pct"))
        };
        match (to10("warm"), num(current, "post_drift_iters")) {
            (Some(w), Some(window)) => {
                let cold = to10("cold").unwrap_or(window);
                let outcome =
                    if w * 2.0 <= cold { Outcome::Pass } else { Outcome::Regression };
                report.push(
                    metric,
                    outcome,
                    format!("warm {w:.0} vs cold {cold:.0} post-drift iters"),
                );
            }
            _ => report.push(metric, Outcome::Regression, "warm arm censored or absent"),
        }
    }
}

/// Runs every gate whose baseline/current JSON pair is present. Pairs are
/// `(label, baseline, current)` with labels `gp` / `fleet` / `projection` /
/// `drift`.
pub fn gate_all(
    pairs: &[(&str, Option<&Json>, Option<&Json>)],
    tol: &Tolerances,
) -> GateReport {
    let mut report = GateReport::default();
    for (label, baseline, current) in pairs {
        match (baseline, current) {
            (Some(b), Some(c)) => match *label {
                "gp" => gate_gp(b, c, tol, &mut report),
                "fleet" => gate_fleet(b, c, tol, &mut report),
                "projection" => gate_projection(b, c, tol, &mut report),
                "drift" => gate_drift(b, c, tol, &mut report),
                other => report.push(
                    format!("{other}.unknown"),
                    Outcome::Skipped,
                    "no gate registered for this bench",
                ),
            },
            _ => report.push(
                format!("{label}.files"),
                Outcome::Skipped,
                format!(
                    "missing {} file",
                    if baseline.is_none() { "baseline" } else { "current" }
                ),
            ),
        }
    }
    report
}

/// Synthesizes a "2x slowdown" of the GP incremental path from a baseline
/// document: every incremental/sparse arm's optimized time doubles, so its
/// speedup halves. Used by `bench_gate --self-test` and the gate's own tests
/// to prove the regression machinery actually trips.
pub fn synthesize_gp_slowdown(baseline: &Json) -> Json {
    let mut doc = baseline.clone();
    if let Json::Obj(fields) = &mut doc {
        for (key, value) in fields.iter_mut() {
            if key != "incremental" && key != "sparse" {
                continue;
            }
            if let Json::Arr(list) = value {
                for arm in list.iter_mut() {
                    if let Json::Obj(arm_fields) = arm {
                        for (k, v) in arm_fields.iter_mut() {
                            match (k.as_str(), &v) {
                                ("speedup", Json::Num(x)) => *v = Json::Num(x / 2.0),
                                ("incremental_us" | "sparse_us", Json::Num(x)) => {
                                    *v = Json::Num(x * 2.0)
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    const GP: &str = r#"{
      "bench": "gp_fit", "smoke": false, "cholesky_updates": 100,
      "incremental": [
        {"n": 25, "full_us": 9.3, "incremental_us": 1.4, "speedup": 6.4},
        {"n": 50, "full_us": 37.6, "incremental_us": 3.9, "speedup": 9.7}
      ],
      "sparse": [{"n": 1000, "m": 64, "dense_us": 147508.8, "sparse_us": 2664.0, "speedup": 55.4}]
    }"#;
    const FLEET: &str = r#"{
      "bench": "fleet_scaling", "tenants": 128, "iters": 3, "ncpu": 1,
      "arms": [{"workers": 1, "wall_s": 0.1, "tenants_per_s": 1280.0}],
      "determinism_digest": "0xabc"
    }"#;
    const PROJECTION: &str = r#"{
      "bench": "projection_sweep", "smoke": false, "bo_iters": 24, "random_iters": 48,
      "expert_final_cpu_pct": 26.6,
      "space_projects": {"proj8": 25},
      "arms": [{"arm": "proj8", "native_dims": 200, "search_dims": 8, "iters": 24,
                "default_cpu_pct": 92.6, "final_cpu_pct": 26.4, "vs_expert_pct": -0.8,
                "iters_to_5pct": 3}]
    }"#;

    const DRIFT: &str = r#"{
      "bench": "drift_sweep", "smoke": false, "total_iters": 34, "drift_at": 10,
      "drift_ramp": 6, "restart_iter": 14, "post_drift_iters": 20,
      "scratch_final_cpu_pct": 16.16,
      "determinism_digest": "0x32d32958e071f4f7",
      "drift_counters": {"checks": 13, "detected": 2, "restarts": 1, "epochs_sealed": 1},
      "arms": [
        {"arm": "warm", "restarts": 1, "sealed_tasks": 1, "final_cpu_pct": 15.57, "iters_to_10pct": 4},
        {"arm": "cold", "restarts": 1, "sealed_tasks": 1, "final_cpu_pct": 16.20, "iters_to_10pct": 10},
        {"arm": "oblivious", "restarts": 0, "sealed_tasks": 0, "final_cpu_pct": null, "iters_to_10pct": null},
        {"arm": "scratch", "restarts": 0, "sealed_tasks": 0, "final_cpu_pct": 16.16, "iters_to_10pct": 9}
      ]
    }"#;

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn self_comparison_passes_everything() {
        let (gp, fleet, proj, drift) =
            (parse(GP), parse(FLEET), parse(PROJECTION), parse(DRIFT));
        let report = gate_all(
            &[
                ("gp", Some(&gp), Some(&gp)),
                ("fleet", Some(&fleet), Some(&fleet)),
                ("projection", Some(&proj), Some(&proj)),
                ("drift", Some(&drift), Some(&drift)),
            ],
            &Tolerances::default(),
        );
        assert!(report.passed(), "self-diff must pass:\n{}", report.render());
        assert_eq!(report.regressions(), 0);
        assert!(report.checks.iter().any(|c| c.outcome == Outcome::Pass));
    }

    #[test]
    fn drift_regressions_trip_and_smoke_skips_commensurability() {
        let drift = parse(DRIFT);
        // Warm arm slows past the ceiling AND loses its 2x advantage.
        let worse = parse(&DRIFT.replace(
            "\"final_cpu_pct\": 15.57, \"iters_to_10pct\": 4",
            "\"final_cpu_pct\": 15.57, \"iters_to_10pct\": 18",
        ));
        let mut report = GateReport::default();
        gate_drift(&drift, &worse, &Tolerances::default(), &mut report);
        let tripped: Vec<&str> = report
            .checks
            .iter()
            .filter(|c| c.outcome == Outcome::Regression)
            .map(|c| c.metric.as_str())
            .collect();
        assert!(tripped.contains(&"drift.warm.iters_to_10pct"), "{}", report.render());
        assert!(tripped.contains(&"drift.warm_vs_cold.advantage"), "{}", report.render());
        // A censored warm arm (never within 10%) is a regression, not a skip.
        let censored = parse(&DRIFT.replace(
            "\"final_cpu_pct\": 15.57, \"iters_to_10pct\": 4",
            "\"final_cpu_pct\": 15.57, \"iters_to_10pct\": null",
        ));
        let mut report = GateReport::default();
        gate_drift(&drift, &censored, &Tolerances::default(), &mut report);
        assert!(!report.passed());
        // A CI-sized (smoke) run is incommensurate: everything skips.
        let smoke = parse(&DRIFT.replace("\"total_iters\": 34", "\"total_iters\": 16"));
        let mut report = GateReport::default();
        gate_drift(&drift, &smoke, &Tolerances::default(), &mut report);
        assert!(report.passed());
        assert!(report.checks.iter().all(|c| c.outcome == Outcome::Skipped));
    }

    #[test]
    fn drift_digest_mismatch_trips_only_when_strict() {
        let drift = parse(DRIFT);
        let other = parse(&DRIFT.replace("0x32d32958e071f4f7", "0xdeadbeefdeadbeef"));
        let mut report = GateReport::default();
        gate_drift(&drift, &other, &Tolerances::default(), &mut report);
        assert_eq!(report.regressions(), 1);
        let mut lax = GateReport::default();
        let tol = Tolerances { strict_digest: false, ..Default::default() };
        gate_drift(&drift, &other, &tol, &mut lax);
        assert!(lax.passed());
    }

    #[test]
    fn two_x_slowdown_fixture_trips_the_gate() {
        let gp = parse(GP);
        let slow = synthesize_gp_slowdown(&gp);
        let mut report = GateReport::default();
        gate_gp(&gp, &slow, &Tolerances::default(), &mut report);
        assert!(!report.passed(), "2x slowdown must regress:\n{}", report.render());
        // Every speedup arm halves, so every speedup check trips.
        let tripped: Vec<&str> = report
            .checks
            .iter()
            .filter(|c| c.outcome == Outcome::Regression)
            .map(|c| c.metric.as_str())
            .collect();
        assert!(tripped.contains(&"gp.incremental.n50.speedup"));
        assert!(tripped.contains(&"gp.sparse.n1000m64.speedup"));
    }

    #[test]
    fn digest_mismatch_is_a_regression_only_when_strict() {
        let fleet = parse(FLEET);
        let other = parse(&FLEET.replace("0xabc", "0xdef"));
        let mut report = GateReport::default();
        gate_fleet(&fleet, &other, &Tolerances::default(), &mut report);
        assert_eq!(report.regressions(), 1);
        let mut lax = GateReport::default();
        let tol = Tolerances { strict_digest: false, ..Default::default() };
        gate_fleet(&fleet, &other, &tol, &mut lax);
        assert!(lax.passed());
    }

    #[test]
    fn incommensurate_runs_skip_instead_of_failing() {
        let fleet = parse(FLEET);
        let smoke = parse(&FLEET.replace("\"tenants\": 128", "\"tenants\": 16"));
        let mut report = GateReport::default();
        gate_fleet(&fleet, &smoke, &Tolerances::default(), &mut report);
        assert!(report.passed());
        assert!(report.checks.iter().all(|c| c.outcome == Outcome::Skipped));
    }

    #[test]
    fn projection_quality_and_counter_regressions_trip() {
        let proj = parse(PROJECTION);
        let worse = parse(
            &PROJECTION
                .replace("\"final_cpu_pct\": 26.4", "\"final_cpu_pct\": 40.0")
                .replace("{\"proj8\": 25}", "{\"proj8\": 99}"),
        );
        let mut report = GateReport::default();
        gate_projection(&proj, &worse, &Tolerances::default(), &mut report);
        assert_eq!(report.regressions(), 2, "{}", report.render());
    }

    #[test]
    fn missing_files_are_visible_skips() {
        let gp = parse(GP);
        let report = gate_all(&[("gp", Some(&gp), None)], &Tolerances::default());
        assert!(report.passed());
        assert_eq!(report.checks.len(), 1);
        assert_eq!(report.checks[0].outcome, Outcome::Skipped);
    }
}
