//! Views over `tuner.health` telemetry (DESIGN.md §15): the per-iteration
//! session table rendered by `health_report` and the fleet digest/straggler
//! report rendered by `fleet_health`. Both operate on data already in a
//! [`trace::TraceSnapshot`], so they work identically on a live collector
//! snapshot and on a JSONL file parsed back.

use restune_core::diag::{TunerHealth, HEALTH_EVENT};
use restune_core::fleet::health::{Digest, FleetHealth};
use trace::TraceSnapshot;

/// Extracts the snapshot's `tuner.health` records in recorded order,
/// regardless of task tagging (a solo session leaves them untagged; a fleet
/// run tags each with the tenant's task id).
pub fn session_records(snap: &TraceSnapshot) -> Vec<TunerHealth> {
    snap.events_named(HEALTH_EVENT).into_iter().filter_map(TunerHealth::from_event).collect()
}

fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:>7.3}")).unwrap_or_else(|| format!("{:>7}", "-"))
}

/// Renders a session's health stream as a per-iteration table plus a
/// summary block.
pub fn render_session(records: &[TunerHealth]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4} {:>10} {:>10} {:>9} {:>5} {:<11} {:<6} {:>7} {:>7} {:>7} {:>7}  flags\n",
        "iter",
        "objective",
        "incumbent",
        "regret",
        "stagn",
        "fit",
        "model",
        "cov1s",
        "|z|",
        "loo_nll",
        "w_ent"
    ));
    let mut prev_epoch = 0usize;
    for r in records {
        let mut flags = Vec::new();
        if !r.feasible {
            flags.push("infeasible");
        }
        if r.penalized {
            flags.push("penalized");
        }
        if r.improvement > 0.0 {
            flags.push("improved");
        }
        // A drift-driven warm restart shows up as the epoch counter moving.
        if let Some(d) = &r.drift {
            if d.epoch > prev_epoch {
                flags.push("restarted");
            }
            prev_epoch = d.epoch;
        }
        out.push_str(&format!(
            "{:>4} {:>10.4} {:>10.4} {:>9.4} {:>5} {:<11} {:<6} {} {} {} {}  {}\n",
            r.iteration,
            r.objective,
            r.incumbent,
            r.regret,
            r.since_improvement,
            r.fit_path.as_str(),
            r.surrogate,
            opt(r.calibration.map(|c| c.coverage_1s)),
            opt(r.calibration.map(|c| c.mean_abs_z)),
            opt(r.calibration.map(|c| c.loo_nll)),
            opt(r.weight_entropy),
            flags.join(","),
        ));
    }
    if let Some(last) = records.last() {
        let n = records.len() as f64;
        let mean_regret = records.iter().map(|r| r.regret).sum::<f64>() / n;
        let calibrated: Vec<_> = records.iter().filter_map(|r| r.calibration).collect();
        out.push_str(&format!(
            "\nsummary: {} iterations, final incumbent {:.4}, mean regret {:.4}\n",
            records.len(),
            last.incumbent,
            mean_regret
        ));
        if !calibrated.is_empty() {
            let m = calibrated.len() as f64;
            out.push_str(&format!(
                "calibration ({} iters): mean 1-sigma coverage {:.3}, mean |z| {:.3}, mean LOO-NLL {:.3}\n",
                calibrated.len(),
                calibrated.iter().map(|c| c.coverage_1s).sum::<f64>() / m,
                calibrated.iter().map(|c| c.mean_abs_z).sum::<f64>() / m,
                calibrated.iter().map(|c| c.loo_nll).sum::<f64>() / m,
            ));
        }
        out.push_str(&format!(
            "failures: {} crashes, {} timeouts, {} partials, {} retries, {} GP fallbacks\n",
            last.failures.crashes,
            last.failures.timeouts,
            last.failures.partials,
            last.failures.retries,
            last.fallbacks
        ));
        if let Some(w) = &last.weights {
            let joined = w.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(" ");
            out.push_str(&format!(
                "final weights: [{joined}] (entropy {})\n",
                last.weight_entropy.map(|h| format!("{h:.3}")).unwrap_or_else(|| "-".into())
            ));
        }
        if let Some(d) = &last.drift {
            out.push_str(&format!(
                "drift: epoch {}, {} warm restarts, {} sealed tasks, last score {:.3}\n",
                d.epoch, d.restarts, d.sealed_tasks, d.last_score
            ));
        }
    }
    out
}

fn digest_row(name: &str, d: &Option<Digest>) -> String {
    match d {
        Some(d) => format!(
            "  {name:<16} n {:>4}  mean {:>9.4}  p50 {:>9.4}  p95 {:>9.4}  p99 {:>9.4}  max {:>9.4}\n",
            d.n, d.mean, d.p50, d.p95, d.p99, d.max
        ),
        None => format!("  {name:<16} (no samples)\n"),
    }
}

/// Renders the fleet aggregate: cross-tenant digests, totals, and the
/// flagged-straggler table.
pub fn render_fleet(fleet: &FleetHealth) -> String {
    let mut out = String::new();
    out.push_str(&format!("fleet health: {} tenants with telemetry\n", fleet.tenants.len()));
    out.push_str("\nper-tenant digests:\n");
    out.push_str(&digest_row("mean regret", &fleet.regret));
    out.push_str(&digest_row("final incumbent", &fleet.final_incumbent));
    out.push_str(&digest_row("1-sigma coverage", &fleet.coverage_1s));
    out.push_str(&digest_row("LOO-NLL", &fleet.loo_nll));
    out.push_str(&digest_row("weight entropy", &fleet.weight_entropy));
    out.push_str(&format!(
        "\ntotals: {} GP fallbacks, {} failed iterations\n",
        fleet.total_fallbacks, fleet.total_failed_iterations
    ));
    if fleet.stragglers.is_empty() {
        out.push_str("stragglers: none\n");
    } else {
        out.push_str(&format!("stragglers: {} flagged\n", fleet.stragglers.len()));
        for s in &fleet.stragglers {
            out.push_str(&format!("  tenant {}: {}\n", s.task, s.reasons.join("; ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use restune_core::diag::FitPath;
    use restune_core::fleet::health::StragglerPolicy;
    use restune_core::resilience::FailureCounts;

    fn record(iter: usize) -> TunerHealth {
        TunerHealth {
            iteration: iter,
            objective: 30.0 + iter as f64,
            feasible: true,
            penalized: false,
            incumbent: 30.0,
            regret: iter as f64,
            improvement: 0.0,
            since_improvement: iter,
            fit_path: FitPath::Full,
            surrogate: "dense".into(),
            fallbacks: 0,
            failures: FailureCounts::default(),
            weights: Some(vec![0.5, 0.5]),
            weight_entropy: Some(2.0f64.ln()),
            calibration: None,
            drift: None,
        }
    }

    #[test]
    fn session_table_has_one_row_per_record_plus_summary() {
        let records = vec![record(0), record(1), record(2)];
        let text = render_session(&records);
        assert_eq!(text.lines().filter(|l| l.trim_start().starts_with(char::is_numeric)).count(), 3);
        assert!(text.contains("summary: 3 iterations"));
        assert!(text.contains("final weights"));
    }

    #[test]
    fn fleet_report_renders_digests_and_stragglers() {
        let fleet = FleetHealth::aggregate(
            vec![(0, vec![record(0)]), (7, vec![record(0), record(5)])],
            &StragglerPolicy::default(),
        );
        let text = render_fleet(&fleet);
        assert!(text.contains("2 tenants"));
        assert!(text.contains("mean regret"));
    }
}
