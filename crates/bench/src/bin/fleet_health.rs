//! Fleet-level health report (DESIGN.md §15): runs a traced, fault-injected,
//! diagnostics-enabled tenant fleet and folds every tenant's `tuner.health`
//! stream into cross-tenant digests (p50/p95/p99 regret, calibration, weight
//! entropy) plus a straggler table — the operator's "is the fleet healthy"
//! view over the same events `health_report` renders per session.
//!
//! Usage:
//!   fleet_health [--tenants N] [--iters K] [--workers W] [--out <file.trace.jsonl>]
//!   fleet_health --smoke
//!
//! `--smoke` is the CI gate: it additionally checks the aggregation contract
//! (every tenant has a complete, task-tagged health stream; the aggregate is
//! identical when recomputed from the reparsed JSONL; a known-bad tenant is
//! flagged) and exits nonzero on violation.

use dbsim::{FaultPlan, InstanceType, KnobSet, WorkloadSpec};
use restune_bench::health_view;
use restune_bench::report::results_dir;
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::fleet::health::{FleetHealth, StragglerPolicy};
use restune_core::fleet::{mix_seed, FleetConfig, FleetOutcome, FleetService, Tenant};
use restune_core::problem::ResourceKind;
use restune_core::tuner::{RestuneConfig, TuningEnvironment};
use trace::TraceSnapshot;

/// A fleet tenant with tracing + diagnostics on. `transient_rate` lets the
/// smoke check plant a known failure-storm tenant the straggler policy must
/// flag.
fn tenant(id: u64, iters: usize, transient_rate: f64) -> Tenant {
    let seed = mix_seed(0x5EED_F1EE7, id);
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::fleet_tenant(id))
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        .fault_plan(FaultPlan::none().with_transient_rate(transient_rate).with_seed(seed ^ 0xFA))
        .build();
    let config = RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 80, n_local: 20, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 5, ..Default::default() },
        dynamic_samples: 4,
        init_iters: 2,
        seed,
        trace: true,
        diag: true,
        ..Default::default()
    };
    Tenant::restune(id, format!("tenant-{id}"), env, config, iters)
}

fn run_fleet(tenants: usize, iters: usize, workers: usize) -> (FleetOutcome, TraceSnapshot) {
    trace::enable();
    trace::reset();
    let service = FleetService::new(FleetConfig { workers, slice: 2, shards: 16 });
    let out = service.run(
        (0..tenants as u64)
            // The last tenant gets a heavy transient-fault rate: a planted
            // straggler the smoke check expects the policy to flag.
            .map(|id| tenant(id, iters, if id + 1 == tenants as u64 { 0.9 } else { 0.1 }))
            .collect(),
    );
    let snap = trace::snapshot();
    trace::disable();
    (out, snap)
}

/// Aggregation-contract self-checks; returns violations instead of
/// panicking so the bin can exit(1) with every problem listed.
fn contract_violations(
    snap: &TraceSnapshot,
    fleet: &FleetHealth,
    tenants: usize,
    iters: usize,
) -> Vec<String> {
    let mut violations = Vec::new();
    if fleet.tenants.len() != tenants {
        violations.push(format!(
            "expected health streams for {tenants} tenants, got {}",
            fleet.tenants.len()
        ));
    }
    for t in &fleet.tenants {
        if t.iterations != iters {
            violations.push(format!(
                "tenant {} has {} health events, want {iters}",
                t.task, t.iterations
            ));
        }
    }
    let storm_task = tenants as u64 - 1;
    if !fleet.stragglers.iter().any(|s| s.task == storm_task) {
        violations.push(format!(
            "planted failure-storm tenant {storm_task} was not flagged as a straggler"
        ));
    }
    match snap.to_jsonl().and_then(|text| TraceSnapshot::from_jsonl(&text)) {
        Ok(reparsed) => {
            if &FleetHealth::from_snapshot(&reparsed, &StragglerPolicy::default()) != fleet {
                violations
                    .push("fleet aggregate changed across the JSONL round trip".to_string());
            }
        }
        Err(e) => violations.push(format!("snapshot JSONL failed to reparse: {e:?}")),
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let ncpu = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let tenants: usize =
        get("--tenants").and_then(|v| v.parse().ok()).unwrap_or(if smoke { 32 } else { 16 });
    let iters: usize = get("--iters").and_then(|v| v.parse().ok()).unwrap_or(5);
    let workers: usize = get("--workers").and_then(|v| v.parse().ok()).unwrap_or(ncpu);

    let (out, snap) = run_fleet(tenants, iters, workers);
    println!(
        "fleet: {} tenants, {} workers, {:.3}s wall ({:.1} tenants/s)\n",
        out.tenants.len(),
        out.workers,
        out.wall_s,
        out.tenants_per_s()
    );
    let fleet = FleetHealth::from_snapshot(&snap, &StragglerPolicy::default());
    print!("{}", health_view::render_fleet(&fleet));

    let trace_path = get("--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("fleet_health.trace.jsonl"));
    if let Some(parent) = trace_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create trace output dir");
    }
    snap.write_jsonl(&trace_path).expect("write trace jsonl");
    println!("\ntrace -> {}", trace_path.display());

    if smoke {
        let violations = contract_violations(&snap, &fleet, tenants, iters);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("fleet_health: CONTRACT VIOLATION: {v}");
            }
            std::process::exit(1);
        }
        println!(
            "smoke ok: {tenants} tenants x {iters} health events, straggler flagged, round-trippable"
        );
    }
}
