//! Phase-level drill-down of one tuning step on the serial vs the
//! parallel/batched path: prints the `IterationTiming` breakdown (including
//! the new `gp_fit_s`/`weight_update_s` subcomponents) for a warmed
//! meta-boosted session at the same seed on both paths.

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::problem::ResourceKind;
use restune_core::repository::{DataRepository, TaskRecord};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use workload::WorkloadCharacterizer;

fn main() {
    let characterizer = WorkloadCharacterizer::train_default(2);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(3).enumerate() {
        for instance in [InstanceType::A, InstanceType::B] {
            let mut dbms = SimulatedDbms::new(instance, spec.clone(), 30 + i as u64);
            repo.add(TaskRecord::collect(
                &mut dbms,
                &KnobSet::cpu(),
                ResourceKind::Cpu,
                &characterizer,
                50,
                40 + i as u64,
            ));
        }
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;

    println!("{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "path", "meta(ms)", "model(ms)", "gpfit(ms)", "weights(ms)", "recommend(ms)");
    for (name, parallel) in [("serial", false), ("parallel", true)] {
        let mut config = RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 600, n_local: 120, local_sigma: 0.08 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() },
            dynamic_samples: 16,
            seed: 3,
            ..Default::default()
        };
        config.parallel = parallel;
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::cpu())
            .seed(3)
            .build();
        let mut s = TuningSession::with_base_learners(env, config, learners.clone(), mf.clone());
        for _ in 0..13 {
            s.step();
        }
        let r = s.step();
        let t = r.timing;
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name,
            t.meta_data_processing_s * 1e3,
            t.model_update_s * 1e3,
            t.gp_fit_s * 1e3,
            t.weight_update_s * 1e3,
            t.recommendation_s * 1e3,
        );
    }
}
