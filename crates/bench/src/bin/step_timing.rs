//! Phase-level drill-down of one tuning step on the serial vs the
//! parallel/batched path, rendered from the trace collector (DESIGN.md
//! §10): the warmed step's span tree shows the per-metric GP fits, the
//! per-learner posterior draws, and the candidate-scoring chunks that
//! `IterationTiming` only reports in aggregate.

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_bench::trace_view;
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::problem::ResourceKind;
use restune_core::repository::{DataRepository, TaskRecord};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use workload::WorkloadCharacterizer;

fn main() {
    let characterizer = WorkloadCharacterizer::train_default(2);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(3).enumerate() {
        for instance in [InstanceType::A, InstanceType::B] {
            let mut dbms = SimulatedDbms::new(instance, spec.clone(), 30 + i as u64);
            repo.add(TaskRecord::collect(
                &mut dbms,
                &KnobSet::cpu(),
                ResourceKind::Cpu,
                &characterizer,
                50,
                40 + i as u64,
            ));
        }
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;

    trace::enable();
    for (name, parallel) in [("serial", false), ("parallel", true)] {
        let mut config = RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 600, n_local: 120, local_sigma: 0.08 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() },
            dynamic_samples: 16,
            seed: 3,
            ..Default::default()
        };
        config.parallel = parallel;
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::cpu())
            .seed(3)
            .build();
        let mut s = TuningSession::with_base_learners(env, config, learners.clone(), mf.clone());
        // Warm past the bootstrap so dynamic weights and the full ensemble
        // are live, then trace exactly one step.
        for _ in 0..13 {
            s.step();
        }
        trace::reset();
        s.step();
        let snap = trace::snapshot();
        println!("== {name} path, one warmed step ==");
        print!("{}", trace_view::render_span_tree(&snap));
        println!();
    }
    trace::disable();
}
