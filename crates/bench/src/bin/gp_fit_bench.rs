//! GP surrogate fit bench (DESIGN.md §13): incremental rank-1 extension vs
//! full refactorization at growing history sizes, and sparse inducing-point
//! fits vs dense fits for large base-task histories.
//!
//! Usage:
//!   gp_fit_bench [--smoke] [--out BENCH_gp.json]
//!
//! `--smoke` restricts the incremental arms to n ∈ {25, 50} and the sparse
//! arm to n = 300 so a CI pass finishes in seconds; the default (full) run
//! covers n ∈ {25, 50, 200, 1000} and sparse n = 1000, the numbers tracked
//! in EXPERIMENTS.md. Both modes enforce the two hard gates:
//!
//! * extending a 50-observation GP by one point must be ≥ 2x faster than
//!   refitting it from scratch (median over samples), and
//! * the incremental arm must drive the `linalg.cholesky.update` trace
//!   counter (the rank-1 path really ran; nothing silently fell back).
//!
//! The JSON written to `--out` is the tracked `BENCH_gp.json` trajectory.

use gp::{GaussianProcess, GpConfig, InducingSelector, SparseGp, SparseGpConfig};
use restune_bench::microbench::{black_box, suite, Bencher};

/// Deterministic synthetic training set: a smooth 3-dim response surface
/// (no RNG, so every run and both arms see identical data).
fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            vec![t, (t * 13.7).fract(), (t * 5.3).fract()]
        })
        .collect();
    let ys = xs
        .iter()
        .map(|x| (3.0 * x[0]).sin() + 0.5 * x[1] * x[1] - 0.3 * x[2])
        .collect();
    (xs, ys)
}

struct IncArm {
    n: usize,
    full_ns: f64,
    incremental_ns: f64,
    speedup: f64,
}

/// Times "absorb the n-th observation": full refit of all n points vs
/// rank-1 extension of a factor already holding n-1.
fn incremental_arm(b: &Bencher, n: usize) -> IncArm {
    let cfg = GpConfig::fixed();
    let (xs, ys) = training_data(n);
    let base = GaussianProcess::fit(xs[..n - 1].to_vec(), ys[..n - 1].to_vec(), &cfg)
        .expect("base fit");
    let (x_new, y_new) = (xs[n - 1].clone(), ys[n - 1]);

    // Sanity: the rank-1 path must predict exactly like the full refit
    // before its timing means anything.
    let mut extended = base.clone();
    extended.extend(x_new.clone(), y_new, &cfg).expect("extend");
    let full = GaussianProcess::fit(xs.clone(), ys.clone(), &cfg).expect("full fit");
    let probe = vec![0.37, 0.71, 0.13];
    let (pe, pf) = (extended.predict(&probe).unwrap(), full.predict(&probe).unwrap());
    assert!(
        (pe.mean - pf.mean).abs() < 1e-9 && (pe.variance - pf.variance).abs() < 1e-9,
        "n={n}: incremental and full fits disagree ({} vs {})",
        pe.mean,
        pf.mean
    );

    let full_stats = b.bench(&format!("gp_fit/full/n={n}"), || {
        black_box(GaussianProcess::fit(xs.clone(), ys.clone(), &cfg).expect("full fit"));
    });
    let inc_stats = b.bench_with_setup(
        &format!("gp_fit/incremental/n={n}"),
        || base.clone(),
        |mut g| {
            g.extend(x_new.clone(), y_new, &cfg).expect("extend");
            g
        },
    );
    IncArm {
        n,
        full_ns: full_stats.median_ns,
        incremental_ns: inc_stats.median_ns,
        speedup: full_stats.median_ns / inc_stats.median_ns,
    }
}

struct SparseArm {
    n: usize,
    m: usize,
    dense_ns: f64,
    sparse_ns: f64,
    speedup: f64,
}

fn sparse_arm(b: &Bencher, n: usize) -> SparseArm {
    let (xs, ys) = training_data(n);
    let cfg = SparseGpConfig {
        n_inducing: 64,
        selector: InducingSelector::GreedyFarthest,
        gp: GpConfig::fixed(),
    };
    let m = cfg.n_inducing.min(n);
    let dense_stats = b.bench(&format!("gp_fit/dense/n={n}"), || {
        black_box(GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).expect("dense"));
    });
    let sparse_stats = b.bench(&format!("gp_fit/sparse/n={n} m={m}"), || {
        black_box(SparseGp::fit(xs.clone(), ys.clone(), &cfg).expect("sparse"));
    });
    SparseArm {
        n,
        m,
        dense_ns: dense_stats.median_ns,
        sparse_ns: sparse_stats.median_ns,
        speedup: dense_stats.median_ns / sparse_stats.median_ns,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_gp.json".to_string());

    let b = Bencher::from_env();
    let inc_sizes: &[usize] = if smoke { &[25, 50] } else { &[25, 50, 200, 1000] };
    let sparse_sizes: &[usize] = if smoke { &[300] } else { &[1000] };

    suite("gp_fit: incremental (rank-1 extend) vs full refit");
    // Count rank-1 factor updates across the incremental arms: the gate
    // below proves the Cholesky append path actually ran.
    trace::enable();
    trace::reset();
    let inc: Vec<IncArm> = inc_sizes.iter().map(|&n| incremental_arm(&b, n)).collect();
    let updates = trace::snapshot().counter("linalg.cholesky.update");
    trace::reset();
    trace::disable();

    suite("gp_fit: sparse (inducing-point) vs dense fit");
    let sparse: Vec<SparseArm> = sparse_sizes.iter().map(|&n| sparse_arm(&b, n)).collect();

    println!("\n{:>6}  {:>12}  {:>14}  {:>8}", "n", "full", "incremental", "speedup");
    for a in &inc {
        println!(
            "{:>6}  {:>10.1} µs  {:>12.1} µs  {:>7.1}x",
            a.n,
            a.full_ns / 1e3,
            a.incremental_ns / 1e3,
            a.speedup
        );
    }
    println!("\n{:>6}  {:>4}  {:>12}  {:>14}  {:>8}", "n", "m", "dense", "sparse", "speedup");
    for a in &sparse {
        println!(
            "{:>6}  {:>4}  {:>10.1} µs  {:>12.1} µs  {:>7.1}x",
            a.n,
            a.m,
            a.dense_ns / 1e3,
            a.sparse_ns / 1e3,
            a.speedup
        );
    }

    // Hard gates (ISSUE acceptance): ≥ 2x at 50 observations, and the
    // rank-1 path must have been exercised for real.
    let at50 = inc.iter().find(|a| a.n == 50).expect("n=50 arm always runs");
    assert!(
        at50.speedup >= 2.0,
        "incremental refit at n=50 is only {:.2}x faster than a full refit (need >= 2x)",
        at50.speedup
    );
    assert!(updates > 0, "linalg.cholesky.update counter stayed 0: rank-1 path never ran");
    println!(
        "\ngates: n=50 speedup {:.1}x (>= 2x), {updates} rank-1 cholesky updates traced",
        at50.speedup
    );

    // Tracked trajectory entry (BENCH_gp.json).
    let json = format!(
        "{{\n  \"bench\": \"gp_fit\",\n  \"smoke\": {smoke},\n  \"cholesky_updates\": {updates},\n  \"incremental\": [\n{}\n  ],\n  \"sparse\": [\n{}\n  ]\n}}\n",
        inc.iter()
            .map(|a| format!(
                "    {{\"n\": {}, \"full_us\": {:.1}, \"incremental_us\": {:.1}, \"speedup\": {:.1}}}",
                a.n,
                a.full_ns / 1e3,
                a.incremental_ns / 1e3,
                a.speedup
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        sparse
            .iter()
            .map(|a| format!(
                "    {{\"n\": {}, \"m\": {}, \"dense_us\": {:.1}, \"sparse_us\": {:.1}, \"speedup\": {:.1}}}",
                a.n,
                a.m,
                a.dense_ns / 1e3,
                a.sparse_ns / 1e3,
                a.speedup
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("[saved {out_path}]");
}
