//! Per-session model-quality health report (DESIGN.md §15): runs a seeded,
//! traced, diagnostics-enabled tuning session and renders its per-iteration
//! `tuner.health` stream — calibration, regret, weight dynamics, surrogate
//! path, failure tallies — or renders the same table from a previously
//! written trace JSONL file.
//!
//! Usage:
//!   health_report [--session [iters]] [--out <file.trace.jsonl>]
//!   health_report --methods [iters]
//!   health_report <file.trace.jsonl>
//!
//! With `--session`, the bin also self-checks the telemetry contract (one
//! health event per iteration, in order, round-trippable through JSONL) and
//! exits nonzero on violation so CI gates on it. `--methods` runs the six
//! evaluation methods (golden-methods setup: seeded transient faults, shared
//! repository) and prints the per-method health summary behind the
//! EXPERIMENTS.md table: progress/failure stats come from each method's
//! iteration history; calibration, weight entropy, and fallback counts come
//! from telemetry and exist only for the ResTune variants (the baselines'
//! proposers emit no `tuner.health` events).

use baselines::method::Setting;
use baselines::{run_method, Method, MethodContext};
use dbsim::{FaultPlan, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_bench::health_view;
use restune_bench::report::results_dir;
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::problem::ResourceKind;
use restune_core::repository::{DataRepository, TaskRecord};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use trace::TraceSnapshot;

/// Runs a seeded, meta-boosted, traced session with diagnostics enabled
/// (same setup as `trace_report --session`, plus `diag: true`).
fn traced_session(iters: usize) -> TraceSnapshot {
    let characterizer = workload::WorkloadCharacterizer::train_default(2);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(3).enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, 30 + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            15,
            40 + i as u64,
        ));
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;

    trace::enable();
    trace::reset();
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(7)
        .build();
    let config = RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 400, n_local: 80, local_sigma: 0.08 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 15, ..Default::default() },
        dynamic_samples: 12,
        init_iters: 3,
        seed: 7,
        trace: true,
        diag: true,
        ..Default::default()
    };
    let mut session = TuningSession::with_base_learners(env, config, learners, mf);
    for _ in 0..iters {
        session.step();
    }
    let snap = trace::snapshot();
    trace::disable();
    snap
}

/// Telemetry-contract self-checks; returns violations instead of panicking
/// so the bin can exit(1) with every problem listed.
fn contract_violations(snap: &TraceSnapshot, iters: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let records = health_view::session_records(snap);
    if records.len() != iters {
        violations.push(format!(
            "expected one tuner.health event per iteration ({iters}), got {}",
            records.len()
        ));
    }
    for (i, r) in records.iter().enumerate() {
        if r.iteration != i {
            violations.push(format!("event {i} carries iteration {}", r.iteration));
        }
        if !r.objective.is_finite() || !r.incumbent.is_finite() {
            violations.push(format!("iteration {i} has non-finite objective/incumbent"));
        }
    }
    if !records.iter().any(|r| r.calibration.is_some()) {
        violations.push("no iteration carried GP calibration".to_string());
    }
    if !records.iter().any(|r| r.weights.is_some()) {
        violations.push("no iteration carried ensemble weights".to_string());
    }
    // The stream must survive the JSONL round trip losslessly.
    match snap.to_jsonl().and_then(|text| TraceSnapshot::from_jsonl(&text)) {
        Ok(reparsed) => {
            if health_view::session_records(&reparsed) != records {
                violations.push("health records changed across the JSONL round trip".to_string());
            }
        }
        Err(e) => violations.push(format!("snapshot JSONL failed to reparse: {e:?}")),
    }
    violations
}

/// Runs the six methods under the golden-methods setup (seed 17, 0.2
/// transient fault rate, two-task repository) with diagnostics on and prints
/// a markdown health-summary table. History-derived columns cover every
/// method; telemetry columns show `-` for methods that emit none.
fn methods_table(iters: usize) {
    let characterizer = workload::WorkloadCharacterizer::train_default(0);
    let mut repo = DataRepository::new();
    for (i, w) in [WorkloadSpec::twitter(), WorkloadSpec::sysbench()].into_iter().enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, w, 100 + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            12,
            200 + i as u64,
        ));
    }
    let env = || {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(17)
            .fault_plan(FaultPlan::none().with_transient_rate(0.2).with_seed(0xFA))
            .build()
    };
    let ctx = MethodContext {
        config: RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 250, n_local: 50, local_sigma: 0.1 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
            dynamic_samples: 8,
            init_iters: 4,
            seed: 17,
            trace: true,
            diag: true,
            ..Default::default()
        },
        repository: Some(&repo),
        prepared_learners: None,
        setting: Setting::Original,
        target_meta_feature: vec![0.2; 5],
    };
    let methods = [
        ("ResTune", Method::Restune),
        ("ResTune-w/o-ML", Method::RestuneWithoutML),
        ("ResTune-w/o-WC", Method::RestuneWithoutWorkload),
        ("iTuned", Method::ITuned),
        ("OtterTune-w-Con", Method::OtterTuneWithConstraints),
        ("CDBTune-w-Con", Method::CdbTuneWithConstraints),
    ];
    let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
    println!(
        "| method | final CPU% | mean regret | failed iters | retries | mean 1σ cov | mean \\|z\\| | final w-entropy | GP fallbacks |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for (label, method) in methods {
        trace::enable();
        trace::reset();
        let outcome = run_method(method, env(), iters, &ctx);
        let snap = trace::snapshot();
        trace::disable();
        trace::reset();
        // Progress/failure stats from the shared driver's history, so the
        // columns are method-agnostic.
        let mean_regret = outcome
            .history
            .iter()
            .map(|r| r.objective - r.best_feasible_objective)
            .sum::<f64>()
            / outcome.history.len().max(1) as f64;
        let failed = outcome.failures.failed_iterations();
        // Telemetry-only columns, folded with the same per-tenant reducer the
        // fleet aggregator uses.
        let records = health_view::session_records(&snap);
        let telemetry =
            restune_core::fleet::health::TenantHealth::from_records(0, &records);
        println!(
            "| {label} | {} | {mean_regret:.3} | {failed} | {} | {} | {} | {} | {} |",
            outcome
                .best_objective
                .map(|b| format!("{b:.2}"))
                .unwrap_or_else(|| "-".into()),
            outcome.failures.retries,
            fmt_opt(telemetry.as_ref().and_then(|t| t.mean_cov_1s)),
            fmt_opt(telemetry.as_ref().and_then(|t| t.mean_abs_z)),
            fmt_opt(telemetry.as_ref().and_then(|t| t.final_weight_entropy)),
            telemetry
                .as_ref()
                .map(|t| t.fallbacks.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first().filter(|a| !a.starts_with("--")) {
        let text = std::fs::read_to_string(path).expect("read trace file");
        let snap = TraceSnapshot::from_jsonl(&text).expect("parse trace jsonl");
        let records = health_view::session_records(&snap);
        if records.is_empty() {
            eprintln!("health_report: no tuner.health events in {path} (diagnostics off?)");
            std::process::exit(2);
        }
        print!("{}", health_view::render_session(&records));
        return;
    }
    if args.first().map(String::as_str) == Some("--methods") {
        let iters: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(12);
        methods_table(iters);
        return;
    }
    if args.first().map(String::as_str) != Some("--session") && !args.is_empty() {
        eprintln!("usage: health_report [--session [iters] | --methods [iters]] [--out <file>] | health_report <file.trace.jsonl>");
        std::process::exit(2);
    }
    let iters: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(30);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("health.trace.jsonl"));

    let snap = traced_session(iters);
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create trace output dir");
    }
    snap.write_jsonl(&out).expect("write trace jsonl");
    println!("traced {iters}-iteration diagnostic session -> {}\n", out.display());
    print!("{}", health_view::render_session(&health_view::session_records(&snap)));

    let violations = contract_violations(&snap, iters);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("health_report: CONTRACT VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    println!("\ntelemetry contract ok: {iters} events, in order, calibrated, round-trippable");
}
