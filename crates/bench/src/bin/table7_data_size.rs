//! Regenerates Table 7: sensitivity to the TPC-C data size.

use restune_bench::experiments::sensitivity;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let iterations = match scale {
        Scale::Quick => 30,
        Scale::Full => 100,
    };
    let result = sensitivity::run_table7(&ctx, iterations);
    sensitivity::render_table7(&result);
    report::save_json("table7_data_size", &result);
}
