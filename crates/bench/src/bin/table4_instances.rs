//! Regenerates Table 4: adaptation to instances C-F.

use restune_bench::experiments::table4;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let result = table4::run(&ctx, scale.iterations());
    table4::render(&result);
    report::save_json("table4_instances", &result);
}
