//! Bench-trajectory regression gate (DESIGN.md §15): diffs current
//! `BENCH_gp.json` / `BENCH_fleet.json` / `BENCH_projection.json` /
//! `BENCH_drift.json` files
//! against committed baselines with per-metric tolerances and exits nonzero
//! on any regression. Gates ratios and deterministic facts, never absolute
//! wall clocks, so it holds across machines; incommensurate runs (e.g. CI
//! smoke sizes vs. full baselines) compare the arms they share and skip the
//! rest visibly.
//!
//! Usage:
//!   bench_gate [--baseline-dir DIR] [--current-dir DIR] [--prefix P]
//!              [--speedup-drop F] [--throughput-drop F] [--quality-pp F]
//!              [--iters-growth N] [--lax-digest]
//!   bench_gate --self-test [--baseline-dir DIR]
//!
//! Defaults: baseline-dir `.` (the committed baselines), current-dir =
//! baseline-dir (a self-diff, which must pass on an unmodified tree).
//! `--prefix` is prepended to the *current* filenames, matching CI's
//! `results/ci.BENCH_*.json` outputs. `--self-test` proves the regression
//! machinery trips: it synthesizes a 2x slowdown of the GP incremental path
//! from the baseline and exits 0 only if the gate catches it.
//!
//! Exit codes: 0 gate passed, 1 regression (or self-test failed to trip),
//! 2 usage/parse error.

use std::path::Path;

use minjson::Json;
use restune_bench::gate::{gate_all, gate_gp, synthesize_gp_slowdown, GateReport, Tolerances};

fn load(dir: &str, prefix: &str, name: &str) -> Option<Json> {
    let path = Path::new(dir).join(format!("{prefix}{name}"));
    let text = std::fs::read_to_string(&path).ok()?;
    match Json::parse(&text) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("bench_gate: failed to parse {}: {e:?}", path.display());
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let known = [
        "--baseline-dir",
        "--current-dir",
        "--prefix",
        "--speedup-drop",
        "--throughput-drop",
        "--quality-pp",
        "--iters-growth",
        "--lax-digest",
        "--self-test",
    ];
    for (i, a) in args.iter().enumerate() {
        let follows_value_flag = i > 0 && known.contains(&args[i - 1].as_str())
            && args[i - 1] != "--lax-digest"
            && args[i - 1] != "--self-test";
        if a.starts_with("--") && !known.contains(&a.as_str()) {
            eprintln!("bench_gate: unknown flag {a}");
            std::process::exit(2);
        }
        if !a.starts_with("--") && !follows_value_flag {
            eprintln!("bench_gate: unexpected argument {a}");
            std::process::exit(2);
        }
    }

    let parse_f64 = |flag: &str, default: f64| -> f64 {
        match get(flag) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bench_gate: {flag} expects a number, got {v}");
                std::process::exit(2);
            }),
            None => default,
        }
    };
    let defaults = Tolerances::default();
    let tol = Tolerances {
        speedup_drop: parse_f64("--speedup-drop", defaults.speedup_drop),
        throughput_drop: parse_f64("--throughput-drop", defaults.throughput_drop),
        quality_pp: parse_f64("--quality-pp", defaults.quality_pp),
        iters_growth: parse_f64("--iters-growth", defaults.iters_growth as f64) as i64,
        strict_digest: !args.iter().any(|a| a == "--lax-digest"),
    };
    let baseline_dir = get("--baseline-dir").unwrap_or_else(|| ".".to_string());
    let current_dir = get("--current-dir").unwrap_or_else(|| baseline_dir.clone());
    let prefix = get("--prefix").unwrap_or_default();

    if args.iter().any(|a| a == "--self-test") {
        // Prove the gate trips: halve every GP speedup (a synthetic 2x
        // slowdown of the optimized path) and require a regression verdict.
        let Some(gp) = load(&baseline_dir, "", "BENCH_gp.json") else {
            eprintln!("bench_gate: --self-test needs {baseline_dir}/BENCH_gp.json");
            std::process::exit(2);
        };
        let slow = synthesize_gp_slowdown(&gp);
        let mut report = GateReport::default();
        gate_gp(&gp, &slow, &tol, &mut report);
        print!("{}", report.render());
        if report.passed() {
            eprintln!("bench_gate: SELF-TEST FAILED: synthetic 2x slowdown was not detected");
            std::process::exit(1);
        }
        println!("self-test ok: synthetic 2x slowdown detected ({} regressions)", report.regressions());
        return;
    }

    let baselines = [
        ("gp", load(&baseline_dir, "", "BENCH_gp.json")),
        ("fleet", load(&baseline_dir, "", "BENCH_fleet.json")),
        ("projection", load(&baseline_dir, "", "BENCH_projection.json")),
        ("drift", load(&baseline_dir, "", "BENCH_drift.json")),
    ];
    if baselines.iter().all(|(_, b)| b.is_none()) {
        eprintln!("bench_gate: no BENCH_*.json baselines found in {baseline_dir}");
        std::process::exit(2);
    }
    let currents = [
        load(&current_dir, &prefix, "BENCH_gp.json"),
        load(&current_dir, &prefix, "BENCH_fleet.json"),
        load(&current_dir, &prefix, "BENCH_projection.json"),
        load(&current_dir, &prefix, "BENCH_drift.json"),
    ];
    let pairs: Vec<(&str, Option<&Json>, Option<&Json>)> = baselines
        .iter()
        .zip(&currents)
        .map(|((label, b), c)| (*label, b.as_ref(), c.as_ref()))
        .collect();
    let report = gate_all(&pairs, &tol);
    print!("{}", report.render());
    if !report.passed() {
        std::process::exit(1);
    }
}
