//! Regenerates Table 3: execution-time breakdown per iteration.

use restune_bench::experiments::table3;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let result = table3::run(&ctx, 15);
    table3::render(&result);
    report::save_json("table3_breakdown", &result);
}
