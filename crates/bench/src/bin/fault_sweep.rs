//! Runs the improvement-vs-injected-failure-rate sweep (see
//! `experiments::fault_sweep`) and saves `results/fault_sweep.json` for
//! `experiments_md`.

use restune_bench::experiments::fault_sweep;
use restune_bench::report;

fn main() {
    let result = fault_sweep::run();
    fault_sweep::render(&result);
    report::save_json("fault_sweep", &result);
}
