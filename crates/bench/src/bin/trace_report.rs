//! Renders a trace JSONL file (DESIGN.md §10) as a flamegraph-style span
//! tree plus a Table-3-compatible phase breakdown — or, with `--session
//! [iters]`, runs a seeded traced tuning session first, writes its trace,
//! and cross-checks the span totals against the session's
//! `IterationTiming` sums.
//!
//! Usage:
//!   trace_report <file.trace.jsonl>
//!   trace_report --session [iters] [--out <file.trace.jsonl>]
//!   trace_report --baseline [iters] [--out <file.trace.jsonl>]
//!
//! `--baseline` runs a baseline method (CDBTune-w-Con) through the shared
//! `TuningDriver` loop instead of ResTune, verifying that ported methods
//! emit the driver's `iteration` root span with their own stages nested
//! inside it.

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_bench::report::results_dir;
use restune_bench::trace_view;
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::problem::ResourceKind;
use restune_core::repository::{DataRepository, TaskRecord};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use trace::TraceSnapshot;
use workload::WorkloadCharacterizer;

fn report(snap: &TraceSnapshot) {
    println!("== span tree ==");
    print!("{}", trace_view::render_span_tree(snap));
    println!();
    print!("{}", trace_view::render_breakdown(snap));
}

/// Runs a seeded, meta-boosted, traced session and returns its snapshot
/// plus the per-phase `IterationTiming` sums for cross-checking.
fn traced_session(iters: usize) -> (TraceSnapshot, [(&'static str, f64); 5]) {
    let characterizer = WorkloadCharacterizer::train_default(2);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(3).enumerate() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, spec, 30 + i as u64);
        repo.add(TaskRecord::collect(
            &mut dbms,
            &KnobSet::case_study(),
            ResourceKind::Cpu,
            &characterizer,
            15,
            40 + i as u64,
        ));
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;

    trace::enable();
    trace::reset();
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(7)
        .build();
    let config = RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 400, n_local: 80, local_sigma: 0.08 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 15, ..Default::default() },
        dynamic_samples: 12,
        init_iters: 3,
        seed: 7,
        trace: true,
        ..Default::default()
    };
    let mut session = TuningSession::with_base_learners(env, config, learners, mf);
    let mut sums = [
        ("meta_data_processing", 0.0),
        ("model_update", 0.0),
        ("gp_fit", 0.0),
        ("weight_update", 0.0),
        ("recommendation", 0.0),
    ];
    for _ in 0..iters {
        let t = session.step().timing;
        sums[0].1 += t.meta_data_processing_s;
        sums[1].1 += t.model_update_s;
        sums[2].1 += t.gp_fit_s;
        sums[3].1 += t.weight_update_s;
        sums[4].1 += t.recommendation_s;
    }
    let snap = trace::snapshot();
    trace::disable();
    (snap, sums)
}

/// Runs a traced baseline (CDBTune-w-Con) through the shared driver loop and
/// returns the snapshot. The driver owns the `iteration` root span for every
/// method, so a ported baseline's trace must show it with the baseline's own
/// stages (`model_update`, `recommendation`) nested inside.
fn traced_baseline(iters: usize) -> TraceSnapshot {
    trace::enable();
    trace::reset();
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(11)
        .build();
    let config = RestuneConfig { seed: 11, trace: true, ..Default::default() };
    let mut agent = baselines::CdbTuneWithConstraints::new(env, config);
    for _ in 0..iters {
        agent.step();
    }
    let snap = trace::snapshot();
    trace::disable();
    snap
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--baseline") {
        let iters: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(6);
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| results_dir().join("baseline.trace.jsonl"));
        let snap = traced_baseline(iters);
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).expect("create trace output dir");
        }
        snap.write_jsonl(&out).expect("write trace jsonl");
        println!("traced {iters}-iteration baseline (CDBTune-w-Con) -> {}\n", out.display());
        report(&snap);
        let iterations = snap.span_agg().get("iteration").map(|a| a.count).unwrap_or(0);
        // Explicit check + exit(1), not assert!: the CI gate keys off the
        // exit status, so the failure path must be deliberate, not a panic.
        if iterations as usize != iters {
            eprintln!(
                "trace_report: SELF-CHECK FAILED: baseline must emit one driver \
                 `iteration` root span per step (got {iterations}, want {iters})"
            );
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("--session") {
        let iters: usize =
            args.get(1).and_then(|a| a.parse().ok()).unwrap_or(30);
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| results_dir().join("session.trace.jsonl"));
        let (snap, sums) = traced_session(iters);
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).expect("create trace output dir");
        }
        snap.write_jsonl(&out).expect("write trace jsonl");
        println!("traced {iters}-iteration session -> {}\n", out.display());
        report(&snap);
        println!("\n== span totals vs IterationTiming sums ==");
        let mut max_rel = 0.0_f64;
        for (phase, timing_sum) in sums {
            let span_total = snap.total_for(phase);
            let rel = if timing_sum > 0.0 {
                (span_total - timing_sum).abs() / timing_sum
            } else {
                0.0
            };
            max_rel = max_rel.max(rel);
            println!(
                "  {phase:<22} spans {span_total:>10.4}s   timing {timing_sum:>10.4}s   delta {:.3}%",
                100.0 * rel
            );
        }
        println!("  max delta: {:.3}% (acceptance bound: 1%)", 100.0 * max_rel);
        if max_rel >= 0.01 {
            eprintln!(
                "trace_report: SELF-CHECK FAILED: span totals diverge from \
                 IterationTiming sums by {:.3}% (bound 1%)",
                100.0 * max_rel
            );
            std::process::exit(1);
        }
        return;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: trace_report <file.trace.jsonl> | trace_report --session [iters] [--out <file>]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).expect("read trace file");
    let snap = TraceSnapshot::from_jsonl(&text).expect("parse trace jsonl");
    report(&snap);
}
