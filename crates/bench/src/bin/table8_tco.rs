//! Regenerates Tables 8 and 9: 1-year TCO reduction (CPU across instances,
//! memory on instance E).

use restune_bench::experiments::tco;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let iterations = match scale {
        Scale::Quick => 30,
        Scale::Full => 100,
    };
    let t8 = tco::run_table8(&ctx, iterations);
    tco::render_table8(&t8);
    report::save_json("table8_tco_cpu", &t8);
    let t9 = tco::run_table9(&ctx, iterations);
    tco::render_table9(&t9);
    report::save_json("table9_tco_mem", &t9);
}
