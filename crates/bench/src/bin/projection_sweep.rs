//! Projection sweep (DESIGN.md §14): full-space vs projected tuning over the
//! 200-knob extended registry.
//!
//! Usage:
//!   projection_sweep [--smoke] [--out BENCH_projection.json]
//!
//! Arms (all ResTune sessions on the same twitter/instance-A environment,
//! identical seeds and budgets unless noted):
//!
//! * `expert40`  — the 40-knob expert-curated set, native space: the
//!   reference a DBA with perfect knob pre-selection would tune.
//! * `full200`   — all 200 knobs, native space: BO pays the full
//!   dimensionality.
//! * `proj8`/`proj16` — all 200 knobs through a seeded HeSBO projection
//!   (quantization at 64 bins, hybrid sentinel bias 0.2): BO searches 8/16
//!   dims, the engine lifts to 200.
//! * `random200` — uniform random search over the 200-knob space, double the
//!   BO budget: the floor any projection must clear.
//!
//! Metrics per arm: final best feasible objective ("TCO", CPU% here) and
//! iterations until the best feasible objective comes within 5 % of
//! `expert40`'s final value (censored at the arm's budget).
//!
//! Gates:
//! * always — same-seed projected runs are bit-identical, and projected arms
//!   drive the `space.project` trace counter (the lift seam really ran);
//! * full run only (`--smoke` skips the convergence gates; CI budgets are
//!   too small for them to be meaningful) — some projected arm with
//!   d_low ≤ 16 reaches within 5 % of `expert40`'s final TCO in at most
//!   half the iterations random search needs (censored = its full budget),
//!   which is the ISSUE acceptance line recorded in `BENCH_projection.json`.

use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::problem::SlaConstraints;
use restune_core::space::{projected_space, Projection};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

const SEED: u64 = 42;

fn bo_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 60, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
        dynamic_samples: 8,
        init_iters: 5,
        seed,
        ..Default::default()
    }
}

#[derive(Debug)]
struct Arm {
    name: &'static str,
    native_dims: usize,
    search_dims: usize,
    iters: usize,
    default_obj: f64,
    final_obj: f64,
    /// `final_obj` relative to the expert40 final ( >0 means worse).
    vs_expert_pct: f64,
    /// 1-based evaluations until within 5 % of expert40's final objective;
    /// `None` = censored at the budget.
    to_5pct: Option<usize>,
}

fn curve_metrics(
    name: &'static str,
    native_dims: usize,
    search_dims: usize,
    default_obj: f64,
    curve: &[f64],
    expert_final: f64,
) -> Arm {
    let final_obj = *curve.last().expect("non-empty curve");
    let to_5pct = curve.iter().position(|&b| b <= expert_final * 1.05).map(|i| i + 1);
    Arm {
        name,
        native_dims,
        search_dims,
        iters: curve.len(),
        default_obj,
        final_obj,
        vs_expert_pct: (final_obj - expert_final) / expert_final * 100.0,
        to_5pct,
    }
}

/// One ResTune session; `project` installs a HeSBO pipeline at `d_low`.
fn bo_arm(set: KnobSet, project: Option<usize>, iters: usize) -> (f64, Vec<f64>, usize) {
    let mut builder = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(restune_core::problem::ResourceKind::Cpu)
        .seed(SEED);
    if let Some(d) = project {
        let t = projected_space(&set, Projection::Hesbo, d, SEED, Some(64), Some(0.2));
        builder = builder.knob_set(set).space(t);
    } else {
        builder = builder.knob_set(set);
    }
    let env = builder.build();
    trace::enable();
    let before = trace::snapshot().counter("space.project");
    let mut config = bo_config(SEED);
    config.trace = true;
    let outcome = TuningSession::new(env, config).run(iters);
    let projects = trace::snapshot().counter("space.project") - before;
    (outcome.default_obj_value, outcome.best_curve(), projects as usize)
}

/// Uniform random search over the full native space: sample `[0,1]^d`,
/// evaluate, keep the best SLA-feasible objective (default included as the
/// incumbent, mirroring the BO arms' bookkeeping).
fn random_arm(set: &KnobSet, iters: usize) -> (f64, Vec<f64>) {
    let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), SEED);
    let default_obs = dbms.evaluate(&Configuration::dba_default());
    let sla = SlaConstraints::from_default_observation(&default_obs);
    let default_obj = default_obs.resources.cpu_pct;
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x52414E44);
    let mut best = default_obj;
    let mut curve = Vec::with_capacity(iters);
    for _ in 0..iters {
        let point: Vec<f64> = (0..set.dim()).map(|_| rng.random()).collect();
        let config = set.to_configuration(&point, &Configuration::dba_default());
        let obs = dbms.evaluate(&config);
        if sla.is_feasible(&obs) && obs.resources.cpu_pct < best {
            best = obs.resources.cpu_pct;
        }
        curve.push(best);
    }
    (default_obj, curve)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_projection.json".to_string());

    let (bo_iters, rand_iters) = if smoke { (6, 12) } else { (24, 48) };

    // Determinism gate: two identically-seeded projected sessions must agree
    // on every best-curve bit before any comparison below means anything.
    let (_, curve_a, _) = bo_arm(KnobSet::extended(), Some(8), 4);
    let (_, curve_b, _) = bo_arm(KnobSet::extended(), Some(8), 4);
    assert_eq!(
        curve_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        curve_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "same-seed projected sessions diverged"
    );

    println!("projection_sweep: {} BO iters, {} random iters{}", bo_iters, rand_iters, if smoke { " (smoke)" } else { "" });

    let (expert_default, expert_curve, _) = bo_arm(KnobSet::expert(), None, bo_iters);
    let expert_final = *expert_curve.last().unwrap();

    let (full_default, full_curve, _) = bo_arm(KnobSet::extended(), None, bo_iters);
    let (p8_default, p8_curve, p8_projects) = bo_arm(KnobSet::extended(), Some(8), bo_iters);
    let (p16_default, p16_curve, p16_projects) = bo_arm(KnobSet::extended(), Some(16), bo_iters);
    let (rand_default, rand_curve) = random_arm(&KnobSet::extended(), rand_iters);

    // The lift seam must have run once per projected evaluation.
    assert!(
        p8_projects >= bo_iters && p16_projects >= bo_iters,
        "space.project counters too low ({p8_projects}, {p16_projects}): lift seam not traced"
    );

    let arms = [
        curve_metrics("expert40", 40, 40, expert_default, &expert_curve, expert_final),
        curve_metrics("full200", 200, 200, full_default, &full_curve, expert_final),
        curve_metrics("proj8", 200, 8, p8_default, &p8_curve, expert_final),
        curve_metrics("proj16", 200, 16, p16_default, &p16_curve, expert_final),
        curve_metrics("random200", 200, 200, rand_default, &rand_curve, expert_final),
    ];

    println!(
        "\n{:>10}  {:>6}  {:>6}  {:>8}  {:>9}  {:>10}  {:>8}",
        "arm", "native", "search", "default", "final", "vs expert", "to-5%"
    );
    for a in &arms {
        println!(
            "{:>10}  {:>6}  {:>6}  {:>7.2}%  {:>8.2}%  {:>+9.2}%  {:>8}",
            a.name,
            a.native_dims,
            a.search_dims,
            a.default_obj,
            a.final_obj,
            a.vs_expert_pct,
            a.to_5pct.map(|i| i.to_string()).unwrap_or_else(|| format!(">{}", a.iters)),
        );
    }

    if !smoke {
        // ISSUE acceptance: a d_low ≤ 16 projected arm reaches within 5 % of
        // the expert-40 final TCO in ≤ half the iterations random search
        // needs (censored at its full budget when it never gets there).
        let random_needs =
            arms.iter().find(|a| a.name == "random200").unwrap().to_5pct.unwrap_or(rand_iters);
        let best_projected = arms
            .iter()
            .filter(|a| a.search_dims <= 16 && a.name.starts_with("proj"))
            .filter_map(|a| a.to_5pct.map(|i| (a.name, i)))
            .min_by_key(|&(_, i)| i);
        match best_projected {
            Some((name, iters)) => {
                println!(
                    "\ngate: {name} hit 5% of expert40 in {iters} iters; random needed {random_needs}"
                );
                assert!(
                    iters * 2 <= random_needs,
                    "{name} needed {iters} iterations; not <= half of random search's {random_needs}"
                );
            }
            None => panic!(
                "no projected arm (d_low <= 16) reached within 5% of expert40's final TCO"
            ),
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"projection_sweep\",\n  \"smoke\": {smoke},\n  \"bo_iters\": {bo_iters},\n  \"random_iters\": {rand_iters},\n  \"expert_final_cpu_pct\": {expert_final:.4},\n  \"space_projects\": {{\"proj8\": {p8_projects}, \"proj16\": {p16_projects}}},\n  \"arms\": [\n{}\n  ]\n}}\n",
        arms.iter()
            .map(|a| format!(
                "    {{\"arm\": \"{}\", \"native_dims\": {}, \"search_dims\": {}, \"iters\": {}, \"default_cpu_pct\": {:.4}, \"final_cpu_pct\": {:.4}, \"vs_expert_pct\": {:.2}, \"iters_to_5pct\": {}}}",
                a.name,
                a.native_dims,
                a.search_dims,
                a.iters,
                a.default_obj,
                a.final_obj,
                a.vs_expert_pct,
                a.to_5pct.map(|i| i.to_string()).unwrap_or_else(|| "null".to_string()),
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");
}
