//! Regenerates Figure 9: tuning I/O (BPS, IOPS) and memory on instance E.

use restune_bench::experiments::resources;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let iterations = match scale {
        Scale::Quick => 30,
        Scale::Full => 100,
    };
    let result = resources::run(&ctx, iterations);
    resources::render(&result);
    report::save_json("fig9_resources", &result);
}
