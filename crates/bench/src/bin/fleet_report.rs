//! Runs a traced, fault-injected tenant fleet and reports per-tenant span
//! trees plus shared-store statistics (DESIGN.md §12). `--smoke` is the CI
//! gate: 64 tenants with seeded transient faults, asserting that every
//! tenant completes, emits its own complete span tree, and that a rerun at a
//! different worker count reproduces the per-tenant records byte-for-byte.
//!
//! Usage:
//!   fleet_report [--tenants N] [--iters K] [--workers W] [--out <file.trace.jsonl>]
//!   fleet_report --smoke

use restune_bench::report::results_dir;
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::fleet::{mix_seed, FleetConfig, FleetOutcome, FleetService, Tenant};
use restune_core::problem::ResourceKind;
use restune_core::tuner::{RestuneConfig, TuningEnvironment};
use dbsim::{FaultPlan, InstanceType, KnobSet, WorkloadSpec};
use trace::TraceSnapshot;

fn tenant(id: u64, iters: usize) -> Tenant {
    let seed = mix_seed(0x5EED_F1EE7, id);
    let env = TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::fleet_tenant(id))
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(seed)
        // Seeded transient faults on every tenant: the fleet must tolerate a
        // steady background failure rate without cross-tenant interference.
        .fault_plan(FaultPlan::none().with_transient_rate(0.2).with_seed(seed ^ 0xFA))
        .build();
    let config = RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 80, n_local: 20, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 5, ..Default::default() },
        dynamic_samples: 4,
        init_iters: 2,
        seed,
        trace: true,
        ..Default::default()
    };
    Tenant::restune(id, format!("tenant-{id}"), env, config, iters)
}

fn run_fleet(tenants: usize, iters: usize, workers: usize) -> (FleetOutcome, TraceSnapshot) {
    trace::enable();
    trace::reset();
    let service = FleetService::new(FleetConfig { workers, slice: 2, shards: 16 });
    let out = service.run((0..tenants as u64).map(|id| tenant(id, iters)).collect());
    let snap = trace::snapshot();
    trace::disable();
    (out, snap)
}

/// Per-tenant span-tree summary: path → count within one task tag.
fn tenant_tree(snap: &TraceSnapshot, task: u64) -> Vec<(String, usize)> {
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for ev in snap.spans_for_task(task) {
        *counts.entry(ev.path.clone()).or_default() += 1;
    }
    counts.into_iter().collect()
}

/// Renders the fleet summary and returns self-check violations instead of
/// panicking, so `main` can list every problem and exit(1) deliberately —
/// the CI gate keys off the exit status.
fn report(out: &FleetOutcome, snap: &TraceSnapshot, iters: usize) -> Vec<String> {
    println!("fleet: {} tenants, {} workers, {:.3}s wall ({:.1} tenants/s)",
        out.tenants.len(), out.workers, out.wall_s, out.tenants_per_s());
    let retries: usize = out.tenants.iter().map(|t| t.outcome.failures.retries).sum();
    let penalties: usize = out
        .tenants
        .iter()
        .map(|t| t.outcome.failures.crashes + t.outcome.failures.timeouts)
        .sum();
    println!("faults: {retries} transient retries, {penalties} penalized iterations");
    let tasks = snap.tasks();
    println!("trace: {} tagged tenant span trees", tasks.len());
    if let Some(&first) = tasks.first() {
        println!("\n== span tree, tenant {first} ==");
        for (path, n) in tenant_tree(snap, first) {
            println!("  {n:>4}x {path}");
        }
    }
    // Every tenant's tree must be complete: one `tenant` slice span per
    // scheduled slice and exactly `iters` nested `iteration` spans.
    let mut violations = Vec::new();
    for t in &out.tenants {
        let tree = tenant_tree(snap, t.id);
        let iterations: usize = tree
            .iter()
            .filter(|(p, _)| p == "fleet/tenant/iteration")
            .map(|(_, n)| *n)
            .sum();
        if iterations != iters {
            violations.push(format!(
                "tenant {} trace is missing iterations (got {iterations}, want {iters})",
                t.id
            ));
        }
    }
    println!("\nper-tenant traces complete: {} x {} iteration spans", out.tenants.len(), iters);
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let ncpu = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let tenants: usize =
        get("--tenants").and_then(|v| v.parse().ok()).unwrap_or(if smoke { 64 } else { 16 });
    let iters: usize = get("--iters").and_then(|v| v.parse().ok()).unwrap_or(5);
    let workers: usize = get("--workers").and_then(|v| v.parse().ok()).unwrap_or(ncpu);

    let (out, snap) = run_fleet(tenants, iters, workers);
    let mut violations = report(&out, &snap, iters);

    let trace_path = get("--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("fleet.trace.jsonl"));
    if let Some(parent) = trace_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create trace output dir");
    }
    snap.write_jsonl(&trace_path).expect("write trace jsonl");
    println!("trace -> {}", trace_path.display());

    if out.tenants.len() != tenants {
        violations.push(format!("ran {} tenants, want {tenants}", out.tenants.len()));
    }
    let poisoned = out.poisoned().count();
    if poisoned != 0 {
        violations.push(format!("{poisoned} tenants poisoned by seeded faults, want 0"));
    }

    if smoke && violations.is_empty() {
        // Rerun at a different worker count: per-tenant records must be
        // byte-identical (the fleet determinism contract, end to end).
        let other_workers = if workers == 1 { 4 } else { 1 };
        let (again, _) = run_fleet(tenants, iters, other_workers);
        for (a, b) in out.tenants.iter().zip(&again.tenants) {
            if a.id != b.id {
                violations.push(format!("tenant order diverged: {} vs {}", a.id, b.id));
                continue;
            }
            if a.record_json().unwrap() != b.record_json().unwrap() {
                violations.push(format!(
                    "tenant {} records diverged between workers={workers} and workers={other_workers}",
                    a.id
                ));
            }
        }
        if violations.is_empty() {
            println!(
                "smoke ok: {tenants} tenants bit-identical at workers={workers} and workers={other_workers}"
            );
        }
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("fleet_report: SELF-CHECK FAILED: {v}");
        }
        std::process::exit(1);
    }
}
