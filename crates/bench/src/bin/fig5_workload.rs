//! Regenerates Figure 5: workload adaptation (target workload's history held
//! out, instance A).

use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};
use restune_bench::experiments::efficiency;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let result = efficiency::run(
        &ctx,
        "Figure 5",
        Setting::VaryingWorkloads,
        InstanceType::A,
        &[Method::Restune, Method::RestuneWithoutML, Method::OtterTuneWithConstraints],
        &WorkloadSpec::evaluation_suite(),
        scale.iterations(),
    );
    efficiency::render(&result);
    report::save_json("fig5_workload", &result);
}
