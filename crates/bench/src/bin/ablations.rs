//! Runs the design-choice ablations (see `experiments::ablations`).

use restune_bench::experiments::ablations;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let iterations = match scale {
        Scale::Quick => 40,
        Scale::Full => 120,
    };
    let result = ablations::run(&ctx, iterations);
    ablations::render(&result);
    report::save_json("ablations", &result);
}
