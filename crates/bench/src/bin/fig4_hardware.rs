//! Regenerates Figure 4: hardware adaptation (history from the other
//! instance only — B->A shown on instance A, A->B on instance B).

use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};
use restune_bench::experiments::efficiency;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let methods =
        [Method::Restune, Method::RestuneWithoutML, Method::OtterTuneWithConstraints];
    let b_to_a = efficiency::run(
        &ctx,
        "Figure 4 (B to A)",
        Setting::VaryingHardware,
        InstanceType::A,
        &methods,
        &WorkloadSpec::evaluation_suite(),
        scale.iterations(),
    );
    efficiency::render(&b_to_a);
    report::save_json("fig4_hardware_b_to_a", &b_to_a);
    let a_to_b = efficiency::run(
        &ctx,
        "Figure 4 (A to B)",
        Setting::VaryingHardware,
        InstanceType::B,
        &methods,
        &WorkloadSpec::evaluation_suite(),
        scale.iterations(),
    );
    efficiency::render(&a_to_b);
    report::save_json("fig4_hardware_a_to_b", &a_to_b);
}
