//! Regenerates Figure 8: sensitivity to the client request rate.

use restune_bench::experiments::sensitivity;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let iterations = match scale {
        Scale::Quick => 30,
        Scale::Full => 100,
    };
    let result = sensitivity::run_fig8(&ctx, iterations);
    sensitivity::render_fig8(&result);
    report::save_json("fig8_request_rate", &result);
}
