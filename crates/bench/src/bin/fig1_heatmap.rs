//! Regenerates Figure 1: TPS & CPU heatmap over 2 knobs.

use restune_bench::experiments::fig1;
use restune_bench::{report, Scale};

fn main() {
    let levels = match Scale::from_args() {
        Scale::Quick => 10,
        Scale::Full => 20,
    };
    let result = fig1::run(levels);
    fig1::render(&result);
    report::save_json("fig1_heatmap", &result);
}
