//! Runs every experiment harness in sequence, printing each artifact and
//! saving JSON under `results/`. Pass `--full` for paper-scale budgets.

use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};
use restune_bench::experiments::*;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("[reproduce_all] scale: {scale:?}");

    let r1 = fig1::run(if scale == Scale::Full { 20 } else { 10 });
    fig1::render(&r1);
    report::save_json("fig1_heatmap", &r1);

    eprintln!("[reproduce_all] building shared context (34-task repository) ...");
    let ctx = ExperimentContext::build(scale);

    let t3 = table3::run(&ctx, 15);
    table3::render(&t3);
    report::save_json("table3_breakdown", &t3);

    let f3 = efficiency::run(
        &ctx,
        "Figure 3",
        Setting::Original,
        InstanceType::A,
        &Method::FIGURE3,
        &WorkloadSpec::evaluation_suite(),
        scale.iterations(),
    );
    efficiency::render(&f3);
    report::save_json("fig3_efficiency", &f3);

    let transfer_methods =
        [Method::Restune, Method::RestuneWithoutML, Method::OtterTuneWithConstraints];
    let f4 = efficiency::run(
        &ctx,
        "Figure 4 (B to A)",
        Setting::VaryingHardware,
        InstanceType::A,
        &transfer_methods,
        &WorkloadSpec::evaluation_suite(),
        scale.iterations(),
    );
    efficiency::render(&f4);
    report::save_json("fig4_hardware_b_to_a", &f4);

    let t4 = table4::run(&ctx, scale.iterations());
    table4::render(&t4);
    report::save_json("table4_instances", &t4);

    let f5 = efficiency::run(
        &ctx,
        "Figure 5",
        Setting::VaryingWorkloads,
        InstanceType::A,
        &transfer_methods,
        &WorkloadSpec::evaluation_suite(),
        scale.iterations(),
    );
    efficiency::render(&f5);
    report::save_json("fig5_workload", &f5);

    let short = if scale == Scale::Full { 100 } else { 30 };
    let cs = case_study::run(&ctx, if scale == Scale::Full { 100 } else { 40 });
    case_study::render(&cs);
    report::save_json("fig6_case_study", &cs);

    let f8 = sensitivity::run_fig8(&ctx, short);
    sensitivity::render_fig8(&f8);
    report::save_json("fig8_request_rate", &f8);

    let t7 = sensitivity::run_table7(&ctx, short);
    sensitivity::render_table7(&t7);
    report::save_json("table7_data_size", &t7);

    let f9 = resources::run(&ctx, short);
    resources::render(&f9);
    report::save_json("fig9_resources", &f9);

    let t8 = tco::run_table8(&ctx, short);
    tco::render_table8(&t8);
    report::save_json("table8_tco_cpu", &t8);
    let t9 = tco::run_table9(&ctx, short);
    tco::render_table9(&t9);
    report::save_json("table9_tco_mem", &t9);

    eprintln!("[reproduce_all] done.");
}
