//! Drift sweep (DESIGN.md §16): re-tuning strategies under a scheduled
//! workload drift.
//!
//! Usage:
//!   drift_sweep [--smoke] [--out BENCH_drift.json]
//!
//! Every arm tunes the same twitter/instance-B environment whose workload
//! drifts into the OLAP reporting mix partway through the run (a seeded
//! [`dbsim::WorkloadSchedule`], so the traffic trajectory is bit-identical
//! across arms and runs):
//!
//! * `warm`      — drift controller with [`RestartPolicy::Warm`]: the
//!   pre-drift epoch is sealed as a base task and the restarted session
//!   transfers from it plus the historical repository (full ResTune).
//! * `cold`      — same detector, [`RestartPolicy::Cold`]: the epoch is
//!   sealed but the new epoch restarts without transfer (from-scratch
//!   bootstrap after the restart).
//! * `oblivious` — no controller: the session keeps conditioning on its
//!   stale pre-drift model and incumbent.
//! * `scratch`   — the reference: a fresh session tuned directly on the
//!   fully drifted workload with the same post-drift budget. Its final TCO
//!   is the target the re-tuning arms are measured against.
//!
//! Metric per arm: the running best SLA-feasible objective over the
//! *post-drift window* (iterations after the drift ramp completes) and the
//! 1-based iterations until it comes within 10 % of `scratch`'s final value
//! (censored at the window).
//!
//! Gates:
//! * always — two identically seeded `warm` runs produce bit-identical
//!   histories (the determinism digest recorded in `BENCH_drift.json`), the
//!   detector fires (≥ 1 drift detected, ≥ 1 restart), and the `drift.*`
//!   counters/spans reached the trace;
//! * full run only (`--smoke` budgets are too small) — the ISSUE acceptance
//!   line: `warm` reaches within 10 % of `scratch`'s final TCO, in at most
//!   half the post-drift iterations `cold` needs (censored at the window).

use std::sync::Arc;

use dbsim::{InstanceType, KnobSet, WorkloadSchedule, WorkloadSpec};
use restune_bench::context::{build_repository_from, scale_rate_to_instance};
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::drift::{DriftConfig, DriftController, LocalSealSink, RestartPolicy};
use restune_core::engine::IterationRecord;
use restune_core::problem::ResourceKind;
use restune_core::repository::DataRepository;
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use workload::WorkloadCharacterizer;

const SEED: u64 = 42;

struct Plan {
    total_iters: usize,
    drift_at: u64,
    drift_ramp: u64,
}

fn bo_config() -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 60, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
        dynamic_samples: 8,
        init_iters: 8,
        // The sealed pre-drift profile sits far from the OLAP profile in
        // meta-feature space; a wide Epanechnikov bandwidth keeps the sealed
        // task's static weight nonzero so the transfer actually engages.
        static_bandwidth: 2.0,
        trace: true,
        seed: SEED,
        ..Default::default()
    }
}

fn drift_config(policy: RestartPolicy) -> DriftConfig {
    DriftConfig {
        check_every: 2,
        threshold: 0.25,
        min_epoch_iters: 6,
        settle_tol: 0.05,
        embed_seed: 0,
        policy,
    }
}

/// The 8-core instance: OLAP CPU% has real knob headroom there (on the
/// 48-core A nearly every configuration lands within a few percent of
/// optimal, which would make every re-tuning arm look instantly converged).
const INSTANCE: InstanceType = InstanceType::B;

/// The pre-drift workload: twitter with its request rate scaled to what the
/// small instance sustains (as the repository builder does).
fn base_workload() -> WorkloadSpec {
    scale_rate_to_instance(&WorkloadSpec::twitter(), INSTANCE)
}

fn schedule(plan: &Plan) -> WorkloadSchedule {
    WorkloadSchedule::oltp_to_olap(SEED, plan.drift_at, plan.drift_ramp)
}

fn environment(plan: &Plan) -> TuningEnvironment {
    TuningEnvironment::builder()
        .instance(INSTANCE)
        .workload(base_workload())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(SEED)
        .schedule(schedule(plan))
        .build()
}

struct ArmRun {
    restarts: u64,
    sealed: usize,
    /// Engine `epoch_start` after the run (0 when no restart fired).
    restart_iter: usize,
    history: Vec<IterationRecord>,
}

/// One drifting session; `policy` = `None` is the oblivious arm.
fn drift_arm(
    plan: &Plan,
    policy: Option<RestartPolicy>,
    characterizer: &Arc<WorkloadCharacterizer>,
    repo: &DataRepository,
) -> ArmRun {
    let env = environment(plan);
    let session = TuningSession::new(env, bo_config());
    let session = match policy {
        Some(policy) => {
            let sink = Box::new(LocalSealSink::new(
                repo.clone(),
                gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
            ));
            let controller = DriftController::for_workload(
                drift_config(policy),
                Arc::clone(characterizer),
                &base_workload(),
                "twitter@B",
                sink,
            );
            session.with_drift(controller)
        }
        None => session,
    };
    let mut driver = session.into_driver();
    for _ in 0..plan.total_iters {
        driver.step();
    }
    let restarts = driver.drift().map(|d| d.restarts()).unwrap_or(0);
    let sealed = driver.drift().map(|d| d.sealed_tasks()).unwrap_or(0);
    let restart_iter = driver.engine().epoch_start();
    let history = driver.into_outcome().history;
    ArmRun { restarts, sealed, restart_iter, history }
}

/// Fresh session on the fully drifted workload — the re-tuning target.
fn scratch_arm(plan: &Plan, post_iters: usize) -> ArmRun {
    let drifted = schedule(plan).effective(&base_workload(), u64::MAX - 1);
    let env = TuningEnvironment::builder()
        .instance(INSTANCE)
        .workload(drifted)
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::case_study())
        .seed(SEED)
        .build();
    let outcome = TuningSession::new(env, bo_config()).run_into_outcome(post_iters);
    ArmRun { restarts: 0, sealed: 0, restart_iter: 0, history: outcome.history }
}

/// Running best feasible objective over `history[from..]` (∞ until the
/// first feasible point lands).
fn post_curve(history: &[IterationRecord], from: usize) -> Vec<f64> {
    let mut best = f64::INFINITY;
    history[from.min(history.len())..]
        .iter()
        .map(|r| {
            if r.feasible && r.objective < best {
                best = r.objective;
            }
            best
        })
        .collect()
}

/// 1-based iterations until the curve comes within 10 % of `target`.
fn iters_to_10pct(curve: &[f64], target: f64) -> Option<usize> {
    curve.iter().position(|&b| b <= target * 1.10).map(|i| i + 1)
}

fn fnv1a64(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn run_digest(run: &ArmRun) -> u64 {
    let words = run
        .history
        .iter()
        .flat_map(|r| [r.objective.to_bits(), r.best_feasible_objective.to_bits()])
        .chain([run.restarts, run.restart_iter as u64]);
    fnv1a64(words.flat_map(|w| w.to_le_bytes()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_drift.json".to_string());

    let plan = if smoke {
        Plan { total_iters: 16, drift_at: 6, drift_ramp: 4 }
    } else {
        Plan { total_iters: 34, drift_at: 10, drift_ramp: 6 }
    };

    println!(
        "drift_sweep: {} iters, OLTP->OLAP drift at eval {} over {}{}",
        plan.total_iters,
        plan.drift_at,
        plan.drift_ramp,
        if smoke { " (smoke)" } else { "" }
    );

    trace::enable();
    let characterizer = Arc::new(WorkloadCharacterizer::train_default(SEED));
    // A small historical repository (same knob set, same space) so the warm
    // arm has genuine cross-task transfer sources beyond its own sealed
    // epoch: two OLTP tasks plus a previously tuned analytics task. The
    // drifted session's meta-features retrieve the OLAP history (the
    // schedule's jittered target is near, not identical to, the stock OLAP
    // mix); cold discards the learners either way.
    let repo = build_repository_from(
        &characterizer,
        &[
            (scale_rate_to_instance(&WorkloadSpec::sales(), INSTANCE), INSTANCE),
            (base_workload(), INSTANCE),
            (WorkloadSpec::olap(), INSTANCE),
        ],
        &KnobSet::case_study(),
        ResourceKind::Cpu,
        if smoke { 10 } else { 24 },
        SEED,
    );

    // Determinism + detector gates on the warm arm: two identically seeded
    // runs must agree on every bit, and the drift machinery must actually
    // fire and trace.
    let before = trace::snapshot();
    let warm = drift_arm(&plan, Some(RestartPolicy::Warm), &characterizer, &repo);
    let after = trace::snapshot();
    let checks = after.counter("drift.checks") - before.counter("drift.checks");
    let detected = after.counter("drift.detected") - before.counter("drift.detected");
    let restarts = after.counter("drift.restarts") - before.counter("drift.restarts");
    let sealed_epochs =
        after.counter("drift.epochs.sealed") - before.counter("drift.epochs.sealed");
    assert!(detected >= 1 && restarts >= 1, "drift never detected (checks {checks})");
    assert!(
        after.spans.iter().any(|s| s.path.ends_with("drift_check"))
            && after.spans.iter().any(|s| s.path.ends_with("drift_restart")),
        "drift_check/drift_restart spans missing from the trace"
    );
    let warm_rerun = drift_arm(&plan, Some(RestartPolicy::Warm), &characterizer, &repo);
    let digest = run_digest(&warm);
    assert_eq!(
        digest,
        run_digest(&warm_rerun),
        "same-seed warm drift sessions diverged"
    );

    let cold = drift_arm(&plan, Some(RestartPolicy::Cold), &characterizer, &repo);
    assert_eq!(
        warm.restart_iter, cold.restart_iter,
        "warm/cold detectors disagree on the restart iteration"
    );
    let oblivious = drift_arm(&plan, None, &characterizer, &repo);
    assert_eq!(oblivious.restarts, 0);

    let restart_iter = warm.restart_iter;
    let post_iters = plan.total_iters - restart_iter;
    let scratch = scratch_arm(&plan, post_iters);

    let scratch_curve = post_curve(&scratch.history, 0);
    let scratch_final = *scratch_curve.last().expect("scratch curve");
    let arms = [
        ("warm", &warm, restart_iter),
        ("cold", &cold, restart_iter),
        ("oblivious", &oblivious, restart_iter),
        ("scratch", &scratch, 0),
    ];

    println!(
        "\n{:>10}  {:>8}  {:>6}  {:>10}  {:>8}",
        "arm", "restarts", "sealed", "final", "to-10%"
    );
    let mut rows = Vec::new();
    for (name, run, from) in &arms {
        let curve = post_curve(&run.history, *from);
        let final_obj = *curve.last().expect("non-empty post-drift window");
        let to10 = iters_to_10pct(&curve, scratch_final);
        println!(
            "{:>10}  {:>8}  {:>6}  {:>9.2}%  {:>8}",
            name,
            run.restarts,
            run.sealed,
            final_obj,
            to10.map(|i| i.to_string()).unwrap_or_else(|| format!(">{}", curve.len())),
        );
        rows.push(format!(
            "    {{\"arm\": \"{}\", \"restarts\": {}, \"sealed_tasks\": {}, \"final_cpu_pct\": {}, \"iters_to_10pct\": {}}}",
            name,
            run.restarts,
            run.sealed,
            // An arm with no feasible post-drift point (the oblivious arm's
            // stale SLA) has no final objective: null, not a bare `inf`.
            if final_obj.is_finite() { format!("{final_obj:.4}") } else { "null".to_string() },
            to10.map(|i| i.to_string()).unwrap_or_else(|| "null".to_string()),
        ));
    }

    if !smoke {
        // ISSUE acceptance: the warm restart lands within 10 % of a
        // from-scratch retune's final TCO in at most half the post-drift
        // iterations the cold restart needs (censored at the window).
        let warm_curve = post_curve(&warm.history, restart_iter);
        let warm_needs = iters_to_10pct(&warm_curve, scratch_final)
            .expect("warm arm never reached within 10% of the scratch retune");
        let cold_needs = iters_to_10pct(&post_curve(&cold.history, restart_iter), scratch_final)
            .unwrap_or(post_iters);
        println!(
            "\ngate: warm hit 10% of scratch in {warm_needs} post-drift iters; cold needed {cold_needs}"
        );
        assert!(
            warm_needs * 2 <= cold_needs,
            "warm needed {warm_needs} post-drift iterations; not <= half of cold's {cold_needs}"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"drift_sweep\",\n  \"smoke\": {smoke},\n  \"total_iters\": {},\n  \"drift_at\": {},\n  \"drift_ramp\": {},\n  \"restart_iter\": {restart_iter},\n  \"post_drift_iters\": {post_iters},\n  \"scratch_final_cpu_pct\": {scratch_final:.4},\n  \"determinism_digest\": \"{:#018x}\",\n  \"drift_counters\": {{\"checks\": {checks}, \"detected\": {detected}, \"restarts\": {restarts}, \"epochs_sealed\": {sealed_epochs}}},\n  \"arms\": [\n{}\n  ]\n}}\n",
        plan.total_iters,
        plan.drift_at,
        plan.drift_ramp,
        digest,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");
}
