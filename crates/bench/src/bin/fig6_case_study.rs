//! Regenerates the SS7.3 case study: Figure 6(a-e), Table 5, Table 6 and
//! Figure 7 in one run (they share the 3-knob Twitter setup).

use restune_bench::experiments::case_study;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let iterations = match scale {
        Scale::Quick => 40,
        Scale::Full => 100,
    };
    let result = case_study::run(&ctx, iterations);
    case_study::render(&result);
    report::save_json("fig6_case_study", &result);
}
