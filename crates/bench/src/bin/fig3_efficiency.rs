//! Regenerates Figure 3: efficiency comparison under the original setting
//! (5 workloads x 6 methods, instance A).

use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};
use restune_bench::experiments::efficiency;
use restune_bench::{report, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = ExperimentContext::build(scale);
    let result = efficiency::run(
        &ctx,
        "Figure 3",
        Setting::Original,
        InstanceType::A,
        &Method::FIGURE3,
        &WorkloadSpec::evaluation_suite(),
        scale.iterations(),
    );
    efficiency::render(&result);
    report::save_json("fig3_efficiency", &result);
}
