//! Fleet throughput scaling bench (DESIGN.md §12): runs the same simulated
//! tenant fleet at worker counts 1, 4, and ncpu, reports tenants/sec per
//! arm, and cross-checks the determinism contract — every arm must produce
//! byte-identical per-tenant repository JSON.
//!
//! Usage:
//!   fleet_bench [--tenants N] [--iters K] [--out BENCH_fleet.json]
//!
//! Defaults: 1000 tenants × 4 iterations. The JSON written to `--out` is the
//! tracked `BENCH_fleet.json` trajectory CI keeps an arm of.

use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::fleet::{mix_seed, FleetConfig, FleetService, Tenant};
use restune_core::problem::ResourceKind;
use restune_core::tuner::{RestuneConfig, TuningEnvironment};
use dbsim::{InstanceType, KnobSet, WorkloadSpec};

/// FNV-1a over a byte string — the same digest primitive the golden tests
/// use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A cheap-but-real per-tenant config: two LHS bootstraps, then GP-driven
/// iterations with small budgets, so a thousand tenants finish in seconds
/// while still exercising fit + acquisition on every tenant.
fn tenant_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 60, n_local: 15, local_sigma: 0.1 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 4, ..Default::default() },
        dynamic_samples: 4,
        init_iters: 2,
        seed,
        ..Default::default()
    }
}

fn build_tenants(n: usize, iters: usize) -> Vec<Tenant> {
    (0..n as u64)
        .map(|id| {
            let seed = mix_seed(0xF1EE7, id);
            let env = TuningEnvironment::builder()
                .instance(InstanceType::A)
                .workload(WorkloadSpec::fleet_tenant(id))
                .resource(ResourceKind::Cpu)
                .knob_set(KnobSet::case_study())
                .seed(seed)
                .build();
            Tenant::restune(id, format!("tenant-{id}"), env, tenant_config(seed), iters)
        })
        .collect()
}

struct Arm {
    workers: usize,
    wall_s: f64,
    tenants_per_s: f64,
    digest: u64,
}

fn run_arm(workers: usize, tenants: usize, iters: usize) -> Arm {
    let service = FleetService::new(FleetConfig { workers, slice: 2, shards: 16 });
    let out = service.run(build_tenants(tenants, iters));
    assert_eq!(out.tenants.len(), tenants);
    assert_eq!(out.poisoned().count(), 0);
    // One digest over every tenant's record JSON, in id order.
    let mut h: u64 = 0xcbf29ce484222325;
    for t in &out.tenants {
        h ^= fnv1a(t.record_json().expect("render record").as_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    Arm { workers, wall_s: out.wall_s, tenants_per_s: out.tenants_per_s(), digest: h }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let tenants: usize = get("--tenants").and_then(|v| v.parse().ok()).unwrap_or(1000);
    let iters: usize = get("--iters").and_then(|v| v.parse().ok()).unwrap_or(4);
    let out_path = get("--out").unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let ncpu = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut worker_arms = vec![1usize, 4];
    if !worker_arms.contains(&ncpu) {
        worker_arms.push(ncpu);
    }

    println!("fleet_bench: {tenants} tenants x {iters} iters, arms {worker_arms:?} (ncpu={ncpu})");
    let arms: Vec<Arm> =
        worker_arms.iter().map(|&w| run_arm(w, tenants, iters)).collect();

    println!("\n{:>8}  {:>10}  {:>12}  {:>18}", "workers", "wall_s", "tenants/s", "digest");
    for a in &arms {
        println!(
            "{:>8}  {:>10.3}  {:>12.1}  {:>#18x}",
            a.workers, a.wall_s, a.tenants_per_s, a.digest
        );
    }

    // The determinism contract: per-tenant repository JSON is bit-identical
    // at every worker count, so the combined digests must agree.
    for a in &arms[1..] {
        assert_eq!(
            a.digest, arms[0].digest,
            "per-tenant records diverged between workers={} and workers={}",
            arms[0].workers, a.workers
        );
    }
    println!("\ndeterminism: all {} arms bit-identical", arms.len());
    if ncpu == 1 {
        println!("note: single-core machine — multi-worker arms measure scheduling overhead only");
    }

    // Tracked trajectory entry (BENCH_fleet.json).
    let json = format!(
        "{{\n  \"bench\": \"fleet_scaling\",\n  \"tenants\": {tenants},\n  \"iters\": {iters},\n  \"ncpu\": {ncpu},\n  \"arms\": [\n{}\n  ],\n  \"determinism_digest\": \"{:#x}\"\n}}\n",
        arms.iter()
            .map(|a| format!(
                "    {{\"workers\": {}, \"wall_s\": {:.3}, \"tenants_per_s\": {:.1}}}",
                a.workers, a.wall_s, a.tenants_per_s
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        arms[0].digest
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("[saved {out_path}]");
}
