//! Shared experiment context: the workload characterizer, the historical
//! data repository (34 tasks = 17 workloads × instances A and B, as in §7
//! "Data Repository"), pre-fitted base-learners, and budget scaling.

use baselines::{Method, MethodContext, run_method};
use baselines::method::Setting;
use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::meta::BaseLearner;
use restune_core::problem::ResourceKind;
use restune_core::repository::{DataRepository, TaskRecord};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningOutcome};
use workload::WorkloadCharacterizer;

/// Experiment budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced budget: fast smoke-scale reproduction.
    Quick,
    /// Paper-scale budget (200 iterations, more observations per task).
    Full,
}

impl Scale {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Tuning iterations per run (paper: 200).
    pub fn iterations(&self) -> usize {
        match self {
            Scale::Quick => 50,
            Scale::Full => 200,
        }
    }

    /// Observations collected per historical task (paper: ~188).
    pub fn task_observations(&self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Full => 188,
        }
    }

    /// Random repeats averaged per experiment (paper: 3).
    pub fn repeats(&self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Full => 3,
        }
    }
}

/// Everything the experiment binaries share.
pub struct ExperimentContext {
    /// Budget scale.
    pub scale: Scale,
    /// The trained characterization pipeline.
    pub characterizer: WorkloadCharacterizer,
    /// The CPU-knob historical repository (34 tasks, instances A and B).
    pub repository: DataRepository,
    /// Pre-fitted base-learners for the CPU repository.
    pub learners: Vec<BaseLearner>,
    /// Base random seed.
    pub seed: u64,
}

impl ExperimentContext {
    /// Builds the standard context: 17 workloads × instances {A, B}, CPU
    /// knob set, LHS-sampled histories, base-learners pre-fitted.
    pub fn build(scale: Scale) -> Self {
        let seed = 42;
        let characterizer = WorkloadCharacterizer::train_default(seed);
        let repository =
            build_repository(&characterizer, &KnobSet::cpu(), ResourceKind::Cpu, scale, seed);
        let learners = fit_learners(&repository);
        ExperimentContext { scale, characterizer, repository, learners, seed }
    }

    /// The standard algorithm configuration at this scale.
    pub fn config(&self, seed: u64) -> RestuneConfig {
        standard_config(self.scale, seed)
    }

    /// A method context over the shared repository/learners.
    pub fn method_context(&self, setting: Setting, target: &WorkloadSpec, seed: u64) -> MethodContext<'_> {
        MethodContext {
            config: self.config(seed),
            repository: Some(&self.repository),
            prepared_learners: Some(&self.learners),
            setting,
            target_meta_feature: self.characterizer.embed_workload(target, seed).probs,
        }
    }

    /// Runs one method on one environment with the shared history.
    pub fn run(
        &self,
        method: Method,
        instance: InstanceType,
        workload: &WorkloadSpec,
        setting: Setting,
        iterations: usize,
        seed: u64,
    ) -> TuningOutcome {
        let env = TuningEnvironment::builder()
            .instance(instance)
            .workload(workload.clone())
            .resource(ResourceKind::Cpu)
            .seed(seed)
            .build();
        let ctx = self.method_context(setting, workload, seed);
        run_method(method, env, iterations, &ctx)
    }
}

/// The shared algorithm configuration for a scale.
pub fn standard_config(scale: Scale, seed: u64) -> RestuneConfig {
    match scale {
        Scale::Full => RestuneConfig { seed, ..Default::default() },
        Scale::Quick => RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 600, n_local: 120, local_sigma: 0.08 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() },
            dynamic_samples: 16,
            max_rank_points: 40,
            seed,
            ..Default::default()
        },
    }
}

/// Builds a repository over `knob_set`/`resource` from the 17-workload
/// catalogue on instances A and B (34 tasks).
///
/// Request rates are scaled to each instance's cores: Table 2's rates target
/// the 48-core instance A and would saturate the 8-core instance B, leaving
/// its tuning histories with flat (uninformative) response surfaces. A
/// production workload on a small box runs at a rate the box sustains.
pub fn build_repository(
    characterizer: &WorkloadCharacterizer,
    knob_set: &KnobSet,
    resource: ResourceKind,
    scale: Scale,
    seed: u64,
) -> DataRepository {
    let mut repo = DataRepository::new();
    let n = scale.task_observations();
    for (wi, spec) in WorkloadSpec::repository_catalog().into_iter().enumerate() {
        for (ii, instance) in [InstanceType::A, InstanceType::B].into_iter().enumerate() {
            let task_seed = seed ^ ((wi as u64) << 8) ^ ((ii as u64) << 20);
            let spec = scale_rate_to_instance(&spec, instance);
            let mut dbms = SimulatedDbms::new(instance, spec, task_seed);
            repo.add(TaskRecord::collect(
                &mut dbms,
                knob_set,
                resource,
                characterizer,
                n,
                task_seed,
            ));
        }
    }
    repo
}

/// Scales a rate-bounded workload's request rate to what `instance` can
/// sustain (relative to instance A, keeping the workload name unchanged).
pub fn scale_rate_to_instance(spec: &WorkloadSpec, instance: InstanceType) -> WorkloadSpec {
    match spec.request_rate {
        Some(rate) if instance != InstanceType::A => {
            let factor = instance.cores() as f64 / InstanceType::A.cores() as f64;
            spec.clone().with_request_rate(rate * factor * 0.8).named(&spec.name)
        }
        _ => spec.clone(),
    }
}

/// Builds a repository from explicit (workload, instance) pairs.
pub fn build_repository_from(
    characterizer: &WorkloadCharacterizer,
    tasks: &[(WorkloadSpec, InstanceType)],
    knob_set: &KnobSet,
    resource: ResourceKind,
    n_observations: usize,
    seed: u64,
) -> DataRepository {
    let mut repo = DataRepository::new();
    for (i, (spec, instance)) in tasks.iter().enumerate() {
        let task_seed = seed ^ ((i as u64 + 1) << 10);
        let mut dbms = SimulatedDbms::new(*instance, spec.clone(), task_seed);
        repo.add(TaskRecord::collect(
            &mut dbms,
            knob_set,
            resource,
            characterizer,
            n_observations,
            task_seed,
        ));
    }
    repo
}

/// Fits base-learners for every repository task (done once, reused across
/// runs).
pub fn fit_learners(repo: &DataRepository) -> Vec<BaseLearner> {
    let gp_config = gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() };
    repo.base_learners(&gp_config, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repository_has_34_tasks_on_two_instances() {
        let characterizer = WorkloadCharacterizer::train_default(0);
        // A tiny build just to validate the shape.
        let mut tiny = DataRepository::new();
        for (wi, spec) in
            WorkloadSpec::repository_catalog().into_iter().take(2).enumerate()
        {
            for instance in [InstanceType::A, InstanceType::B] {
                let mut dbms = SimulatedDbms::new(instance, spec.clone(), wi as u64);
                tiny.add(TaskRecord::collect(
                    &mut dbms,
                    &KnobSet::case_study(),
                    ResourceKind::Cpu,
                    &characterizer,
                    8,
                    wi as u64,
                ));
            }
        }
        assert_eq!(tiny.len(), 4);
        let learners = fit_learners(&tiny);
        assert_eq!(learners.len(), 4);
        // Full catalogue is 17 x 2 = 34 (checked structurally, not built here
        // to keep tests fast).
        assert_eq!(WorkloadSpec::repository_catalog().len() * 2, 34);
    }

    #[test]
    fn scale_budgets() {
        assert_eq!(Scale::Full.iterations(), 200);
        assert!(Scale::Quick.iterations() < Scale::Full.iterations());
        assert_eq!(Scale::Full.repeats(), 3);
    }
}
