//! Views over a [`trace::TraceSnapshot`]: the flamegraph-style span tree and
//! the Table-3-compatible per-iteration phase breakdown. `trace_report`,
//! `step_timing`, and the Table 3 experiment all render from these, so the
//! trace is the single timing data source (DESIGN.md §10).

use std::collections::BTreeMap;

use trace::{SpanAgg, TraceSnapshot};

/// Per-iteration phase means derived from a snapshot — the same quantities
/// `IterationTiming` carries, summed across a run and divided by the
/// `loop.iterations` counter. `replay_s` is the mean *simulated* replay
/// clock (`replay.sim_s` histogram), matching `IterationTiming.replay_s`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseMeans {
    /// Iterations observed (`loop.iterations`).
    pub iterations: u64,
    /// Mean meta-data-processing seconds per iteration.
    pub meta_data_processing_s: f64,
    /// Mean model-update seconds per iteration.
    pub model_update_s: f64,
    /// Mean GP-fit seconds (subcomponent of the model update).
    pub gp_fit_s: f64,
    /// Mean weight-update seconds (subcomponent of the model update).
    pub weight_update_s: f64,
    /// Mean recommendation seconds per iteration.
    pub recommendation_s: f64,
    /// Mean simulated replay seconds per iteration.
    pub replay_s: f64,
}

impl PhaseMeans {
    /// Derives the breakdown from a snapshot covering one run.
    pub fn from_snapshot(snap: &TraceSnapshot) -> PhaseMeans {
        let iterations = snap.counter("loop.iterations");
        let n = iterations.max(1) as f64;
        PhaseMeans {
            iterations,
            meta_data_processing_s: snap.total_for("meta_data_processing") / n,
            model_update_s: snap.total_for("model_update") / n,
            gp_fit_s: snap.total_for("gp_fit") / n,
            weight_update_s: snap.total_for("weight_update") / n,
            recommendation_s: snap.total_for("recommendation") / n,
            replay_s: snap.hist("replay.sim_s").map(|h| h.sum).unwrap_or(0.0) / n,
        }
    }

    /// Mean per-iteration total in the Table 3 sense (`gp_fit`/`weights` are
    /// inside the model update; replay is simulated seconds).
    pub fn total_s(&self) -> f64 {
        self.meta_data_processing_s
            + self.model_update_s
            + self.recommendation_s
            + self.replay_s
    }

    /// Share of the iteration spent replaying.
    pub fn replay_share(&self) -> f64 {
        let total = self.total_s();
        if total > 0.0 { self.replay_s / total } else { 0.0 }
    }
}

fn human_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

struct Node {
    name: String,
    path: String,
    children: Vec<Node>,
}

fn insert(root: &mut Vec<Node>, segments: &[&str], prefix: &str) {
    let Some((head, rest)) = segments.split_first() else { return };
    let path =
        if prefix.is_empty() { (*head).to_string() } else { format!("{prefix}/{head}") };
    let pos = match root.iter().position(|n| n.name == *head) {
        Some(p) => p,
        None => {
            root.push(Node { name: (*head).to_string(), path: path.clone(), children: Vec::new() });
            root.len() - 1
        }
    };
    insert(&mut root[pos].children, rest, &path);
}

fn print_node(
    node: &Node,
    agg: &BTreeMap<String, SpanAgg>,
    indent: &str,
    last: bool,
    top: bool,
    out: &mut String,
) {
    let connector = if top {
        String::new()
    } else if last {
        format!("{indent}└─ ")
    } else {
        format!("{indent}├─ ")
    };
    let label = format!("{connector}{}", node.name);
    match agg.get(&node.path) {
        Some(a) => {
            out.push_str(&format!(
                "{label:<42} n {:>6}  total {:>9}  mean {:>9}\n",
                a.count,
                human_s(a.total_s),
                human_s(a.total_s / a.count.max(1) as f64),
            ));
        }
        None => out.push_str(&format!("{label}\n")),
    }
    let child_indent = if top {
        indent.to_string()
    } else if last {
        format!("{indent}   ")
    } else {
        format!("{indent}│  ")
    };
    for (i, child) in node.children.iter().enumerate() {
        print_node(child, agg, &child_indent, i + 1 == node.children.len(), false, out);
    }
}

/// Renders the snapshot's spans as an indented flamegraph-style text tree.
/// Siblings appear in first-completion order (program order for the
/// tuner's phase spans); each line shows occurrence count, total, and mean.
pub fn render_span_tree(snap: &TraceSnapshot) -> String {
    let agg = snap.span_agg();
    let mut roots: Vec<Node> = Vec::new();
    // First-occurrence order over full paths keeps phases in program order.
    let mut seen = std::collections::BTreeSet::new();
    for ev in &snap.spans {
        if seen.insert(ev.path.clone()) {
            let segments: Vec<&str> = ev.path.split('/').collect();
            insert(&mut roots, &segments, "");
        }
    }
    let mut out = String::new();
    for root in &roots {
        print_node(root, &agg, "", true, true, &mut out);
    }
    out
}

/// Renders the Table-3-compatible breakdown plus counters and histograms.
pub fn render_breakdown(snap: &TraceSnapshot) -> String {
    let p = PhaseMeans::from_snapshot(snap);
    let mut out = String::new();
    out.push_str("per-iteration phase means (Table 3 layout):\n");
    out.push_str(&format!(
        "  {:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}\n",
        "MetaData", "Model", "GpFit", "Weights", "Recommend", "Replay(sim)", "Replay%"
    ));
    out.push_str(&format!(
        "  {:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8.1}%\n",
        human_s(p.meta_data_processing_s),
        human_s(p.model_update_s),
        human_s(p.gp_fit_s),
        human_s(p.weight_update_s),
        human_s(p.recommendation_s),
        human_s(p.replay_s),
        100.0 * p.replay_share(),
    ));
    out.push_str(&format!("  iterations: {}\n", p.iterations));
    // The surrogate/lift path taken, from the counters the proposer and
    // engine maintain: how many target fits were from-scratch vs. rank-1
    // incremental (DESIGN.md §13), the hyperopt refit schedule behind them,
    // and how many evaluations crossed the space-transform seam (§14).
    let full = snap.counter("gp.fit.full");
    let incremental = snap.counter("gp.fit.incremental");
    let refit = snap.counter("gp.hypers.refit");
    let reuse = snap.counter("gp.hypers.reuse");
    let projects = snap.counter("space.project");
    if full + incremental > 0 {
        out.push_str(&format!(
            "  surrogate fits: {full} full + {incremental} incremental (hyperopt: {refit} refit / {reuse} reuse)\n"
        ));
    }
    if projects > 0 {
        out.push_str(&format!("  space projections: {projects}\n"));
    }
    // Drift detection / warm-restart activity (DESIGN.md §16): absent for
    // static sessions, which never touch the drift counters.
    let drift_checks = snap.counter("drift.checks");
    if drift_checks > 0 {
        out.push_str(&format!(
            "  drift: {drift_checks} checks, {} detected, {} warm restarts, {} epochs sealed\n",
            snap.counter("drift.detected"),
            snap.counter("drift.restarts"),
            snap.counter("drift.epochs.sealed"),
        ));
    }
    if !snap.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, value) in &snap.counters {
            out.push_str(&format!("  {name:<28} {value}\n"));
        }
    }
    if !snap.hists.is_empty() {
        out.push_str("\nhistograms (count / mean / min / max):\n");
        for (name, h) in &snap.hists {
            out.push_str(&format!(
                "  {name:<28} {} / {} / {} / {}\n",
                h.count,
                human_s(h.mean()),
                human_s(h.min),
                human_s(h.max),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::SpanEvent;

    fn ev(path: &str, dur_s: f64) -> SpanEvent {
        SpanEvent { path: path.to_string(), dur_s, fields: Vec::new() }
    }

    #[test]
    fn tree_renders_nested_paths_with_parents_first() {
        let snap = TraceSnapshot {
            spans: vec![
                ev("iteration/meta_data_processing", 0.001),
                ev("iteration/model_update/gp_fit", 0.01),
                ev("iteration/model_update", 0.02),
                ev("iteration", 0.5),
            ],
            ..Default::default()
        };
        let tree = render_span_tree(&snap);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("iteration "));
        assert!(lines[1].contains("meta_data_processing"));
        assert!(lines[2].contains("model_update"));
        assert!(lines[3].contains("gp_fit"));
    }

    #[test]
    fn breakdown_renders_surrogate_and_projection_counters() {
        let mut snap = TraceSnapshot::default();
        snap.counters.insert("loop.iterations".to_string(), 44);
        snap.counters.insert("gp.fit.full".to_string(), 40);
        snap.counters.insert("gp.fit.incremental".to_string(), 4);
        snap.counters.insert("gp.hypers.refit".to_string(), 9);
        snap.counters.insert("gp.hypers.reuse".to_string(), 35);
        snap.counters.insert("space.project".to_string(), 45);
        snap.counters.insert("drift.checks".to_string(), 13);
        snap.counters.insert("drift.detected".to_string(), 2);
        snap.counters.insert("drift.restarts".to_string(), 1);
        snap.counters.insert("drift.epochs.sealed".to_string(), 1);
        let text = render_breakdown(&snap);
        assert!(text.contains("surrogate fits: 40 full + 4 incremental"));
        assert!(text.contains("hyperopt: 9 refit / 35 reuse"));
        assert!(text.contains("space projections: 45"));
        assert!(text.contains("drift: 13 checks, 2 detected, 1 warm restarts, 1 epochs sealed"));
        // Absent counters keep the lines out entirely.
        let empty = render_breakdown(&TraceSnapshot::default());
        assert!(!empty.contains("surrogate fits"));
        assert!(!empty.contains("space projections"));
        assert!(!empty.contains("drift:"));
    }

    #[test]
    fn phase_means_divide_by_loop_iterations() {
        let mut snap = TraceSnapshot {
            spans: vec![ev("iteration/model_update", 0.4), ev("iteration/model_update", 0.6)],
            ..Default::default()
        };
        snap.counters.insert("loop.iterations".to_string(), 2);
        let mut h = trace::Hist::default();
        snap.hists.insert("replay.sim_s".to_string(), h.clone());
        h = trace::Hist { count: 2, sum: 364.4, min: 182.2, max: 182.2 };
        snap.hists.insert("replay.sim_s".to_string(), h);
        let p = PhaseMeans::from_snapshot(&snap);
        assert_eq!(p.iterations, 2);
        assert!((p.model_update_s - 0.5).abs() < 1e-12);
        assert!((p.replay_s - 182.2).abs() < 1e-12);
        assert!(p.replay_share() > 0.99);
    }
}
