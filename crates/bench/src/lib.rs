//! Experiment harnesses regenerating every table and figure of the ResTune
//! paper's evaluation (§7).
//!
//! Each experiment lives in [`experiments`] as a function returning a
//! serializable result struct plus a text renderer printing the same
//! rows/series the paper reports. One binary per table/figure (see
//! `src/bin/`) calls into here; `reproduce_all` runs everything and dumps
//! JSON under `results/`.
//!
//! Scale: binaries default to a reduced budget (fewer iterations/seeds) so a
//! full reproduction pass finishes in minutes on a laptop; pass `--full` for
//! paper-scale budgets (200 iterations, 3 seeds).

pub mod context;
pub mod experiments;
pub mod gate;
pub mod health_view;
pub mod microbench;
pub mod report;
pub mod trace_view;

pub use context::{ExperimentContext, Scale};
