//! Rendering and persistence helpers shared by the experiment binaries.

use std::path::PathBuf;

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints one aligned table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{:>width$}", c, width = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a labelled numeric series, down-sampled to at most `max_points`
/// (the textual stand-in for a figure's curve).
pub fn series(label: &str, values: &[f64], max_points: usize) {
    if values.is_empty() {
        println!("{label:<22} (empty)");
        return;
    }
    let step = (values.len() as f64 / max_points as f64).ceil().max(1.0) as usize;
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .filter(|(i, _)| i % step == 0 || *i == values.len() - 1)
        .map(|(i, v)| format!("{i}:{v:.1}"))
        .collect();
    println!("{label:<22} {}", pts.join("  "));
}

/// Directory experiment outputs are written to (`results/` in the repo root,
/// created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("RESTUNE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Saves an experiment result as pretty JSON under `results/<id>.json`.
pub fn save_json<T: minjson::ToJson>(id: &str, value: &T) {
    let path = results_dir().join(format!("{id}.json"));
    match minjson::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {id}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_handles_empty_and_short_inputs() {
        series("empty", &[], 10);
        series("short", &[1.0, 2.0], 10);
    }

    #[test]
    fn save_json_writes_a_file() {
        std::env::set_var("RESTUNE_RESULTS_DIR", std::env::temp_dir().join("rt_test_results"));
        save_json("unit_test", &vec![1, 2, 3]);
        let path = results_dir().join("unit_test.json");
        assert!(path.exists());
        let _ = std::fs::remove_file(path);
        std::env::remove_var("RESTUNE_RESULTS_DIR");
    }
}
