//! Benchmarks of the workload-characterization pipeline (Table 3's
//! meta-data-processing column): tokenization, TF-IDF, forest inference, and
//! whole-workload embedding.

use criterion::{criterion_group, criterion_main, Criterion};
use dbsim::WorkloadSpec;
use std::hint::black_box;
use workload::{extract_reserved_words, generate_queries, TfIdfVectorizer, WorkloadCharacterizer};

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization");
    let queries = generate_queries(&WorkloadSpec::tpcc(), 400, 7);
    let sql = &queries[0].text;

    group.bench_function("tokenize_one_query", |b| {
        b.iter(|| black_box(extract_reserved_words(black_box(sql))))
    });

    let corpus: Vec<Vec<&'static str>> =
        queries.iter().map(|q| extract_reserved_words(&q.text)).collect();
    group.bench_function("tfidf_fit_400_queries", |b| {
        b.iter(|| black_box(TfIdfVectorizer::fit(black_box(&corpus))))
    });
    let vectorizer = TfIdfVectorizer::fit(&corpus);
    group.bench_function("tfidf_transform", |b| {
        b.iter(|| black_box(vectorizer.transform(black_box(&corpus[0]))))
    });

    group.sample_size(10);
    group.bench_function("train_characterizer", |b| {
        b.iter(|| black_box(WorkloadCharacterizer::train_default(9)))
    });
    let characterizer = WorkloadCharacterizer::train_default(9);
    group.bench_function("classify_one_query", |b| {
        b.iter(|| black_box(characterizer.classify(black_box(sql))))
    });
    group.bench_function("embed_workload_400_queries", |b| {
        b.iter(|| black_box(characterizer.embed_workload(&WorkloadSpec::hotel(), 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_characterization);
criterion_main!(benches);
