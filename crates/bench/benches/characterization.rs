//! Benchmarks of the workload-characterization pipeline (Table 3's
//! meta-data-processing column): tokenization, TF-IDF, forest inference, and
//! whole-workload embedding.

use dbsim::WorkloadSpec;
use restune_bench::microbench::{black_box, suite, Bencher};
use workload::{extract_reserved_words, generate_queries, TfIdfVectorizer, WorkloadCharacterizer};

fn main() {
    let b = Bencher::from_env();
    suite("characterization");

    let queries = generate_queries(&WorkloadSpec::tpcc(), 400, 7);
    let sql = &queries[0].text;

    b.bench("tokenize_one_query", || {
        black_box(extract_reserved_words(black_box(sql)));
    });

    let corpus: Vec<Vec<&'static str>> =
        queries.iter().map(|q| extract_reserved_words(&q.text)).collect();
    b.bench("tfidf_fit_400_queries", || {
        black_box(TfIdfVectorizer::fit(black_box(&corpus)));
    });

    let vectorizer = TfIdfVectorizer::fit(&corpus);
    b.bench("tfidf_transform", || {
        black_box(vectorizer.transform(black_box(&corpus[0])));
    });

    b.bench("train_characterizer", || {
        black_box(WorkloadCharacterizer::train_default(9));
    });

    let characterizer = WorkloadCharacterizer::train_default(9);
    b.bench("classify_one_query", || {
        black_box(characterizer.classify(black_box(sql)));
    });
    b.bench("embed_workload_400_queries", || {
        black_box(characterizer.embed_workload(&WorkloadSpec::hotel(), 3));
    });
}
