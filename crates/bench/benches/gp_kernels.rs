//! Microbenchmarks of the Gaussian-process surrogate stack — the
//! computational kernels behind every "Model Update" row of Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp::{GaussianProcess, GpConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn dataset(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>().sin()).collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    for &n in &[50usize, 100, 200] {
        let (xs, ys) = dataset(n, 14, 1);
        group.bench_with_input(BenchmarkId::new("fit_fixed_hypers", n), &n, |b, _| {
            b.iter(|| {
                GaussianProcess::fit(black_box(xs.clone()), black_box(ys.clone()), &GpConfig::fixed())
                    .unwrap()
            })
        });
    }
    let (xs, ys) = dataset(100, 14, 2);
    let opt_cfg = GpConfig { restarts: 1, adam_iters: 25, ..Default::default() };
    group.sample_size(10);
    group.bench_function("fit_optimized_hypers_n100", |b| {
        b.iter(|| GaussianProcess::fit(black_box(xs.clone()), black_box(ys.clone()), &opt_cfg))
    });

    let model = GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).unwrap();
    let probes = dataset(500, 14, 3).0;
    group.bench_function("predict_500_points_n100", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(model.predict(p).unwrap());
            }
        })
    });
    let sample_points = dataset(40, 14, 4).0;
    group.bench_function("sample_joint_30x40_n100", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| black_box(model.sample_joint(&sample_points, 30, &mut rng).unwrap()))
    });
    group.bench_function("loo_predictions_n100", |b| {
        b.iter(|| black_box(model.loo_predictions().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_gp);
criterion_main!(benches);
