//! Microbenchmarks of the Gaussian-process surrogate stack — the
//! computational kernels behind every "Model Update" row of Table 3.

use gp::{GaussianProcess, GpConfig};
use restune_bench::microbench::{black_box, suite, Bencher};
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

fn dataset(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>().sin()).collect();
    (xs, ys)
}

fn main() {
    let b = Bencher::from_env();
    suite("gp");

    for &n in &[50usize, 100, 200] {
        let (xs, ys) = dataset(n, 14, 1);
        b.bench(&format!("fit_fixed_hypers/{n}"), || {
            black_box(
                GaussianProcess::fit(black_box(xs.clone()), black_box(ys.clone()), &GpConfig::fixed())
                    .unwrap(),
            );
        });
    }

    let (xs, ys) = dataset(100, 14, 2);
    let opt_cfg = GpConfig { restarts: 1, adam_iters: 25, ..Default::default() };
    b.bench("fit_optimized_hypers_n100", || {
        black_box(GaussianProcess::fit(black_box(xs.clone()), black_box(ys.clone()), &opt_cfg).ok());
    });

    let model = GaussianProcess::fit(xs.clone(), ys.clone(), &GpConfig::fixed()).unwrap();
    let probes = dataset(500, 14, 3).0;
    b.bench("predict_500_points_n100", || {
        for p in &probes {
            black_box(model.predict(p).unwrap());
        }
    });

    let sample_points = dataset(40, 14, 4).0;
    let mut rng = StdRng::seed_from_u64(9);
    b.bench("sample_joint_30x40_n100", || {
        black_box(model.sample_joint(&sample_points, 30, &mut rng).unwrap());
    });

    b.bench("loo_predictions_n100", || {
        black_box(model.loo_predictions().unwrap());
    });
}
