//! Benchmarks of whole tuning iterations: the algorithm-side cost per
//! iteration for ResTune with and without meta-learning (Table 3's
//! model-update + recommendation columns).

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_bench::microbench::{black_box, suite, Bencher};
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::problem::ResourceKind;
use restune_core::repository::{DataRepository, TaskRecord};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use workload::WorkloadCharacterizer;

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 600, n_local: 120, local_sigma: 0.08 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() },
        dynamic_samples: 16,
        seed,
        ..Default::default()
    }
}

fn env(seed: u64) -> TuningEnvironment {
    TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::cpu())
        .seed(seed)
        .build()
}

fn main() {
    let b = Bencher::from_env();
    suite("tuning_iteration");

    // Each sample rebuilds a session warmed past the LHS bootstrap so the
    // timed step always exercises the GP path at the same history size.
    b.bench_with_setup(
        "restune_without_ml_step",
        || {
            let mut s = TuningSession::new(env(1), quick_config(1));
            for _ in 0..12 {
                s.step();
            }
            s
        },
        |mut s| black_box(s.step()),
    );

    // Meta-boosted step (dynamic ranking-loss weights over 6 base learners).
    let characterizer = WorkloadCharacterizer::train_default(2);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(3).enumerate() {
        for instance in [InstanceType::A, InstanceType::B] {
            let mut dbms = SimulatedDbms::new(instance, spec.clone(), 30 + i as u64);
            repo.add(TaskRecord::collect(
                &mut dbms,
                &KnobSet::cpu(),
                ResourceKind::Cpu,
                &characterizer,
                50,
                40 + i as u64,
            ));
        }
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;
    b.bench_with_setup(
        "restune_meta_step_6_learners",
        || {
            let mut s = TuningSession::with_base_learners(
                env(2),
                quick_config(2),
                learners.clone(),
                mf.clone(),
            );
            for _ in 0..12 {
                s.step();
            }
            s
        },
        |mut s| black_box(s.step()),
    );

    // Serial vs parallel/batched step at the same seed: the two arms produce
    // bit-identical iteration records (tests/determinism.rs pins this), so
    // any gap is pure recommend-side overhead — per-point Cholesky clones
    // and solves vs one blocked solve per batch, plus thread fan-out for the
    // GP fits and posterior draws.
    for (name, parallel) in
        [("restune_meta_step_serial_path", false), ("restune_meta_step_parallel_path", true)]
    {
        let learners = learners.clone();
        let mf = mf.clone();
        b.bench_with_setup(
            name,
            move || {
                let mut config = quick_config(3);
                config.parallel = parallel;
                let mut s = TuningSession::with_base_learners(
                    env(3),
                    config,
                    learners.clone(),
                    mf.clone(),
                );
                // Warm to iteration 13 (not a multiple of 4) so the timed
                // step can't hit the stagnation safeguard, which skips the
                // acquisition optimization and would void the comparison.
                for _ in 0..13 {
                    s.step();
                }
                s
            },
            |mut s| black_box(s.step()),
        );
    }

    // Tracing overhead (DESIGN.md §10): the warmed non-meta step with the
    // collector disabled — the default no-op sink, one relaxed atomic load
    // per instrumentation site — and enabled. The disabled arm must sit
    // within 2% of `restune_without_ml_step` above (same workload, the
    // toggle is the only difference); the enabled arm prices the mutex +
    // allocation cost of actually recording.
    for (name, on) in
        [("restune_step_trace_noop_sink", false), ("restune_step_trace_enabled", true)]
    {
        b.bench_with_setup(
            name,
            move || {
                if on {
                    trace::enable();
                } else {
                    trace::disable();
                }
                trace::reset();
                let mut s = TuningSession::new(env(1), quick_config(1));
                for _ in 0..12 {
                    s.step();
                }
                s
            },
            |mut s| black_box(s.step()),
        );
    }
    trace::disable();
    trace::reset();
}
