//! Benchmarks of whole tuning iterations: the algorithm-side cost per
//! iteration for ResTune with and without meta-learning (Table 3's
//! model-update + recommendation columns).

use criterion::{criterion_group, criterion_main, Criterion};
use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_core::acquisition::AcquisitionOptimizer;
use restune_core::problem::ResourceKind;
use restune_core::repository::{DataRepository, TaskRecord};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use std::hint::black_box;
use workload::WorkloadCharacterizer;

fn quick_config(seed: u64) -> RestuneConfig {
    RestuneConfig {
        optimizer: AcquisitionOptimizer { n_candidates: 600, n_local: 120, local_sigma: 0.08 },
        gp: gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() },
        dynamic_samples: 16,
        seed,
        ..Default::default()
    }
}

fn env(seed: u64) -> TuningEnvironment {
    TuningEnvironment::builder()
        .instance(InstanceType::A)
        .workload(WorkloadSpec::twitter())
        .resource(ResourceKind::Cpu)
        .knob_set(KnobSet::cpu())
        .seed(seed)
        .build()
}

fn bench_tuning(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuning_iteration");
    group.sample_size(10);

    group.bench_function("restune_without_ml_step", |b| {
        b.iter_batched(
            || {
                let mut s = TuningSession::new(env(1), quick_config(1));
                // Warm past the LHS bootstrap so the GP path is exercised.
                for _ in 0..12 {
                    s.step();
                }
                s
            },
            |mut s| black_box(s.step()),
            criterion::BatchSize::LargeInput,
        )
    });

    // Meta-boosted step (dynamic ranking-loss weights over 6 base learners).
    let characterizer = WorkloadCharacterizer::train_default(2);
    let mut repo = DataRepository::new();
    for (i, spec) in WorkloadSpec::twitter_variations().into_iter().take(3).enumerate() {
        for instance in [InstanceType::A, InstanceType::B] {
            let mut dbms = SimulatedDbms::new(instance, spec.clone(), 30 + i as u64);
            repo.add(TaskRecord::collect(
                &mut dbms,
                &KnobSet::cpu(),
                ResourceKind::Cpu,
                &characterizer,
                50,
                40 + i as u64,
            ));
        }
    }
    let learners = repo.base_learners(&gp::GpConfig::fixed(), |_| true);
    let mf = characterizer.embed_workload(&WorkloadSpec::twitter(), 1).probs;
    group.bench_function("restune_meta_step_6_learners", |b| {
        b.iter_batched(
            || {
                let mut s = TuningSession::with_base_learners(
                    env(2),
                    quick_config(2),
                    learners.clone(),
                    mf.clone(),
                );
                for _ in 0..12 {
                    s.step();
                }
                s
            },
            |mut s| black_box(s.step()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_tuning);
criterion_main!(benches);
