//! Microbenchmarks of the simulated DBMS: single evaluations (the "replay"
//! stand-in) and grid sweeps (the Table 6 ground truth).

use baselines::grid_search;
use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_bench::microbench::{black_box, suite, Bencher};
use restune_core::problem::ResourceKind;

fn main() {
    let b = Bencher::from_env();
    suite("dbsim");

    let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 0);
    let config = Configuration::dba_default().with("innodb_io_capacity", 8000.0);
    b.bench("evaluate_noiseless", || {
        black_box(dbms.evaluate_noiseless(black_box(&config)));
    });

    let mut noisy = SimulatedDbms::new(InstanceType::E, WorkloadSpec::tpcc(), 1);
    b.bench("evaluate_noisy", || {
        black_box(noisy.evaluate(&config));
    });

    let grid_dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
    b.bench("grid_search_8x8x8", || {
        black_box(grid_search(&grid_dbms, &KnobSet::case_study(), ResourceKind::Cpu, 8));
    });
}
