//! Microbenchmarks of the simulated DBMS: single evaluations (the "replay"
//! stand-in) and grid sweeps (the Table 6 ground truth).

use baselines::grid_search;
use criterion::{criterion_group, criterion_main, Criterion};
use dbsim::{Configuration, InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune_core::problem::ResourceKind;
use std::hint::black_box;

fn bench_dbsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbsim");
    let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 0);
    let config = Configuration::dba_default().with("innodb_io_capacity", 8000.0);
    group.bench_function("evaluate_noiseless", |b| {
        b.iter(|| black_box(dbms.evaluate_noiseless(black_box(&config))))
    });
    let mut noisy = SimulatedDbms::new(InstanceType::E, WorkloadSpec::tpcc(), 1);
    group.bench_function("evaluate_noisy", |b| b.iter(|| black_box(noisy.evaluate(&config))));

    group.sample_size(10);
    let grid_dbms =
        SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
    group.bench_function("grid_search_8x8x8", |b| {
        b.iter(|| {
            black_box(grid_search(&grid_dbms, &KnobSet::case_study(), ResourceKind::Cpu, 8))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dbsim);
criterion_main!(benches);
