//! Smoke-scale runs of every experiment pipeline, so `cargo bench` exercises
//! each table/figure regeneration path end to end. Budgets are tiny; the
//! full-scale harnesses live in `src/bin/` (`cargo run --bin <id> -- --full`).

use baselines::method::Setting;
use baselines::Method;
use dbsim::{InstanceType, WorkloadSpec};
use restune_bench::context::{standard_config, ExperimentContext, Scale};
use restune_bench::experiments::{efficiency, fig1};
use restune_bench::microbench::{black_box, suite, Bencher};
use std::sync::OnceLock;

/// A miniature shared context: 4 historical tasks, tiny budgets.
fn mini_context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        use restune_core::problem::ResourceKind;
        let characterizer = workload::WorkloadCharacterizer::train_default(1);
        let tasks: Vec<(WorkloadSpec, InstanceType)> = vec![
            (WorkloadSpec::twitter(), InstanceType::A),
            (WorkloadSpec::twitter(), InstanceType::B),
            (WorkloadSpec::sysbench(), InstanceType::A),
            (WorkloadSpec::hotel(), InstanceType::A),
        ];
        let repository = restune_bench::context::build_repository_from(
            &characterizer,
            &tasks,
            &dbsim::KnobSet::cpu(),
            ResourceKind::Cpu,
            30,
            1,
        );
        let learners = restune_bench::context::fit_learners(&repository);
        ExperimentContext { scale: Scale::Quick, characterizer, repository, learners, seed: 1 }
    })
}

fn main() {
    let b = Bencher::from_env();
    suite("experiments_smoke");

    b.bench("fig1_heatmap_6x6", || {
        black_box(fig1::run(6));
    });

    b.bench("fig3_one_panel_restune_8_iters", || {
        let ctx = mini_context();
        black_box(ctx.run(
            Method::Restune,
            InstanceType::A,
            &WorkloadSpec::twitter(),
            Setting::Original,
            8,
            7,
        ));
    });

    b.bench("fig4_transfer_varying_hardware_8_iters", || {
        let ctx = mini_context();
        black_box(ctx.run(
            Method::Restune,
            InstanceType::A,
            &WorkloadSpec::twitter(),
            Setting::VaryingHardware,
            8,
            7,
        ));
    });

    b.bench("fig5_varying_workloads_ottertune_8_iters", || {
        let ctx = mini_context();
        black_box(ctx.run(
            Method::OtterTuneWithConstraints,
            InstanceType::A,
            &WorkloadSpec::twitter(),
            Setting::VaryingWorkloads,
            8,
            7,
        ));
    });

    b.bench("cdbtune_ddpg_8_iters", || {
        let ctx = mini_context();
        black_box(ctx.run(
            Method::CdbTuneWithConstraints,
            InstanceType::A,
            &WorkloadSpec::twitter(),
            Setting::Original,
            8,
            7,
        ));
    });

    let curve: Vec<f64> = (0..200).map(|i| 100.0 / (1.0 + i as f64)).collect();
    b.bench("iterations_to_best_metric", || {
        black_box(efficiency::iterations_to_best(black_box(&curve)));
    });

    let dbms =
        dbsim::SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
    let rec = dbsim::Configuration::dba_default()
        .with("innodb_thread_concurrency", 13.0)
        .with("innodb_spin_wait_delay", 0.0)
        .with("innodb_lru_scan_depth", 356.0);
    let knobs: Vec<String> =
        dbsim::KnobSet::case_study().names().iter().map(|n| n.to_string()).collect();
    b.bench("shap_path_3_knobs", || {
        black_box(restune_core::shap::shap_path(&dbms, &rec, &knobs, 0));
    });

    // Keep the config constructor honest (cheap, but it pins the API).
    b.bench("standard_config", || {
        black_box(standard_config(Scale::Quick, 3));
    });
}
