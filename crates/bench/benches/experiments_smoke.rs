//! Smoke-scale runs of every experiment pipeline, so `cargo bench` exercises
//! each table/figure regeneration path end to end. Budgets are tiny; the
//! full-scale harnesses live in `src/bin/` (`cargo run --bin <id> -- --full`).

use baselines::method::Setting;
use baselines::Method;
use criterion::{criterion_group, criterion_main, Criterion};
use dbsim::{InstanceType, WorkloadSpec};
use restune_bench::context::{standard_config, ExperimentContext, Scale};
use restune_bench::experiments::{efficiency, fig1};
use std::hint::black_box;
use std::sync::OnceLock;

/// A miniature shared context: 4 historical tasks, tiny budgets.
fn mini_context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        use restune_core::problem::ResourceKind;
        let characterizer = workload::WorkloadCharacterizer::train_default(1);
        let tasks: Vec<(WorkloadSpec, InstanceType)> = vec![
            (WorkloadSpec::twitter(), InstanceType::A),
            (WorkloadSpec::twitter(), InstanceType::B),
            (WorkloadSpec::sysbench(), InstanceType::A),
            (WorkloadSpec::hotel(), InstanceType::A),
        ];
        let repository = restune_bench::context::build_repository_from(
            &characterizer,
            &tasks,
            &dbsim::KnobSet::cpu(),
            ResourceKind::Cpu,
            30,
            1,
        );
        let learners = restune_bench::context::fit_learners(&repository);
        ExperimentContext { scale: Scale::Quick, characterizer, repository, learners, seed: 1 }
    })
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_smoke");
    group.sample_size(10);

    group.bench_function("fig1_heatmap_6x6", |b| b.iter(|| black_box(fig1::run(6))));

    group.bench_function("fig3_one_panel_restune_8_iters", |b| {
        let ctx = mini_context();
        b.iter(|| {
            black_box(ctx.run(
                Method::Restune,
                InstanceType::A,
                &WorkloadSpec::twitter(),
                Setting::Original,
                8,
                7,
            ))
        })
    });

    group.bench_function("fig4_transfer_varying_hardware_8_iters", |b| {
        let ctx = mini_context();
        b.iter(|| {
            black_box(ctx.run(
                Method::Restune,
                InstanceType::A,
                &WorkloadSpec::twitter(),
                Setting::VaryingHardware,
                8,
                7,
            ))
        })
    });

    group.bench_function("fig5_varying_workloads_ottertune_8_iters", |b| {
        let ctx = mini_context();
        b.iter(|| {
            black_box(ctx.run(
                Method::OtterTuneWithConstraints,
                InstanceType::A,
                &WorkloadSpec::twitter(),
                Setting::VaryingWorkloads,
                8,
                7,
            ))
        })
    });

    group.bench_function("cdbtune_ddpg_8_iters", |b| {
        let ctx = mini_context();
        b.iter(|| {
            black_box(ctx.run(
                Method::CdbTuneWithConstraints,
                InstanceType::A,
                &WorkloadSpec::twitter(),
                Setting::Original,
                8,
                7,
            ))
        })
    });

    group.bench_function("iterations_to_best_metric", |b| {
        let curve: Vec<f64> = (0..200).map(|i| 100.0 / (1.0 + i as f64)).collect();
        b.iter(|| black_box(efficiency::iterations_to_best(black_box(&curve))))
    });

    group.bench_function("shap_path_3_knobs", |b| {
        let dbms = dbsim::SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0)
            .with_noise(0.0);
        let rec = dbsim::Configuration::dba_default()
            .with("innodb_thread_concurrency", 13.0)
            .with("innodb_spin_wait_delay", 0.0)
            .with("innodb_lru_scan_depth", 356.0);
        let knobs: Vec<String> = dbsim::KnobSet::case_study()
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect();
        b.iter(|| black_box(restune_core::shap::shap_path(&dbms, &rec, &knobs, 0)))
    });

    // Keep the config constructor honest (cheap, but it pins the API).
    group.bench_function("standard_config", |b| {
        b.iter(|| black_box(standard_config(Scale::Quick, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
