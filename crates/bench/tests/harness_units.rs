//! Unit tests for the experiment-harness library: metrics, small experiment
//! runs, and report plumbing.

use restune_bench::context::{build_repository_from, fit_learners, Scale};
use restune_bench::experiments::{efficiency, fig1};
use dbsim::{InstanceType, WorkloadSpec};
use restune_core::problem::ResourceKind;

#[test]
fn iterations_to_best_edge_cases() {
    // Monotone descent reaching the floor early.
    assert_eq!(efficiency::iterations_to_best(&[10.0, 5.0, 5.0, 5.0]), 2);
    // Flat curve: best from the start.
    assert_eq!(efficiency::iterations_to_best(&[7.0, 7.0, 7.0]), 1);
    // Within-1% tolerance counts as reached.
    assert_eq!(efficiency::iterations_to_best(&[10.0, 5.04, 5.0]), 2);
    // Empty curve degrades gracefully.
    assert_eq!(efficiency::iterations_to_best(&[]), 0);
}

#[test]
fn fig1_plateau_structure_at_small_scale() {
    let r = fig1::run(5);
    assert_eq!(r.levels, 5);
    assert_eq!(r.tps.len(), 5);
    assert_eq!(r.cpu[0].len(), 5);
    // All entries are physical.
    for row in r.tps.iter().chain(r.cpu.iter()) {
        for v in row {
            assert!(v.is_finite() && *v >= 0.0);
        }
    }
}

#[test]
fn scale_budget_relationships() {
    assert!(Scale::Quick.iterations() < Scale::Full.iterations());
    assert!(Scale::Quick.task_observations() < Scale::Full.task_observations());
    assert!(Scale::Quick.repeats() <= Scale::Full.repeats());
}

#[test]
fn repository_builder_from_explicit_tasks() {
    let characterizer = workload::WorkloadCharacterizer::train_default(0);
    let repo = build_repository_from(
        &characterizer,
        &[
            (WorkloadSpec::twitter(), InstanceType::A),
            (WorkloadSpec::sysbench(), InstanceType::B),
        ],
        &dbsim::KnobSet::case_study(),
        ResourceKind::Cpu,
        10,
        3,
    );
    assert_eq!(repo.len(), 2);
    // Each task stores the default anchor plus its n LHS samples.
    assert_eq!(repo.n_observations(), 2 * (10 + 1));
    let learners = fit_learners(&repo);
    assert_eq!(learners.len(), 2);
    assert_eq!(learners[0].instance, InstanceType::A);
    assert_eq!(learners[1].workload, "SYSBENCH");
}
