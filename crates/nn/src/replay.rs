//! Experience replay buffer for off-policy RL.

use xrand::rngs::StdRng;
use xrand::RngExt;

/// One `(s, a, r, s')` transition. The configuration-tuning "episode" is a
/// single step (the paper notes the problem is not really an MDP — the
/// optimal configuration is the same whatever the state), so no terminal
/// flag is needed beyond `done`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State (normalized internal metrics).
    pub state: Vec<f64>,
    /// Action (normalized knob vector).
    pub action: Vec<f64>,
    /// Reward.
    pub reward: f64,
    /// Next state.
    pub next_state: Vec<f64>,
    /// Whether the episode ended with this transition.
    pub done: bool,
}

/// Fixed-capacity ring buffer with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    buf: Vec<Transition>,
    capacity: usize,
    write: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ReplayBuffer { buf: Vec::with_capacity(capacity), capacity, write: 0 }
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.write] = t;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples `n` transitions uniformly with replacement.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<&Transition> {
        assert!(!self.buf.is_empty());
        (0..n).map(|_| &self.buf[rng.random_range(0..self.buf.len())]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition {
            state: vec![r],
            action: vec![r],
            reward: r,
            next_state: vec![r],
            done: false,
        }
    }

    #[test]
    fn capacity_is_enforced_with_fifo_eviction() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 3);
        // 0 and 1 were evicted.
        let rewards: Vec<f64> = buf.buf.iter().map(|t| t.reward).collect();
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn sampling_returns_requested_count() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..4 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(buf.sample(16, &mut rng).len(), 16);
    }

    #[test]
    #[should_panic]
    fn sampling_empty_buffer_panics() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(1, &mut rng);
    }
}
