//! Minimal neural-network substrate: dense MLPs with backprop, Adam, a replay
//! buffer, and a DDPG actor-critic agent.
//!
//! Built from scratch to support the **CDBTune-w-Con** baseline of the paper's
//! evaluation: CDBTune (SIGMOD 2019) tunes knobs with the deep deterministic
//! policy gradient, mapping internal DBMS metrics (state) to knob settings
//! (action). The paper modifies its reward for resource-oriented tuning
//! (§7, "CDBTune-w-Con"); that reward shaping lives in the `baselines` crate —
//! this crate is the generic learning machinery.

// Indexed loops are intentional in the numeric kernels below: they mirror
// the textbook formulations and keep bounds explicit.
#![allow(clippy::needless_range_loop)]

pub mod ddpg;
pub mod mlp;
pub mod replay;

pub use ddpg::{Ddpg, DdpgConfig};
pub use mlp::{Activation, AdamOptimizer, Mlp};
pub use replay::{ReplayBuffer, Transition};
