//! Deep deterministic policy gradient (Lillicrap et al., 2016), the learning
//! core of the CDBTune baseline.

use crate::mlp::{Activation, AdamOptimizer, Mlp};
use crate::replay::{ReplayBuffer, Transition};
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// DDPG hyperparameters.
#[derive(Debug, Clone)]
pub struct DdpgConfig {
    /// Hidden layer width (two hidden layers).
    pub hidden: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Soft target-update rate.
    pub tau: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Minibatch size.
    pub batch: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Initial exploration noise (std-dev on each action dim).
    pub noise: f64,
    /// Multiplicative noise decay per training step.
    pub noise_decay: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            hidden: 64,
            gamma: 0.95,
            tau: 0.01,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            batch: 32,
            replay_capacity: 4096,
            noise: 0.3,
            noise_decay: 0.995,
            seed: 0,
        }
    }
}

/// A DDPG agent with actions in `[0, 1]^a` (normalized knob space).
#[derive(Debug)]
pub struct Ddpg {
    actor: Mlp,
    actor_target: Mlp,
    critic: Mlp,
    critic_target: Mlp,
    actor_opt: AdamOptimizer,
    critic_opt: AdamOptimizer,
    replay: ReplayBuffer,
    config: DdpgConfig,
    noise: f64,
    rng: StdRng,
    state_dim: usize,
    action_dim: usize,
}

impl Ddpg {
    /// Creates an agent for `state_dim`-dimensional states and
    /// `action_dim`-dimensional `[0,1]` actions.
    pub fn new(state_dim: usize, action_dim: usize, config: DdpgConfig) -> Self {
        let h = config.hidden;
        let actor = Mlp::new(
            &[state_dim, h, h, action_dim],
            Activation::Tanh,
            Activation::Sigmoid,
            config.seed,
        );
        let critic = Mlp::new(
            &[state_dim + action_dim, h, h, 1],
            Activation::Tanh,
            Activation::Identity,
            config.seed ^ 0xABCD,
        );
        let actor_target = actor.clone();
        let critic_target = critic.clone();
        let actor_opt = AdamOptimizer::new(&actor, config.actor_lr);
        let critic_opt = AdamOptimizer::new(&critic, config.critic_lr);
        let replay = ReplayBuffer::new(config.replay_capacity);
        let rng = StdRng::seed_from_u64(config.seed.wrapping_add(17));
        let noise = config.noise;
        Ddpg {
            actor,
            actor_target,
            critic,
            critic_target,
            actor_opt,
            critic_opt,
            replay,
            config,
            noise,
            rng,
            state_dim,
            action_dim,
        }
    }

    /// Greedy action for `state`.
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        debug_assert_eq!(state.len(), self.state_dim);
        self.actor.forward(state)
    }

    /// Exploratory action: greedy plus decaying Gaussian noise, clamped to
    /// `[0, 1]`.
    pub fn act_noisy(&mut self, state: &[f64]) -> Vec<f64> {
        let mut a = self.actor.forward(state);
        for v in &mut a {
            // Box–Muller draw.
            let u1: f64 = 1.0 - self.rng.random::<f64>();
            let u2: f64 = self.rng.random::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *v = (*v + self.noise * z).clamp(0.0, 1.0);
        }
        a
    }

    /// Current exploration noise level.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Stores a transition in the replay buffer.
    pub fn observe(&mut self, t: Transition) {
        debug_assert_eq!(t.state.len(), self.state_dim);
        debug_assert_eq!(t.action.len(), self.action_dim);
        self.replay.push(t);
    }

    /// Number of stored transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// One gradient step on critic and actor from a replay minibatch.
    /// Returns the critic's TD loss, or `None` when the buffer is too small.
    pub fn train_step(&mut self) -> Option<f64> {
        if self.replay.len() < self.config.batch {
            return None;
        }
        let batch: Vec<Transition> = self
            .replay
            .sample(self.config.batch, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();
        let n = batch.len() as f64;

        // ---- critic update ------------------------------------------------
        let mut critic_grads = self.critic.zero_grads();
        let mut loss = 0.0;
        for t in &batch {
            let target_q = if t.done {
                t.reward
            } else {
                let next_a = self.actor_target.forward(&t.next_state);
                let mut sa = t.next_state.clone();
                sa.extend_from_slice(&next_a);
                t.reward + self.config.gamma * self.critic_target.forward(&sa)[0]
            };
            let mut sa = t.state.clone();
            sa.extend_from_slice(&t.action);
            let q = self.critic.forward(&sa)[0];
            let err = q - target_q;
            loss += err * err;
            let (g, _) = self.critic.backward(&sa, &[2.0 * err]);
            Mlp::accumulate(&mut critic_grads, &g);
        }
        Mlp::scale_grads(&mut critic_grads, 1.0 / n);
        self.critic_opt.step(&mut self.critic, &critic_grads);

        // ---- actor update (deterministic policy gradient) ------------------
        let mut actor_grads = self.actor.zero_grads();
        for t in &batch {
            let a = self.actor.forward(&t.state);
            let mut sa = t.state.clone();
            sa.extend_from_slice(&a);
            // dQ/da — gradient of the critic's output w.r.t. its action inputs.
            let dq_dsa = self.critic.input_gradient(&sa);
            let dq_da = &dq_dsa[self.state_dim..];
            // Ascend Q: backprop -dQ/da through the actor.
            let neg: Vec<f64> = dq_da.iter().map(|g| -g).collect();
            let (g, _) = self.actor.backward(&t.state, &neg);
            Mlp::accumulate(&mut actor_grads, &g);
        }
        Mlp::scale_grads(&mut actor_grads, 1.0 / n);
        self.actor_opt.step(&mut self.actor, &actor_grads);

        // ---- target networks + noise decay ---------------------------------
        self.actor_target.soft_update_from(&self.actor, self.config.tau);
        self.critic_target.soft_update_from(&self.critic, self.config.tau);
        self.noise *= self.config.noise_decay;

        Some(loss / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-step bandit: reward = 1 - |a - 0.7|, constant state. DDPG should
    /// steer its action toward 0.7.
    #[test]
    fn learns_a_one_step_bandit() {
        let config = DdpgConfig {
            hidden: 24,
            batch: 32,
            noise: 0.4,
            noise_decay: 0.998,
            actor_lr: 2e-3,
            critic_lr: 4e-3,
            seed: 5,
            ..Default::default()
        };
        let mut agent = Ddpg::new(2, 1, config);
        let state = vec![0.3, -0.3];
        for _ in 0..800 {
            let a = agent.act_noisy(&state);
            let reward = 1.0 - (a[0] - 0.7).abs();
            agent.observe(Transition {
                state: state.clone(),
                action: a,
                reward,
                next_state: state.clone(),
                done: true,
            });
            agent.train_step();
        }
        let final_a = agent.act(&state)[0];
        assert!(
            (final_a - 0.7).abs() < 0.2,
            "agent converged to {final_a}, expected near 0.7"
        );
    }

    #[test]
    fn actions_are_in_unit_interval() {
        let mut agent = Ddpg::new(3, 4, DdpgConfig::default());
        for i in 0..20 {
            let s = vec![i as f64, -(i as f64), 0.5];
            for v in agent.act_noisy(&s) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn train_step_requires_enough_samples() {
        let mut agent = Ddpg::new(2, 1, DdpgConfig { batch: 8, ..Default::default() });
        assert!(agent.train_step().is_none());
        for _ in 0..8 {
            agent.observe(Transition {
                state: vec![0.0, 0.0],
                action: vec![0.5],
                reward: 0.0,
                next_state: vec![0.0, 0.0],
                done: true,
            });
        }
        assert!(agent.train_step().is_some());
    }

    #[test]
    fn noise_decays_with_training() {
        let mut agent = Ddpg::new(1, 1, DdpgConfig { batch: 4, ..Default::default() });
        for _ in 0..4 {
            agent.observe(Transition {
                state: vec![0.0],
                action: vec![0.5],
                reward: 1.0,
                next_state: vec![0.0],
                done: true,
            });
        }
        let before = agent.noise();
        for _ in 0..10 {
            agent.train_step();
        }
        assert!(agent.noise() < before);
    }
}
