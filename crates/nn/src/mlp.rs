//! Dense multilayer perceptrons with explicit backpropagation and Adam.

use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// Activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid (useful for `[0,1]` knob actions).
    Sigmoid,
    /// Identity (linear output).
    Identity,
}

impl Activation {
    fn apply(&self, z: f64) -> f64 {
        match self {
            Activation::Tanh => z.tanh(),
            Activation::Relu => z.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            Activation::Identity => z,
        }
    }

    /// Derivative expressed in terms of the *output* `a = f(z)`.
    fn derivative_from_output(&self, a: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - a * a,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer: `a = f(W x + b)` with `W` stored row-major (out × in).
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    activation: Activation,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, activation: Activation, rng: &mut StdRng) -> Self {
        // Xavier/Glorot uniform initialization.
        let limit = (6.0 / (n_in + n_out) as f64).sqrt();
        let w = (0..n_in * n_out).map(|_| (rng.random::<f64>() * 2.0 - 1.0) * limit).collect();
        Layer { w, b: vec![0.0; n_out], n_in, n_out, activation }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut z = self.b[o];
            for i in 0..self.n_in {
                z += row[i] * x[i];
            }
            out.push(self.activation.apply(z));
        }
    }
}

/// Per-layer parameter gradients.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    dw: Vec<f64>,
    db: Vec<f64>,
}

/// Gradients for a whole network.
pub type Grads = Vec<LayerGrads>;

/// A dense feed-forward network.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network with layer sizes `sizes` (length ≥ 2); hidden layers
    /// use `hidden`, the output layer uses `output`.
    pub fn new(sizes: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() { output } else { hidden };
            layers.push(Layer::new(sizes[i], sizes[i + 1], act, &mut rng));
        }
        Mlp { layers }
    }

    /// Input dimensionality.
    pub fn n_inputs(&self) -> usize {
        self.layers[0].n_in
    }

    /// Output dimensionality.
    pub fn n_outputs(&self) -> usize {
        self.layers.last().unwrap().n_out
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.n_inputs());
        let mut a = x.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward(&a, &mut next);
            std::mem::swap(&mut a, &mut next);
        }
        a
    }

    /// Forward pass caching every layer's activation (input first).
    fn forward_cached(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let mut out = Vec::new();
            layer.forward(acts.last().unwrap(), &mut out);
            acts.push(out);
        }
        acts
    }

    /// Backpropagates `grad_out = dL/d(output)` for input `x`.
    ///
    /// Returns parameter gradients and `dL/d(input)` (the input gradient is
    /// what DDPG's actor update needs from the critic).
    pub fn backward(&self, x: &[f64], grad_out: &[f64]) -> (Grads, Vec<f64>) {
        let acts = self.forward_cached(x);
        let mut grads: Grads = self
            .layers
            .iter()
            .map(|l| LayerGrads { dw: vec![0.0; l.w.len()], db: vec![0.0; l.b.len()] })
            .collect();
        // delta = dL/dz at the current layer.
        let mut delta: Vec<f64> = grad_out
            .iter()
            .zip(acts.last().unwrap())
            .map(|(g, a)| g * self.layers.last().unwrap().activation.derivative_from_output(*a))
            .collect();
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let input = &acts[li];
            let g = &mut grads[li];
            for o in 0..layer.n_out {
                g.db[o] += delta[o];
                let row = &mut g.dw[o * layer.n_in..(o + 1) * layer.n_in];
                for i in 0..layer.n_in {
                    row[i] += delta[o] * input[i];
                }
            }
            if li == 0 {
                // Input gradient.
                let mut dx = vec![0.0; layer.n_in];
                for o in 0..layer.n_out {
                    let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                    for i in 0..layer.n_in {
                        dx[i] += delta[o] * row[i];
                    }
                }
                return (grads, dx);
            }
            // Propagate delta to the previous layer.
            let prev = &self.layers[li - 1];
            let mut new_delta = vec![0.0; layer.n_in];
            for o in 0..layer.n_out {
                let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                for i in 0..layer.n_in {
                    new_delta[i] += delta[o] * row[i];
                }
            }
            for (i, nd) in new_delta.iter_mut().enumerate() {
                *nd *= prev.activation.derivative_from_output(acts[li][i]);
            }
            delta = new_delta;
        }
        unreachable!("loop returns at li == 0");
    }

    /// Gradient of the scalar first output with respect to the inputs,
    /// convenience for critics (`dQ/da`).
    pub fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut grad_out = vec![0.0; self.n_outputs()];
        grad_out[0] = 1.0;
        self.backward(x, &grad_out).1
    }

    /// Zero-initialized gradient accumulator matching this network.
    pub fn zero_grads(&self) -> Grads {
        self.layers
            .iter()
            .map(|l| LayerGrads { dw: vec![0.0; l.w.len()], db: vec![0.0; l.b.len()] })
            .collect()
    }

    /// Accumulates `other` into `acc` (for minibatch averaging).
    pub fn accumulate(acc: &mut Grads, other: &Grads) {
        for (a, o) in acc.iter_mut().zip(other) {
            for (x, y) in a.dw.iter_mut().zip(&o.dw) {
                *x += y;
            }
            for (x, y) in a.db.iter_mut().zip(&o.db) {
                *x += y;
            }
        }
    }

    /// Scales gradients in place.
    pub fn scale_grads(grads: &mut Grads, s: f64) {
        for g in grads {
            for v in &mut g.dw {
                *v *= s;
            }
            for v in &mut g.db {
                *v *= s;
            }
        }
    }

    /// Soft-updates parameters toward `source`: `p ← (1 - tau) p + tau p_src`.
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f64) {
        for (l, s) in self.layers.iter_mut().zip(&source.layers) {
            for (w, ws) in l.w.iter_mut().zip(&s.w) {
                *w += tau * (ws - *w);
            }
            for (b, bs) in l.b.iter_mut().zip(&s.b) {
                *b += tau * (bs - *b);
            }
        }
    }
}

/// Adam optimizer holding per-parameter first/second moment estimates.
#[derive(Debug, Clone)]
pub struct AdamOptimizer {
    m: Vec<LayerGrads>,
    v: Vec<LayerGrads>,
    t: i32,
    lr: f64,
}

impl AdamOptimizer {
    /// Creates an optimizer for `net` with learning rate `lr`.
    pub fn new(net: &Mlp, lr: f64) -> Self {
        AdamOptimizer { m: net.zero_grads(), v: net.zero_grads(), t: 0, lr }
    }

    /// Applies one descent step along `grads`.
    pub fn step(&mut self, net: &mut Mlp, grads: &Grads) {
        self.t += 1;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powi(self.t);
        let bc2 = 1.0 - b2.powi(self.t);
        for (li, layer) in net.layers.iter_mut().enumerate() {
            let g = &grads[li];
            let m = &mut self.m[li];
            let v = &mut self.v[li];
            for (i, w) in layer.w.iter_mut().enumerate() {
                m.dw[i] = b1 * m.dw[i] + (1.0 - b1) * g.dw[i];
                v.dw[i] = b2 * v.dw[i] + (1.0 - b2) * g.dw[i] * g.dw[i];
                *w -= self.lr * (m.dw[i] / bc1) / ((v.dw[i] / bc2).sqrt() + eps);
            }
            for (i, b) in layer.b.iter_mut().enumerate() {
                m.db[i] = b1 * m.db[i] + (1.0 - b1) * g.db[i];
                v.db[i] = b2 * v.db[i] + (1.0 - b2) * g.db[i] * g.db[i];
                *b -= self.lr * (m.db[i] / bc1) / ((v.db[i] / bc2).sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(&[3, 8, 2], Activation::Tanh, Activation::Identity, 1);
        assert_eq!(net.n_inputs(), 3);
        assert_eq!(net.n_outputs(), 2);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 2);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let net = Mlp::new(&[2, 5, 1], Activation::Tanh, Activation::Identity, 7);
        let x = [0.3, -0.6];
        // L = output[0]; dL/dw via backprop vs finite differences.
        let (grads, dx) = net.backward(&x, &[1.0]);
        let eps = 1e-6;
        // Check a few weight entries of each layer.
        for li in 0..net.layers.len() {
            for wi in [0usize, net.layers[li].w.len() / 2] {
                let mut plus = net.clone();
                plus.layers[li].w[wi] += eps;
                let mut minus = net.clone();
                minus.layers[li].w[wi] -= eps;
                let fd = (plus.forward(&x)[0] - minus.forward(&x)[0]) / (2.0 * eps);
                assert!(
                    (grads[li].dw[wi] - fd).abs() < 1e-6,
                    "layer {li} w[{wi}]: {} vs {}",
                    grads[li].dw[wi],
                    fd
                );
            }
        }
        // Input gradient check.
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fd = (net.forward(&xp)[0] - net.forward(&xm)[0]) / (2.0 * eps);
            assert!((dx[i] - fd).abs() < 1e-6, "input {i}: {} vs {}", dx[i], fd);
        }
    }

    #[test]
    fn learns_a_simple_regression() {
        // y = sin(3x) on [-1, 1].
        let mut net = Mlp::new(&[1, 16, 16, 1], Activation::Tanh, Activation::Identity, 3);
        let mut opt = AdamOptimizer::new(&net, 0.01);
        let xs: Vec<f64> = (0..64).map(|i| -1.0 + 2.0 * i as f64 / 63.0).collect();
        for _ in 0..800 {
            let mut grads = net.zero_grads();
            for &x in &xs {
                let pred = net.forward(&[x])[0];
                let err = pred - (3.0 * x).sin();
                let (g, _) = net.backward(&[x], &[2.0 * err]);
                Mlp::accumulate(&mut grads, &g);
            }
            Mlp::scale_grads(&mut grads, 1.0 / xs.len() as f64);
            opt.step(&mut net, &grads);
        }
        let mse: f64 = xs
            .iter()
            .map(|&x| {
                let e = net.forward(&[x])[0] - (3.0 * x).sin();
                e * e
            })
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mse < 0.02, "mse {mse}");
    }

    #[test]
    fn sigmoid_outputs_stay_in_unit_interval() {
        let net = Mlp::new(&[4, 8, 3], Activation::Relu, Activation::Sigmoid, 5);
        for s in 0..20 {
            let x: Vec<f64> = (0..4).map(|i| ((s * 4 + i) as f64).sin() * 3.0).collect();
            for v in net.forward(&x) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn soft_update_converges_to_source() {
        let mut target = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, 1);
        let source = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, 2);
        for _ in 0..2000 {
            target.soft_update_from(&source, 0.01);
        }
        let x = [0.5, -0.5];
        assert!((target.forward(&x)[0] - source.forward(&x)[0]).abs() < 1e-4);
    }

    #[test]
    fn deterministic_construction_per_seed() {
        let a = Mlp::new(&[3, 6, 2], Activation::Tanh, Activation::Identity, 9);
        let b = Mlp::new(&[3, 6, 2], Activation::Tanh, Activation::Identity, 9);
        assert_eq!(a.forward(&[0.1, 0.2, 0.3]), b.forward(&[0.1, 0.2, 0.3]));
    }
}
